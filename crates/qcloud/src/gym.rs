//! The reinforcement-learning training environment (paper §4.1 / §6.6).
//!
//! `QCloudGymEnv` is a Gymnasium-style single-step environment:
//!
//! * **State** (dim `1 + 3k`, `k = 5` devices → 16): normalised job qubit
//!   count `q/q_max`, then per device the normalised free-qubit level
//!   `Cᵢ/150`, the error score `Eᵢ`, and normalised CLOPS `Kᵢ/10⁶`
//!   (zero-padded when fewer than `k` devices).
//! * **Action** (dim `k`): unnormalised allocation weights; the environment
//!   normalises (`âᵢ = aᵢ/(Σa+ε)·q`), rounds, and adjusts so `Σâᵢ = q`.
//! * **Reward**: the mean per-device circuit fidelity `R = (1/k')Σ Fᵢ`
//!   across the devices actually used. The optional
//!   [`GymConfig::comm_aware_reward`] extension multiplies in the
//!   `φ^(k'−1)` communication penalty (the paper's "communication-aware
//!   reward shaping" future-work item).
//! * Episodes terminate after the single allocation decision.

use crate::broker::CloudView;
use crate::config::SimParams;
use crate::device::DeviceId;
use crate::job::{JobDistribution, JobId, QJob};
use crate::model::fidelity::DeviceErrorRates;
use crate::partition::weights_to_parts;
use qcs_calibration::DeviceProfile;
use qcs_desim::Xoshiro256StarStar;
use qcs_rl::env::{Env, StepResult};
use serde::{Deserialize, Serialize};

/// Observation/action normalisation and reward options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GymConfig {
    /// Number of device slots in the observation (paper: 5).
    pub max_devices: usize,
    /// Qubit-count normaliser `q_max`. The paper's text says 50 with jobs
    /// of 130–250 qubits (the observation simply exceeds 1); we default to
    /// 250 so observations stay in `[0, 1]`, and keep it configurable.
    pub q_max_norm: f64,
    /// Free-level normaliser (paper: 150).
    pub capacity_norm: f64,
    /// CLOPS normaliser (paper: 10⁶).
    pub clops_norm: f64,
    /// Multiply the reward by `φ^(k−1)` (future-work reward shaping).
    pub comm_aware_reward: bool,
    /// Probability that a device appears partially busy at episode start
    /// (teaches availability awareness).
    pub busy_device_prob: f64,
}

impl Default for GymConfig {
    fn default() -> Self {
        GymConfig {
            max_devices: 5,
            q_max_norm: 250.0,
            capacity_norm: 150.0,
            clops_norm: 1e6,
            comm_aware_reward: false,
            busy_device_prob: 0.5,
        }
    }
}

impl GymConfig {
    /// Observation dimensionality `1 + 3k`.
    pub fn obs_dim(&self) -> usize {
        1 + 3 * self.max_devices
    }
}

/// Encodes the §4.1 state vector from a job's qubit demand and a fleet
/// view. Shared by the training env and the deployed [`crate::policies::RlBroker`].
pub fn encode_observation(job_qubits: u64, view: &CloudView, cfg: &GymConfig) -> Vec<f32> {
    let mut obs = Vec::with_capacity(cfg.obs_dim());
    obs.push((job_qubits as f64 / cfg.q_max_norm) as f32);
    for slot in 0..cfg.max_devices {
        if let Some(d) = view.devices.get(slot) {
            obs.push((d.free as f64 / cfg.capacity_norm) as f32);
            obs.push(d.error_score as f32);
            obs.push((d.clops / cfg.clops_norm) as f32);
        } else {
            obs.extend_from_slice(&[0.0, 0.0, 0.0]);
        }
    }
    obs
}

/// Static per-device data the environment simulates against.
#[derive(Debug, Clone)]
struct DeviceSlot {
    error_rates: DeviceErrorRates,
    error_score: f64,
    clops: f64,
    capacity: u64,
    qv_layers: f64,
}

/// The single-step training environment.
pub struct QCloudGymEnv {
    cfg: GymConfig,
    params: SimParams,
    dist: JobDistribution,
    devices: Vec<DeviceSlot>,
    rng: Xoshiro256StarStar,
    // Current episode state.
    job: QJob,
    frees: Vec<u64>,
    episode: u64,
}

impl QCloudGymEnv {
    /// Builds the environment from device profiles (typically
    /// [`qcs_calibration::ibm_fleet`]).
    pub fn new(
        profiles: &[DeviceProfile],
        dist: JobDistribution,
        params: SimParams,
        cfg: GymConfig,
    ) -> Self {
        assert!(
            profiles.len() <= cfg.max_devices,
            "more devices than observation slots"
        );
        let devices = profiles
            .iter()
            .map(|p| DeviceSlot {
                error_rates: DeviceErrorRates {
                    single_qubit: p.calibration.avg_rx_error(),
                    two_qubit: p.calibration.avg_two_qubit_error(),
                    readout: p.calibration.avg_readout_error(),
                },
                error_score: p.error_score(&params.error_weights),
                clops: p.spec.clops,
                capacity: p.spec.num_qubits as u64,
                qv_layers: p.spec.qv_layers(),
            })
            .collect();
        QCloudGymEnv {
            cfg,
            params,
            dist,
            devices,
            rng: Xoshiro256StarStar::new(0),
            job: QJob {
                id: JobId(0),
                num_qubits: 1,
                depth: 1,
                num_shots: 1,
                two_qubit_gates: 1,
                arrival_time: 0.0,
            },
            frees: Vec::new(),
            episode: 0,
        }
    }

    /// The environment's config.
    pub fn config(&self) -> &GymConfig {
        &self.cfg
    }

    fn view(&self) -> CloudView {
        CloudView {
            devices: self
                .devices
                .iter()
                .zip(&self.frees)
                .enumerate()
                .map(|(i, (d, &free))| crate::broker::DeviceView {
                    id: DeviceId(i as u32),
                    free,
                    capacity: d.capacity,
                    busy_fraction: 1.0 - free as f64 / d.capacity.max(1) as f64,
                    mean_utilization: 1.0 - free as f64 / d.capacity.max(1) as f64,
                    error_score: d.error_score,
                    clops: d.clops,
                    qv_layers: d.qv_layers,
                })
                .collect(),
        }
    }

    fn sample_episode(&mut self) -> Vec<f32> {
        self.episode += 1;
        self.job = self.dist.sample(JobId(self.episode), 0.0, &mut self.rng);
        self.frees = self
            .devices
            .iter()
            .map(|d| {
                if self.rng.next_f64() < self.cfg.busy_device_prob {
                    // Partially busy: keep at least ~25% free so episodes
                    // are usually feasible.
                    self.rng.range_u64(d.capacity / 4, d.capacity)
                } else {
                    d.capacity
                }
            })
            .collect();
        encode_observation(self.job.num_qubits, &self.view(), &self.cfg)
    }

    /// The reward for allocating `parts` of the current job — mean device
    /// fidelity (Eq. 7 per device), optionally × the φ penalty.
    fn reward_for(&self, parts: &[(DeviceId, u64)]) -> f64 {
        if parts.is_empty() {
            return 0.0;
        }
        let k = parts.len();
        let fids: Vec<f64> = parts
            .iter()
            .map(|&(dev, amt)| {
                let d = &self.devices[dev.index()];
                self.params.fidelity.device_fidelity(
                    &d.error_rates,
                    self.job.depth,
                    self.job.two_qubit_gates,
                    amt,
                    self.job.num_qubits,
                    k,
                )
            })
            .collect();
        let mean = fids.iter().sum::<f64>() / k as f64;
        if self.cfg.comm_aware_reward {
            mean * self.params.comm.fidelity_penalty(k)
        } else {
            mean
        }
    }
}

impl Env for QCloudGymEnv {
    fn obs_dim(&self) -> usize {
        self.cfg.obs_dim()
    }

    fn action_dim(&self) -> usize {
        self.cfg.max_devices
    }

    fn reset(&mut self, seed: u64) -> Vec<f32> {
        self.rng = Xoshiro256StarStar::new(seed);
        self.episode = 0;
        self.sample_episode()
    }

    fn step(&mut self, action: &[f32]) -> StepResult {
        assert_eq!(action.len(), self.cfg.max_devices, "action dim mismatch");
        let weights = &action[..self.devices.len()];
        let limits = self.frees.clone();
        let reward = match weights_to_parts(weights, self.job.num_qubits, &limits) {
            Some(parts) => self.reward_for(&parts),
            // Infeasible system state (rare): no allocation, zero reward.
            None => 0.0,
        };
        let obs = self.sample_episode();
        StepResult {
            obs,
            reward,
            terminated: true,
            truncated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_calibration::ibm_fleet;

    fn env() -> QCloudGymEnv {
        QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            GymConfig::default(),
        )
    }

    #[test]
    fn observation_shape_matches_paper() {
        let mut e = env();
        assert_eq!(e.obs_dim(), 16, "1 + 3·5 = 16 (paper §4.1)");
        assert_eq!(e.action_dim(), 5);
        let obs = e.reset(1);
        assert_eq!(obs.len(), 16);
        // q/q_max in (0, 1]; free levels in (0, 127/150]; CLOPS ≤ 0.22.
        assert!(obs[0] > 0.0 && obs[0] <= 1.0);
        for slot in 0..5 {
            let free = obs[1 + 3 * slot];
            let err = obs[2 + 3 * slot];
            let clops = obs[3 + 3 * slot];
            assert!((0.0..=127.0 / 150.0 + 1e-6).contains(&free));
            assert!(err > 0.0 && err < 0.05);
            assert!(clops > 0.0 && clops <= 0.22 + 1e-6);
        }
    }

    #[test]
    fn episodes_are_single_step() {
        let mut e = env();
        e.reset(2);
        let r = e.step(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(r.terminated);
        assert!(!r.truncated);
        assert_eq!(r.obs.len(), 16, "auto-advances to the next episode state");
    }

    #[test]
    fn reward_in_unit_interval_and_meaningful() {
        let mut e = env();
        e.reset(3);
        let mut sum = 0.0;
        for _ in 0..200 {
            let r = e.step(&[1.0, 1.0, 1.0, 1.0, 1.0]);
            assert!((0.0..=1.0).contains(&r.reward), "reward {}", r.reward);
            sum += r.reward;
        }
        let mean = sum / 200.0;
        assert!(
            (0.4..0.95).contains(&mean),
            "mean reward {mean} outside plausible fidelity band"
        );
    }

    /// The paper's training reward (mean device fidelity, **no** φ penalty)
    /// is genuinely maximised by fragmenting: Eq. 6's readout exponent
    /// `√(q/k)` *shrinks* as k grows, outweighing the cleaner-device
    /// advantage. This is exactly why the paper's trained agent spreads
    /// jobs (highest `T_comm`, lowest deployed fidelity in Table 2). With
    /// communication-aware shaping the incentive flips.
    #[test]
    fn plain_reward_favours_spreading_comm_aware_reverses_it() {
        let mean_reward = |comm_aware: bool, weights: &[f32; 5]| -> f64 {
            let cfg = GymConfig {
                comm_aware_reward: comm_aware,
                busy_device_prob: 0.0,
                ..GymConfig::default()
            };
            let mut e = QCloudGymEnv::new(
                &ibm_fleet(1),
                JobDistribution::default(),
                SimParams::default(),
                cfg,
            );
            e.reset(4);
            let n = 300;
            (0..n).map(|_| e.step(weights).reward).sum::<f64>() / n as f64
        };
        let focused = [1.0f32, 1.0, 0.0, 0.0, 0.0];
        let spread = [0.2f32, 0.2, 0.2, 0.2, 0.2];

        // Plain (paper) reward: spreading wins — the agent's fragmentation
        // incentive.
        assert!(
            mean_reward(false, &spread) > mean_reward(false, &focused),
            "plain reward should favour spreading: spread {} vs focused {}",
            mean_reward(false, &spread),
            mean_reward(false, &focused)
        );
        // Comm-aware shaping: concentration wins.
        assert!(
            mean_reward(true, &focused) > mean_reward(true, &spread),
            "shaped reward should favour focus: focused {} vs spread {}",
            mean_reward(true, &focused),
            mean_reward(true, &spread)
        );
    }

    #[test]
    fn comm_aware_reward_penalises_fragmentation() {
        let cfg = GymConfig {
            comm_aware_reward: true,
            busy_device_prob: 0.0, // always fully free → deterministic k
            ..GymConfig::default()
        };
        let mut e = QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            cfg.clone(),
        );
        let plain = GymConfig {
            busy_device_prob: 0.0,
            ..GymConfig::default()
        };
        let mut e2 = QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            plain,
        );
        e.reset(5);
        e2.reset(5);
        let spread = [0.2f32, 0.2, 0.2, 0.2, 0.2];
        let r_shaped = e.step(&spread).reward;
        let r_plain = e2.step(&spread).reward;
        assert!(
            r_shaped < r_plain,
            "shaping must penalise: {r_shaped} !< {r_plain}"
        );
    }

    #[test]
    fn reset_is_deterministic() {
        let mut a = env();
        let mut b = env();
        assert_eq!(a.reset(42), b.reset(42));
        let act = vec![0.5f32; 5];
        assert_eq!(a.step(&act), b.step(&act));
    }

    #[test]
    fn encode_observation_pads_missing_devices() {
        let cfg = GymConfig::default();
        let view = CloudView {
            devices: vec![crate::broker::DeviceView {
                id: DeviceId(0),
                free: 100,
                capacity: 127,
                busy_fraction: 0.2,
                mean_utilization: 0.2,
                error_score: 0.01,
                clops: 220_000.0,
                qv_layers: 7.0,
            }],
        };
        let obs = encode_observation(190, &view, &cfg);
        assert_eq!(obs.len(), 16);
        assert!(obs[4..].iter().all(|&x| x == 0.0), "slots 2–5 zero-padded");
    }
}
