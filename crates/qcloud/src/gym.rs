//! The reinforcement-learning training environment (paper §4.1 / §6.6).
//!
//! `QCloudGymEnv` is a Gymnasium-style single-step environment:
//!
//! * **State** (dim `1 + 3k`, `k = 5` devices → 16): normalised job qubit
//!   count `q/q_max`, then per device the normalised free-qubit level
//!   `Cᵢ/150`, the error score `Eᵢ`, and normalised CLOPS `Kᵢ/10⁶`
//!   (zero-padded when fewer than `k` devices). With
//!   [`GymConfig::queue_aware`] (default **off**, for paper parity) three
//!   queue features are appended — normalised queue length, total queued
//!   qubit demand, and head-of-queue waiting time — matching the
//!   queue-aware scheduler redesign ([`crate::sched`]), so a policy can
//!   learn congestion-sensitive allocation.
//! * **Action** (dim `k`): unnormalised allocation weights; the environment
//!   normalises (`âᵢ = aᵢ/(Σa+ε)·q`), rounds, and adjusts so `Σâᵢ = q`.
//! * **Reward**: the mean per-device circuit fidelity `R = (1/k')Σ Fᵢ`
//!   across the devices actually used. The optional
//!   [`GymConfig::comm_aware_reward`] extension multiplies in the
//!   `φ^(k'−1)` communication penalty (the paper's "communication-aware
//!   reward shaping" future-work item).
//! * Episodes terminate after the single allocation decision.
//!
//! The environment implements native [`Env::reset_into`]/[`Env::step_into`]
//! so rollout collection on the paper's env is allocation-free end to end
//! (observations are written into caller buffers; the action
//! post-processing reuses [`PartitionScratch`]).

use crate::broker::CloudView;
use crate::config::SimParams;
use crate::device::DeviceId;
use crate::job::{JobDistribution, JobId, QJob};
use crate::model::fidelity::DeviceErrorRates;
use crate::partition::{weights_to_parts_into, PartitionScratch};
use qcs_calibration::DeviceProfile;
use qcs_desim::Xoshiro256StarStar;
use qcs_rl::env::{Env, StepInfo, StepResult};
use serde::{Deserialize, Serialize};

/// Observation/action normalisation and reward options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GymConfig {
    /// Number of device slots in the observation (paper: 5).
    pub max_devices: usize,
    /// Qubit-count normaliser `q_max`. The paper's text says 50 with jobs
    /// of 130–250 qubits (the observation simply exceeds 1); we default to
    /// 250 so observations stay in `[0, 1]`, and keep it configurable.
    pub q_max_norm: f64,
    /// Free-level normaliser (paper: 150).
    pub capacity_norm: f64,
    /// CLOPS normaliser (paper: 10⁶).
    pub clops_norm: f64,
    /// Multiply the reward by `φ^(k−1)` (future-work reward shaping).
    pub comm_aware_reward: bool,
    /// Probability that a device appears partially busy at episode start
    /// (teaches availability awareness).
    pub busy_device_prob: f64,
    /// Append the three queue features to the observation (default off:
    /// the paper's 16-dim state). See [`QueueFeatures`].
    #[serde(default)]
    pub queue_aware: bool,
    /// Queue-length normaliser for the queue features.
    #[serde(default = "default_queue_len_norm")]
    pub queue_len_norm: f64,
    /// Head-wait normaliser (seconds) for the queue features.
    #[serde(default = "default_queue_wait_norm")]
    pub queue_wait_norm: f64,
}

fn default_queue_len_norm() -> f64 {
    32.0
}

fn default_queue_wait_norm() -> f64 {
    3_600.0
}

impl Default for GymConfig {
    fn default() -> Self {
        GymConfig {
            max_devices: 5,
            q_max_norm: 250.0,
            capacity_norm: 150.0,
            clops_norm: 1e6,
            comm_aware_reward: false,
            busy_device_prob: 0.5,
            queue_aware: false,
            queue_len_norm: default_queue_len_norm(),
            queue_wait_norm: default_queue_wait_norm(),
        }
    }
}

impl GymConfig {
    /// Observation dimensionality: `1 + 3k`, plus 3 when
    /// [`GymConfig::queue_aware`] is set.
    pub fn obs_dim(&self) -> usize {
        1 + 3 * self.max_devices + if self.queue_aware { 3 } else { 0 }
    }
}

/// Aggregate pending-queue signals for queue-aware observations: what the
/// scheduler loop knows beyond the head job. All zeros ≙ an empty queue.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueueFeatures {
    /// Jobs pending behind the one being placed.
    pub backlog: usize,
    /// Total qubit demand of the backlog.
    pub backlog_qubits: u64,
    /// How long the job being placed has already waited (s).
    pub head_wait: f64,
}

/// Encodes the §4.1 state vector from a job's qubit demand and a fleet
/// view. Shared by the training env and the deployed
/// [`crate::policies::RlBroker`]. Under a queue-aware config the deployed
/// broker has no queue context and encodes [`QueueFeatures::default`]
/// (an empty queue); use [`encode_observation_into`] to supply real
/// features.
pub fn encode_observation(job_qubits: u64, view: &CloudView, cfg: &GymConfig) -> Vec<f32> {
    let mut obs = vec![0.0f32; cfg.obs_dim()];
    encode_observation_into(&mut obs, job_qubits, view, &QueueFeatures::default(), cfg);
    obs
}

/// Allocation-free observation encoding: writes into `out` (length
/// [`GymConfig::obs_dim`]). `queue` is ignored unless
/// [`GymConfig::queue_aware`] is set.
pub fn encode_observation_into(
    out: &mut [f32],
    job_qubits: u64,
    view: &CloudView,
    queue: &QueueFeatures,
    cfg: &GymConfig,
) {
    assert_eq!(out.len(), cfg.obs_dim(), "observation buffer mismatch");
    out[0] = (job_qubits as f64 / cfg.q_max_norm) as f32;
    for slot in 0..cfg.max_devices {
        let base = 1 + 3 * slot;
        if let Some(d) = view.devices.get(slot) {
            out[base] = (d.free as f64 / cfg.capacity_norm) as f32;
            out[base + 1] = d.error_score as f32;
            out[base + 2] = (d.clops / cfg.clops_norm) as f32;
        } else {
            out[base] = 0.0;
            out[base + 1] = 0.0;
            out[base + 2] = 0.0;
        }
    }
    if cfg.queue_aware {
        // The raw signals are unbounded (queue depth and head wait grow
        // without limit on a backlogged trace), so clamp to [0, 1] after
        // normalising — consistent with the device features, which are
        // bounded by construction. Past the normaliser, "very congested"
        // carries no more signal than "congested", and an unclamped value
        // would drift the feature scale out from under a trained policy.
        let base = 1 + 3 * cfg.max_devices;
        out[base] = (queue.backlog as f64 / cfg.queue_len_norm).min(1.0) as f32;
        out[base + 1] =
            (queue.backlog_qubits as f64 / (cfg.q_max_norm * cfg.queue_len_norm)).min(1.0) as f32;
        out[base + 2] = (queue.head_wait / cfg.queue_wait_norm).min(1.0) as f32;
    }
}

/// Static per-device data the environment simulates against.
#[derive(Debug, Clone)]
struct DeviceSlot {
    error_rates: DeviceErrorRates,
    error_score: f64,
    clops: f64,
    capacity: u64,
    qv_layers: f64,
}

/// The single-step training environment.
pub struct QCloudGymEnv {
    cfg: GymConfig,
    params: SimParams,
    dist: JobDistribution,
    devices: Vec<DeviceSlot>,
    rng: Xoshiro256StarStar,
    // Current episode state.
    job: QJob,
    frees: Vec<u64>,
    queue: QueueFeatures,
    episode: u64,
    // Reusable buffers (allocation-free stepping).
    view: CloudView,
    scratch: PartitionScratch,
    parts: Vec<(DeviceId, u64)>,
}

impl QCloudGymEnv {
    /// Builds the environment from device profiles (typically
    /// [`qcs_calibration::ibm_fleet`]).
    pub fn new(
        profiles: &[DeviceProfile],
        dist: JobDistribution,
        params: SimParams,
        cfg: GymConfig,
    ) -> Self {
        assert!(
            profiles.len() <= cfg.max_devices,
            "more devices than observation slots"
        );
        let devices: Vec<DeviceSlot> = profiles
            .iter()
            .map(|p| DeviceSlot {
                error_rates: DeviceErrorRates {
                    single_qubit: p.calibration.avg_rx_error(),
                    two_qubit: p.calibration.avg_two_qubit_error(),
                    readout: p.calibration.avg_readout_error(),
                },
                error_score: p.error_score(&params.error_weights),
                clops: p.spec.clops,
                capacity: p.spec.num_qubits as u64,
                qv_layers: p.spec.qv_layers(),
            })
            .collect();
        let view = CloudView {
            devices: devices
                .iter()
                .enumerate()
                .map(|(i, d)| crate::broker::DeviceView {
                    id: DeviceId(i as u32),
                    free: d.capacity,
                    capacity: d.capacity,
                    busy_fraction: 0.0,
                    mean_utilization: 0.0,
                    error_score: d.error_score,
                    clops: d.clops,
                    qv_layers: d.qv_layers,
                })
                .collect(),
        };
        let frees = devices.iter().map(|d| d.capacity).collect();
        QCloudGymEnv {
            cfg,
            params,
            dist,
            devices,
            rng: Xoshiro256StarStar::new(0),
            job: QJob {
                id: JobId(0),
                num_qubits: 1,
                depth: 1,
                num_shots: 1,
                two_qubit_gates: 1,
                arrival_time: 0.0,
            },
            frees,
            queue: QueueFeatures::default(),
            episode: 0,
            view,
            scratch: PartitionScratch::default(),
            parts: Vec::new(),
        }
    }

    /// The environment's config.
    pub fn config(&self) -> &GymConfig {
        &self.cfg
    }

    /// Draws the next episode (job, availability, queue context) and
    /// refreshes the internal view. No allocation.
    fn sample_episode(&mut self) {
        self.episode += 1;
        self.job = self.dist.sample(JobId(self.episode), 0.0, &mut self.rng);
        for (i, d) in self.devices.iter().enumerate() {
            let free = if self.rng.next_f64() < self.cfg.busy_device_prob {
                // Partially busy: keep at least ~25% free so episodes
                // are usually feasible.
                self.rng.range_u64(d.capacity / 4, d.capacity)
            } else {
                d.capacity
            };
            self.frees[i] = free;
            let v = &mut self.view.devices[i];
            v.free = free;
            let busy = 1.0 - free as f64 / d.capacity.max(1) as f64;
            v.busy_fraction = busy;
            v.mean_utilization = busy;
        }
        if self.cfg.queue_aware {
            // Synthesise congestion: a geometric-ish backlog with demand
            // drawn from the job distribution's qubit range and a head wait
            // up to the normaliser.
            let backlog = self.rng.range_u64(0, self.cfg.queue_len_norm as u64) as usize;
            let (qlo, qhi) = self.dist.qubits;
            let mut backlog_qubits = 0u64;
            for _ in 0..backlog {
                backlog_qubits += self.rng.range_u64(qlo, qhi);
            }
            self.queue = QueueFeatures {
                backlog,
                backlog_qubits,
                head_wait: self.rng.range_f64(0.0, self.cfg.queue_wait_norm),
            };
        }
    }

    /// Writes the current episode's observation into `out`.
    fn observe_into(&self, out: &mut [f32]) {
        encode_observation_into(out, self.job.num_qubits, &self.view, &self.queue, &self.cfg);
    }

    /// The reward for allocating `parts` of the current job — mean device
    /// fidelity (Eq. 7 per device), optionally × the φ penalty.
    fn reward_for(&self, parts: &[(DeviceId, u64)]) -> f64 {
        if parts.is_empty() {
            return 0.0;
        }
        let k = parts.len();
        let mut sum = 0.0f64;
        for &(dev, amt) in parts {
            let d = &self.devices[dev.index()];
            sum += self.params.fidelity.device_fidelity(
                &d.error_rates,
                self.job.depth,
                self.job.two_qubit_gates,
                amt,
                self.job.num_qubits,
                k,
            );
        }
        let mean = sum / k as f64;
        if self.cfg.comm_aware_reward {
            mean * self.params.comm.fidelity_penalty(k)
        } else {
            mean
        }
    }

    /// Scores `action` against the current episode without advancing it.
    fn score_action(&mut self, action: &[f32]) -> f64 {
        assert_eq!(action.len(), self.cfg.max_devices, "action dim mismatch");
        let weights = &action[..self.devices.len()];
        let feasible = weights_to_parts_into(
            weights,
            self.job.num_qubits,
            &self.frees,
            &mut self.scratch,
            &mut self.parts,
        );
        if feasible {
            self.reward_for(&self.parts)
        } else {
            // Infeasible system state (rare): no allocation, zero reward.
            0.0
        }
    }
}

impl Env for QCloudGymEnv {
    fn obs_dim(&self) -> usize {
        self.cfg.obs_dim()
    }

    fn action_dim(&self) -> usize {
        self.cfg.max_devices
    }

    fn reset(&mut self, seed: u64) -> Vec<f32> {
        let mut obs = vec![0.0f32; self.cfg.obs_dim()];
        self.reset_into(seed, &mut obs);
        obs
    }

    fn step(&mut self, action: &[f32]) -> StepResult {
        let mut obs = vec![0.0f32; self.cfg.obs_dim()];
        let info = self.step_into(action, &mut obs);
        StepResult {
            obs,
            reward: info.reward,
            terminated: info.terminated,
            truncated: info.truncated,
        }
    }

    fn reset_into(&mut self, seed: u64, obs_out: &mut [f32]) {
        self.rng = Xoshiro256StarStar::new(seed);
        self.episode = 0;
        self.queue = QueueFeatures::default();
        self.sample_episode();
        self.observe_into(obs_out);
    }

    fn step_into(&mut self, action: &[f32], obs_out: &mut [f32]) -> StepInfo {
        let reward = self.score_action(action);
        self.sample_episode();
        self.observe_into(obs_out);
        StepInfo {
            reward,
            terminated: true,
            truncated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_calibration::ibm_fleet;

    fn env() -> QCloudGymEnv {
        QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            GymConfig::default(),
        )
    }

    fn env_with(cfg: GymConfig) -> QCloudGymEnv {
        QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            cfg,
        )
    }

    #[test]
    fn observation_shape_matches_paper() {
        let mut e = env();
        assert_eq!(e.obs_dim(), 16, "1 + 3·5 = 16 (paper §4.1)");
        assert_eq!(e.action_dim(), 5);
        let obs = e.reset(1);
        assert_eq!(obs.len(), 16);
        // q/q_max in (0, 1]; free levels in (0, 127/150]; CLOPS ≤ 0.22.
        assert!(obs[0] > 0.0 && obs[0] <= 1.0);
        for slot in 0..5 {
            let free = obs[1 + 3 * slot];
            let err = obs[2 + 3 * slot];
            let clops = obs[3 + 3 * slot];
            assert!((0.0..=127.0 / 150.0 + 1e-6).contains(&free));
            assert!(err > 0.0 && err < 0.05);
            assert!(clops > 0.0 && clops <= 0.22 + 1e-6);
        }
    }

    #[test]
    fn queue_aware_observation_appends_three_features() {
        let cfg = GymConfig {
            queue_aware: true,
            ..GymConfig::default()
        };
        let mut e = env_with(cfg.clone());
        assert_eq!(e.obs_dim(), 19, "16 + 3 queue features");
        let obs = e.reset(2);
        assert_eq!(obs.len(), 19);
        for f in &obs[16..] {
            assert!((0.0..=1.0 + 1e-6).contains(f), "queue feature {f}");
        }
        // Across episodes the synthetic backlog must actually vary.
        let mut seen_nonzero = false;
        for _ in 0..20 {
            let r = e.step(&[1.0; 5]);
            seen_nonzero |= r.obs[16] > 0.0;
        }
        assert!(seen_nonzero, "queue features never non-zero");
    }

    #[test]
    fn queue_features_clamp_to_unit_interval() {
        // Backlogged traces produce raw queue signals far past the
        // normalisers; the encoded features must saturate at 1, matching
        // the bounded device features.
        let cfg = GymConfig {
            queue_aware: true,
            ..GymConfig::default()
        };
        let view = CloudView {
            devices: vec![crate::broker::DeviceView {
                id: DeviceId(0),
                free: 100,
                capacity: 127,
                busy_fraction: 0.2,
                mean_utilization: 0.2,
                error_score: 0.01,
                clops: 220_000.0,
                qv_layers: 7.0,
            }],
        };
        let oversized = QueueFeatures {
            backlog: 10_000,
            backlog_qubits: 2_000_000,
            head_wait: 500_000.0,
        };
        let mut obs = vec![0.0f32; cfg.obs_dim()];
        encode_observation_into(&mut obs, 190, &view, &oversized, &cfg);
        let base = 1 + 3 * cfg.max_devices;
        assert_eq!(obs[base], 1.0, "queue length saturates");
        assert_eq!(obs[base + 1], 1.0, "queued demand saturates");
        assert_eq!(obs[base + 2], 1.0, "head wait saturates");
        // In-range signals still scale linearly below the clamp.
        let small = QueueFeatures {
            backlog: 16,
            backlog_qubits: 4_000,
            head_wait: 1_800.0,
        };
        encode_observation_into(&mut obs, 190, &view, &small, &cfg);
        assert_eq!(obs[base], 0.5);
        assert_eq!(obs[base + 1], 0.5);
        assert_eq!(obs[base + 2], 0.5);
    }

    #[test]
    fn queue_aware_flag_off_is_paper_parity() {
        // Default-off must leave both the shape and the RNG stream exactly
        // as the paper env: the flag draws extra random numbers only when
        // enabled, so rewards and observations match the 16-dim env.
        let mut plain = env();
        let mut explicit = env_with(GymConfig {
            queue_aware: false,
            ..GymConfig::default()
        });
        let a = plain.reset(7);
        let b = explicit.reset(7);
        assert_eq!(a, b);
        for _ in 0..50 {
            let ra = plain.step(&[0.4, 0.8, 0.1, 0.0, 1.0]);
            let rb = explicit.step(&[0.4, 0.8, 0.1, 0.0, 1.0]);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn native_into_paths_match_allocating_paths() {
        let mut a = env();
        let mut b = env();
        let mut obs = vec![0.0f32; a.obs_dim()];
        b.reset_into(9, &mut obs);
        assert_eq!(a.reset(9), obs);
        for i in 0..100 {
            let act = [0.1 * i as f32 % 1.0, 0.5, 0.9, 0.2, 0.7];
            let r = a.step(&act);
            let info = b.step_into(&act, &mut obs);
            assert_eq!(r.obs, obs, "step {i}");
            assert_eq!(r.reward, info.reward);
            assert_eq!(r.terminated, info.terminated);
            assert_eq!(r.truncated, info.truncated);
        }
    }

    #[test]
    fn episodes_are_single_step() {
        let mut e = env();
        e.reset(2);
        let r = e.step(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(r.terminated);
        assert!(!r.truncated);
        assert_eq!(r.obs.len(), 16, "auto-advances to the next episode state");
    }

    #[test]
    fn reward_in_unit_interval_and_meaningful() {
        let mut e = env();
        e.reset(3);
        let mut sum = 0.0;
        for _ in 0..200 {
            let r = e.step(&[1.0, 1.0, 1.0, 1.0, 1.0]);
            assert!((0.0..=1.0).contains(&r.reward), "reward {}", r.reward);
            sum += r.reward;
        }
        let mean = sum / 200.0;
        assert!(
            (0.4..0.95).contains(&mean),
            "mean reward {mean} outside plausible fidelity band"
        );
    }

    /// The paper's training reward (mean device fidelity, **no** φ penalty)
    /// is genuinely maximised by fragmenting: Eq. 6's readout exponent
    /// `√(q/k)` *shrinks* as k grows, outweighing the cleaner-device
    /// advantage. This is exactly why the paper's trained agent spreads
    /// jobs (highest `T_comm`, lowest deployed fidelity in Table 2). With
    /// communication-aware shaping the incentive flips.
    #[test]
    fn plain_reward_favours_spreading_comm_aware_reverses_it() {
        let mean_reward = |comm_aware: bool, weights: &[f32; 5]| -> f64 {
            let cfg = GymConfig {
                comm_aware_reward: comm_aware,
                busy_device_prob: 0.0,
                ..GymConfig::default()
            };
            let mut e = QCloudGymEnv::new(
                &ibm_fleet(1),
                JobDistribution::default(),
                SimParams::default(),
                cfg,
            );
            e.reset(4);
            let n = 300;
            (0..n).map(|_| e.step(weights).reward).sum::<f64>() / n as f64
        };
        let focused = [1.0f32, 1.0, 0.0, 0.0, 0.0];
        let spread = [0.2f32, 0.2, 0.2, 0.2, 0.2];

        // Plain (paper) reward: spreading wins — the agent's fragmentation
        // incentive.
        assert!(
            mean_reward(false, &spread) > mean_reward(false, &focused),
            "plain reward should favour spreading: spread {} vs focused {}",
            mean_reward(false, &spread),
            mean_reward(false, &focused)
        );
        // Comm-aware shaping: concentration wins.
        assert!(
            mean_reward(true, &focused) > mean_reward(true, &spread),
            "shaped reward should favour focus: focused {} vs spread {}",
            mean_reward(true, &focused),
            mean_reward(true, &spread)
        );
    }

    #[test]
    fn comm_aware_reward_penalises_fragmentation() {
        let cfg = GymConfig {
            comm_aware_reward: true,
            busy_device_prob: 0.0, // always fully free → deterministic k
            ..GymConfig::default()
        };
        let mut e = QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            cfg.clone(),
        );
        let plain = GymConfig {
            busy_device_prob: 0.0,
            ..GymConfig::default()
        };
        let mut e2 = QCloudGymEnv::new(
            &ibm_fleet(1),
            JobDistribution::default(),
            SimParams::default(),
            plain,
        );
        e.reset(5);
        e2.reset(5);
        let spread = [0.2f32, 0.2, 0.2, 0.2, 0.2];
        let r_shaped = e.step(&spread).reward;
        let r_plain = e2.step(&spread).reward;
        assert!(
            r_shaped < r_plain,
            "shaping must penalise: {r_shaped} !< {r_plain}"
        );
    }

    #[test]
    fn reset_is_deterministic() {
        let mut a = env();
        let mut b = env();
        assert_eq!(a.reset(42), b.reset(42));
        let act = vec![0.5f32; 5];
        assert_eq!(a.step(&act), b.step(&act));
    }

    #[test]
    fn encode_observation_pads_missing_devices() {
        let cfg = GymConfig::default();
        let view = CloudView {
            devices: vec![crate::broker::DeviceView {
                id: DeviceId(0),
                free: 100,
                capacity: 127,
                busy_fraction: 0.2,
                mean_utilization: 0.2,
                error_score: 0.01,
                clops: 220_000.0,
                qv_layers: 7.0,
            }],
        };
        let obs = encode_observation(190, &view, &cfg);
        assert_eq!(obs.len(), 16);
        assert!(obs[4..].iter().all(|&x| x == 0.0), "slots 2–5 zero-padded");
    }

    #[test]
    fn gym_config_tolerates_pre_queue_aware_json() {
        // Checkpoint configs serialised before the queue-aware fields were
        // added must still load (serde defaults).
        let old = r#"{"max_devices":5,"q_max_norm":250.0,"capacity_norm":150.0,"clops_norm":1000000.0,"comm_aware_reward":false,"busy_device_prob":0.5}"#;
        let cfg: GymConfig = serde_json::from_str(old).unwrap();
        assert!(!cfg.queue_aware);
        assert_eq!(cfg.obs_dim(), 16);
        let json = serde_json::to_string(&GymConfig::default()).unwrap();
        let back: GymConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, GymConfig::default());
    }
}
