//! Hybrid speed–fidelity allocation: a single tunable trade-off knob.
//!
//! The paper's case study exposes a discrete trade-off (speed vs
//! error-aware). This policy interpolates between them: each device is
//! scored `w · err_norm + (1 − w) · slow_norm` (both terms normalised to
//! `[0, 1]` within the current fleet snapshot) and devices are filled in
//! ascending score order, spilling on contention like the speed policy.
//!
//! * `w = 0` reproduces speed-based ordering (fastest first);
//! * `w = 1` orders purely by error score (fidelity-*leaning*, but
//!   availability-greedy rather than quality-strict — it will not wait);
//! * sweeping `w` traces the speed–fidelity Pareto front
//!   (`cargo run -p qcs-bench --release --bin pareto`).

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::job::QJob;
use crate::partition::greedy_fill;
use crate::policies::speed::ordered;

/// Weighted speed–fidelity policy; see the module docs.
#[derive(Debug, Clone)]
pub struct HybridBroker {
    weight: f64,
    strict: bool,
    name: String,
}

impl HybridBroker {
    /// Creates the availability-greedy policy with fidelity weight
    /// `w ∈ [0, 1]` (spills to lower-ranked devices on contention, like
    /// the paper's speed mode).
    pub fn new(weight: f64) -> Self {
        Self::build(weight, false)
    }

    /// Creates the **quality-strict** variant: the partition is computed
    /// from the score-ranked devices' full capacities and the broker waits
    /// until exactly those devices are free (the discipline that gives the
    /// paper's error-aware mode its fidelity edge). Sweeping `w` over the
    /// strict variant traces the real speed–fidelity frontier; the greedy
    /// variant shows that ordering *without* waiting buys little.
    pub fn strict(weight: f64) -> Self {
        Self::build(weight, true)
    }

    fn build(weight: f64, strict: bool) -> Self {
        assert!(
            (0.0..=1.0).contains(&weight),
            "fidelity weight must lie in [0, 1], got {weight}"
        );
        let name = if strict {
            format!("hybrid-strict({weight:.2})")
        } else {
            format!("hybrid({weight:.2})")
        };
        HybridBroker {
            weight,
            strict,
            name,
        }
    }

    /// The fidelity weight `w`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether this is the quality-strict variant.
    pub fn is_strict(&self) -> bool {
        self.strict
    }
}

impl Broker for HybridBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        // Normalisers over the snapshot (guard against degenerate fleets).
        let max_err = view
            .devices
            .iter()
            .map(|d| d.error_score)
            .fold(f64::EPSILON, f64::max);
        let max_clops = view
            .devices
            .iter()
            .map(|d| d.clops)
            .fold(f64::EPSILON, f64::max);
        let w = self.weight;
        let order = view.order_by(|d| {
            let err_norm = d.error_score / max_err;
            let slow_norm = 1.0 - d.clops / max_clops;
            ordered(w * err_norm + (1.0 - w) * slow_norm)
        });
        if self.strict {
            let target = crate::partition::capacity_fill(&order, view, job.num_qubits);
            let satisfiable = target
                .iter()
                .all(|&(dev, amt)| view.devices[dev.index()].free >= amt);
            return if satisfiable {
                AllocationPlan::Dispatch(target)
            } else {
                AllocationPlan::Wait
            };
        }
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};
    use crate::device::DeviceId;

    #[test]
    fn zero_weight_matches_speed_ordering() {
        // test_view: device 0 is fastest and lowest-error.
        let view = test_view(&[127, 127, 127]);
        let mut h = HybridBroker::new(0.0);
        let mut s = crate::policies::SpeedBroker::new();
        assert_eq!(
            h.select(&test_job(200), &view),
            s.select(&test_job(200), &view)
        );
    }

    #[test]
    fn full_weight_orders_by_error() {
        // Invert the correlation: make the *fastest* device the *noisiest*.
        let mut view = test_view(&[127, 127, 127]);
        view.devices[0].error_score = 0.5;
        view.devices[2].error_score = 0.001;
        let mut h = HybridBroker::new(1.0);
        let AllocationPlan::Dispatch(parts) = h.select(&test_job(200), &view) else {
            panic!("expected dispatch");
        };
        assert_eq!(parts[0].0, DeviceId(2), "lowest-error device first");
        assert_ne!(parts.iter().map(|p| p.0).next(), Some(DeviceId(0)));
    }

    #[test]
    fn intermediate_weight_trades_off() {
        // Device 0: fast + noisy; device 1: slow + clean; device 2: slow +
        // noisy (dominated). A mid-weight policy must never start with the
        // dominated device.
        let mut view = test_view(&[127, 127, 127]);
        view.devices[0].clops = 220_000.0;
        view.devices[0].error_score = 0.4;
        view.devices[1].clops = 30_000.0;
        view.devices[1].error_score = 0.01;
        view.devices[2].clops = 30_000.0;
        view.devices[2].error_score = 0.4;
        for w in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut h = HybridBroker::new(w);
            let AllocationPlan::Dispatch(parts) = h.select(&test_job(140), &view) else {
                panic!("expected dispatch at w={w}");
            };
            assert_ne!(
                parts[0].0,
                DeviceId(2),
                "dominated device chosen first at w={w}"
            );
        }
    }

    #[test]
    fn waits_when_fleet_full() {
        let view = test_view(&[10, 10, 10]);
        let mut h = HybridBroker::new(0.5);
        assert_eq!(h.select(&test_job(200), &view), AllocationPlan::Wait);
    }

    #[test]
    fn plans_validate() {
        let view = test_view(&[127, 60, 127, 90, 40]);
        let job = test_job(250);
        for w in [0.0, 0.3, 0.7, 1.0] {
            let mut h = HybridBroker::new(w);
            h.select(&job, &view).validate(&job, &view).unwrap();
        }
    }

    #[test]
    fn name_encodes_weight() {
        assert_eq!(HybridBroker::new(0.25).name(), "hybrid(0.25)");
        assert_eq!(HybridBroker::new(0.25).weight(), 0.25);
        assert!(!HybridBroker::new(0.25).is_strict());
        assert_eq!(HybridBroker::strict(0.75).name(), "hybrid-strict(0.75)");
        assert!(HybridBroker::strict(0.75).is_strict());
    }

    #[test]
    fn strict_full_weight_matches_fidelity_policy() {
        // At w = 1 the strict hybrid reduces to the paper's error-aware
        // mode: same target, same waiting discipline.
        let view = test_view(&[100, 127, 127]);
        let mut strict = HybridBroker::strict(1.0);
        let mut fid = crate::policies::FidelityBroker::new();
        let job = test_job(200);
        assert_eq!(strict.select(&job, &view), fid.select(&job, &view));
        let view_free = test_view(&[127, 127, 127]);
        assert_eq!(
            strict.select(&job, &view_free),
            fid.select(&job, &view_free)
        );
    }

    #[test]
    fn strict_waits_greedy_spills() {
        // Preferred device busy: greedy spills, strict waits.
        let view = test_view(&[100, 127, 127]);
        let job = test_job(200);
        assert_eq!(
            HybridBroker::strict(0.5).select(&job, &view),
            AllocationPlan::Wait
        );
        assert!(matches!(
            HybridBroker::new(0.5).select(&job, &view),
            AllocationPlan::Dispatch(_)
        ));
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_out_of_range_weight() {
        HybridBroker::new(1.5);
    }
}
