//! RL-based allocation (paper §5, "Reinforcement Learning Mode"): a trained
//! PPO policy emits continuous allocation weights over the fleet, which are
//! normalised and rounded into a qubit partition (§4.1).

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::gym::{encode_observation, GymConfig};
use crate::job::QJob;
use crate::partition::{free_limits, weights_to_parts};
use qcs_rl::policy::{ActScratch, ActorCritic};

/// Deploys a trained [`ActorCritic`] as an allocation policy. Uses the
/// deterministic (mean) action, matching SB3's `predict(deterministic=True)`
/// deployment convention.
pub struct RlBroker {
    policy: ActorCritic,
    cfg: GymConfig,
    scratch: ActScratch,
}

impl RlBroker {
    /// Wraps a trained policy. `cfg` must match the training configuration
    /// (normalisers and device-slot count).
    pub fn new(policy: ActorCritic, cfg: GymConfig) -> Self {
        assert_eq!(
            policy.obs_dim(),
            cfg.obs_dim(),
            "policy was trained with a different observation layout"
        );
        assert_eq!(
            policy.action_dim(),
            cfg.max_devices,
            "policy was trained with a different device count"
        );
        RlBroker {
            policy,
            cfg,
            scratch: ActScratch::new(),
        }
    }

    /// Loads a policy previously saved with
    /// [`ActorCritic::to_json`].
    pub fn from_json(json: &str, cfg: GymConfig) -> Result<Self, String> {
        Ok(Self::new(ActorCritic::from_json(json)?, cfg))
    }
}

impl Broker for RlBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let obs = encode_observation(job.num_qubits, view, &self.cfg);
        let weights = self.policy.act_deterministic(&obs, &mut self.scratch);
        let limits = free_limits(view);
        match weights_to_parts(&weights[..view.devices.len()], job.num_qubits, &limits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "rlbase"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};
    use qcs_desim::Xoshiro256StarStar;

    fn untrained_broker() -> RlBroker {
        let cfg = GymConfig::default();
        let mut rng = Xoshiro256StarStar::new(1);
        let policy = ActorCritic::new(cfg.obs_dim(), cfg.max_devices, &mut rng);
        RlBroker::new(policy, cfg)
    }

    #[test]
    fn produces_valid_dispatch_on_free_fleet() {
        let mut b = untrained_broker();
        let view = test_view(&[127, 127, 127, 127, 127]);
        let job = test_job(190);
        let plan = b.select(&job, &view);
        plan.validate(&job, &view).unwrap();
        assert!(plan.device_count() >= 2, "q > 127 forces a split");
    }

    #[test]
    fn waits_when_fleet_exhausted() {
        let mut b = untrained_broker();
        let view = test_view(&[30, 30, 30, 30, 30]);
        assert_eq!(b.select(&test_job(190), &view), AllocationPlan::Wait);
    }

    #[test]
    fn deterministic_deployment() {
        let mut b1 = untrained_broker();
        let mut b2 = untrained_broker();
        let view = test_view(&[127, 90, 127, 60, 127]);
        let job = test_job(210);
        assert_eq!(b1.select(&job, &view), b2.select(&job, &view));
    }

    #[test]
    fn json_roundtrip() {
        let cfg = GymConfig::default();
        let mut rng = Xoshiro256StarStar::new(2);
        let policy = ActorCritic::new(cfg.obs_dim(), cfg.max_devices, &mut rng);
        let json = policy.to_json();
        let mut b1 = RlBroker::new(policy, cfg.clone());
        let mut b2 = RlBroker::from_json(&json, cfg).unwrap();
        let view = test_view(&[127, 127, 127, 127, 127]);
        let job = test_job(170);
        assert_eq!(b1.select(&job, &view), b2.select(&job, &view));
    }

    #[test]
    #[should_panic(expected = "different observation layout")]
    fn mismatched_policy_rejected() {
        let cfg = GymConfig::default();
        let mut rng = Xoshiro256StarStar::new(3);
        let policy = ActorCritic::new(7, cfg.max_devices, &mut rng);
        let _ = RlBroker::new(policy, cfg);
    }
}
