//! Error-aware allocation (paper §5, "Error-aware Mode"): maximise circuit
//! fidelity by targeting the devices with the lowest error scores.
//!
//! This policy is **quality-strict**: it computes its preferred partition
//! from the error-ranked devices' *full capacities* and dispatches only
//! when those exact devices can supply it — otherwise it waits. That is the
//! behaviour needed to reproduce Table 2: the error-aware strategy attains
//! the best fidelity and the lowest communication time (k stays minimal)
//! at the price of roughly doubled makespan from queueing on the premium
//! devices.

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::job::QJob;
use crate::partition::capacity_fill;
use crate::policies::speed::ordered;

/// Lowest-error-first, quality-strict.
#[derive(Debug, Default, Clone)]
pub struct FidelityBroker;

impl FidelityBroker {
    /// Creates the policy.
    pub fn new() -> Self {
        FidelityBroker
    }
}

impl Broker for FidelityBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let order = view.order_by(|d| ordered(d.error_score));
        let target = capacity_fill(&order, view, job.num_qubits);
        let satisfiable = target
            .iter()
            .all(|&(dev, amt)| view.devices[dev.index()].free >= amt);
        if satisfiable {
            AllocationPlan::Dispatch(target)
        } else {
            AllocationPlan::Wait
        }
    }

    fn name(&self) -> &str {
        "fidelity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};
    use crate::device::DeviceId;

    #[test]
    fn targets_lowest_error_devices() {
        // test_view error scores ascend with id: device 0 is cleanest.
        let view = test_view(&[127, 127, 127]);
        let mut b = FidelityBroker::new();
        let AllocationPlan::Dispatch(parts) = b.select(&test_job(200), &view) else {
            panic!("expected dispatch")
        };
        assert_eq!(parts, vec![(DeviceId(0), 127), (DeviceId(1), 73)]);
    }

    #[test]
    fn waits_instead_of_spilling() {
        // Device 0 busy: the speed policy would spill to device 2; the
        // fidelity policy waits for its preferred pair.
        let view = test_view(&[100, 127, 127]);
        let mut b = FidelityBroker::new();
        assert_eq!(b.select(&test_job(200), &view), AllocationPlan::Wait);
    }

    #[test]
    fn dispatches_when_preferred_devices_free() {
        let view = test_view(&[127, 80, 127]);
        let mut b = FidelityBroker::new();
        // Needs (127, 73): device 1 has 80 free ≥ 73 → dispatch.
        let AllocationPlan::Dispatch(parts) = b.select(&test_job(200), &view) else {
            panic!("expected dispatch")
        };
        assert_eq!(parts, vec![(DeviceId(0), 127), (DeviceId(1), 73)]);
    }

    #[test]
    fn minimal_device_count() {
        // 127 ≤ q ≤ 254 always yields exactly 2 devices (lowest comm).
        let view = test_view(&[127, 127, 127, 127, 127]);
        let mut b = FidelityBroker::new();
        for q in [130u64, 190, 250] {
            let plan = b.select(&test_job(q), &view);
            assert_eq!(plan.device_count(), 2, "q = {q}");
        }
    }
}
