//! Typed scheduler specifications — the parsed form of the CLI's
//! `[discipline+]placement` strings.
//!
//! # Grammar
//!
//! This is the single place the spec grammar is defined; every CLI help
//! listing and every parser goes through the registry below.
//!
//! ```text
//! spec        := [ discipline "+" ] placement
//! discipline  := "fifo" | "snapshot" | "backfill" | "conservative"
//!              | "priority" [ ":" ("sjf" | "edf" | "aging") ]
//! placement   := "speed" | "fidelity" | "fair" | "roundrobin" | "random"
//!              | "minfrag" | "hybrid" | "hybrid-strict" | "rl:" path
//! ```
//!
//! A bare placement means `fifo+<placement>` (the seed's head-of-line
//! semantics); `priority` alone is an alias for `priority:sjf`. The split
//! is on the **first** `+`, and a spec starting with `rl:` is recognised
//! as a bare placement *before* splitting — so an `rl:` checkpoint path
//! may contain `+` and `:` freely in both the bare and composed forms.
//!
//! [`SchedSpec`] is the typed value: a [`Discipline`] plus a
//! [`Placement`]. `FromStr` parses the grammar with errors that name the
//! offending token and list the accepted ones; `Display` renders the
//! canonical string (aliases normalised: `priority` → `priority:sjf`, a
//! bare placement stays bare), and the two round-trip:
//! `spec.to_string().parse() == Ok(spec)` for every well-formed spec.
//! The stringly surface ([`super::by_name`], [`super::scheduler_by_name`])
//! is a thin wrapper over this parser and accepts exactly the same
//! strings it always did.

use std::fmt;
use std::str::FromStr;

/// One registered spec component: the token the parser accepts and a
/// one-line summary for CLI help text.
#[derive(Debug, Clone, Copy)]
pub struct SpecComponent {
    /// The literal token (`rl:<path>` stands for the checkpoint form).
    pub token: &'static str,
    /// One-line description for `--help` output.
    pub summary: &'static str,
}

/// Every placement policy the grammar accepts, in help-listing order —
/// **the** registry: [`super::names`], the parser and the round-trip
/// smoke test all derive from this table.
pub const PLACEMENTS: &[SpecComponent] = &[
    SpecComponent {
        token: "speed",
        summary: "fastest (highest-CLOPS) devices first, spill on contention",
    },
    SpecComponent {
        token: "fidelity",
        summary: "lowest-error devices, waits for them (quality-strict)",
    },
    SpecComponent {
        token: "fair",
        summary: "least-utilised devices first, spill on contention",
    },
    SpecComponent {
        token: "roundrobin",
        summary: "rotating start device (baseline)",
    },
    SpecComponent {
        token: "random",
        summary: "seeded random device order (baseline)",
    },
    SpecComponent {
        token: "minfrag",
        summary: "minimal-fragmentation packing",
    },
    SpecComponent {
        token: "hybrid",
        summary: "blended speed/fidelity score (alpha = 0.5), work-conserving",
    },
    SpecComponent {
        token: "hybrid-strict",
        summary: "blended score, quality-strict admission",
    },
    SpecComponent {
        token: "rl:<path>",
        summary: "trained PPO policy from an ActorCritic JSON checkpoint",
    },
];

/// Every scheduling discipline the grammar accepts, in help-listing order
/// (part of the same registry as [`PLACEMENTS`]).
pub const DISCIPLINES: &[SpecComponent] = &[
    SpecComponent {
        token: "fifo",
        summary: "head-of-line FIFO over the scan window (seed semantics; default)",
    },
    SpecComponent {
        token: "backfill",
        summary: "EASY backfilling: shadow-time reservation for the blocked head",
    },
    SpecComponent {
        token: "conservative",
        summary: "conservative backfilling: a start reservation for every queued job",
    },
    SpecComponent {
        token: "priority",
        summary: "alias for priority:sjf",
    },
    SpecComponent {
        token: "priority:sjf",
        summary: "shortest-job-first ranked queue",
    },
    SpecComponent {
        token: "priority:edf",
        summary: "earliest-deadline-first ranked queue",
    },
    SpecComponent {
        token: "priority:aging",
        summary: "qubit-demand ranking with waiting-time aging",
    },
    SpecComponent {
        token: "snapshot",
        summary: "seed-mechanics parity baseline (benchmarking only)",
    },
];

/// A placement policy (the paper's §5 strategies plus baselines), parsed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Fastest (highest-CLOPS) devices first.
    Speed,
    /// Lowest-error devices, quality-strict.
    Fidelity,
    /// Least-utilised devices first.
    Fair,
    /// Rotating start device.
    RoundRobin,
    /// Seeded random device order.
    Random,
    /// Minimal-fragmentation packing.
    MinFrag,
    /// Blended speed/fidelity score, work-conserving.
    Hybrid,
    /// Blended score, quality-strict admission.
    HybridStrict,
    /// Trained PPO policy loaded from the checkpoint at `path`.
    Rl {
        /// Filesystem path of the ActorCritic JSON checkpoint.
        path: String,
    },
}

/// The ranking rule of a `priority` discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityRule {
    /// Shortest job first.
    Sjf,
    /// Earliest deadline first.
    Edf,
    /// Qubit demand with waiting-time aging.
    Aging,
}

/// A queue discipline, parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// Head-of-line FIFO (the default for a bare placement).
    Fifo,
    /// Seed-mechanics snapshot baseline.
    Snapshot,
    /// EASY backfilling.
    Backfill,
    /// Conservative backfilling.
    Conservative,
    /// Ranked-queue discipline with the given rule.
    Priority(PriorityRule),
}

/// A fully parsed scheduler specification: discipline + placement.
///
/// See the [module docs](self) for the grammar. Construct directly, or
/// parse from the CLI string form:
///
/// ```
/// use qcs_qcloud::policies::{Discipline, Placement, SchedSpec};
///
/// let spec: SchedSpec = "conservative+fair".parse().unwrap();
/// assert_eq!(spec.discipline, Discipline::Conservative);
/// assert_eq!(spec.placement, Placement::Fair);
/// assert_eq!(spec.to_string(), "conservative+fair");
///
/// let err = "warp+speed".parse::<SchedSpec>().unwrap_err();
/// assert!(err.to_string().contains("warp"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedSpec {
    /// The queue discipline.
    pub discipline: Discipline,
    /// The placement policy the discipline consults.
    pub placement: Placement,
}

impl SchedSpec {
    /// The seed default for a bare placement token: `fifo+<placement>`.
    pub fn fifo(placement: Placement) -> Self {
        SchedSpec {
            discipline: Discipline::Fifo,
            placement,
        }
    }
}

/// A spec string failed to parse: names the offending token and what was
/// expected in its place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecParseError {
    /// The discipline component (before `+`) is not registered.
    UnknownDiscipline(String),
    /// The placement component is not registered.
    UnknownPlacement(String),
}

fn tokens(reg: &'static [SpecComponent]) -> String {
    let toks: Vec<&str> = reg.iter().map(|c| c.token).collect();
    toks.join(", ")
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecParseError::UnknownDiscipline(t) => write!(
                f,
                "unknown scheduling discipline `{t}` (expected one of: {})",
                tokens(DISCIPLINES)
            ),
            SpecParseError::UnknownPlacement(t) => write!(
                f,
                "unknown placement policy `{t}` (expected one of: {})",
                tokens(PLACEMENTS)
            ),
        }
    }
}

impl std::error::Error for SpecParseError {}

impl FromStr for Placement {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(path) = s.strip_prefix("rl:") {
            return Ok(Placement::Rl {
                path: path.to_string(),
            });
        }
        match s {
            "speed" => Ok(Placement::Speed),
            "fidelity" => Ok(Placement::Fidelity),
            "fair" => Ok(Placement::Fair),
            "roundrobin" => Ok(Placement::RoundRobin),
            "random" => Ok(Placement::Random),
            "minfrag" => Ok(Placement::MinFrag),
            "hybrid" => Ok(Placement::Hybrid),
            "hybrid-strict" => Ok(Placement::HybridStrict),
            _ => Err(SpecParseError::UnknownPlacement(s.to_string())),
        }
    }
}

impl FromStr for Discipline {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(Discipline::Fifo),
            "snapshot" => Ok(Discipline::Snapshot),
            "backfill" => Ok(Discipline::Backfill),
            "conservative" => Ok(Discipline::Conservative),
            "priority" | "priority:sjf" => Ok(Discipline::Priority(PriorityRule::Sjf)),
            "priority:edf" => Ok(Discipline::Priority(PriorityRule::Edf)),
            "priority:aging" => Ok(Discipline::Priority(PriorityRule::Aging)),
            _ => Err(SpecParseError::UnknownDiscipline(s.to_string())),
        }
    }
}

impl FromStr for SchedSpec {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // A bare `rl:` spec is all payload: the checkpoint path may itself
        // contain `+` (or anything else), so it must never be split as
        // `discipline+placement`.
        if s.starts_with("rl:") {
            return Ok(SchedSpec::fifo(s.parse()?));
        }
        // Split on the FIRST `+` (the seed behaviour): everything after it
        // is the placement, so `backfill+rl:ckpt+v2.json` keeps its path.
        match s.split_once('+') {
            Some((d, p)) => Ok(SchedSpec {
                discipline: d.parse()?,
                placement: p.parse()?,
            }),
            None => Ok(SchedSpec::fifo(s.parse()?)),
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::Speed => f.write_str("speed"),
            Placement::Fidelity => f.write_str("fidelity"),
            Placement::Fair => f.write_str("fair"),
            Placement::RoundRobin => f.write_str("roundrobin"),
            Placement::Random => f.write_str("random"),
            Placement::MinFrag => f.write_str("minfrag"),
            Placement::Hybrid => f.write_str("hybrid"),
            Placement::HybridStrict => f.write_str("hybrid-strict"),
            Placement::Rl { path } => write!(f, "rl:{path}"),
        }
    }
}

impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Discipline::Fifo => f.write_str("fifo"),
            Discipline::Snapshot => f.write_str("snapshot"),
            Discipline::Backfill => f.write_str("backfill"),
            Discipline::Conservative => f.write_str("conservative"),
            Discipline::Priority(PriorityRule::Sjf) => f.write_str("priority:sjf"),
            Discipline::Priority(PriorityRule::Edf) => f.write_str("priority:edf"),
            Discipline::Priority(PriorityRule::Aging) => f.write_str("priority:aging"),
        }
    }
}

impl fmt::Display for SchedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Canonical form: a FIFO spec renders as the bare placement (the
        // seed CLI form), everything else as `discipline+placement`.
        match self.discipline {
            Discipline::Fifo => write!(f, "{}", self.placement),
            _ => write!(f, "{}+{}", self.discipline, self.placement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_placement_as_fifo() {
        let s: SchedSpec = "speed".parse().unwrap();
        assert_eq!(s.discipline, Discipline::Fifo);
        assert_eq!(s.placement, Placement::Speed);
        assert_eq!(s.to_string(), "speed");
    }

    #[test]
    fn parses_composed_specs() {
        let s: SchedSpec = "conservative+hybrid-strict".parse().unwrap();
        assert_eq!(s.discipline, Discipline::Conservative);
        assert_eq!(s.placement, Placement::HybridStrict);
        let s: SchedSpec = "priority+speed".parse().unwrap();
        assert_eq!(s.discipline, Discipline::Priority(PriorityRule::Sjf));
        // The alias normalises in the canonical rendering…
        assert_eq!(s.to_string(), "priority:sjf+speed");
        // …and the canonical rendering parses back to the same value.
        assert_eq!(s.to_string().parse::<SchedSpec>().unwrap(), s);
    }

    #[test]
    fn rl_paths_survive_the_first_plus_split() {
        let s: SchedSpec = "backfill+rl:ckpt+v2.json".parse().unwrap();
        assert_eq!(s.discipline, Discipline::Backfill);
        assert_eq!(
            s.placement,
            Placement::Rl {
                path: "ckpt+v2.json".into()
            }
        );
        assert_eq!(s.to_string(), "backfill+rl:ckpt+v2.json");
    }

    #[test]
    fn bare_rl_paths_with_plus_or_colon_round_trip() {
        // A bare `rl:` spec is all payload — the path may contain `+` or
        // `:` and must never be split at the discipline boundary.
        for path in [
            "/tmp/a+b.ckpt",
            "ckpt+v2.json",
            "C:/models/pi+vf.json",
            "runs/2024:07:01/policy.json",
        ] {
            let raw = format!("rl:{path}");
            let s: SchedSpec = raw
                .parse()
                .unwrap_or_else(|e| panic!("`{raw}` must parse: {e}"));
            assert_eq!(s.discipline, Discipline::Fifo, "{raw}");
            assert_eq!(s.placement, Placement::Rl { path: path.into() }, "{raw}");
            // Display re-emits the exact input.
            assert_eq!(s.to_string(), raw);
            assert_eq!(raw.parse::<SchedSpec>().unwrap(), s, "{raw} round trip");
        }
    }

    #[test]
    fn composed_rl_paths_with_plus_and_colon_round_trip() {
        for (raw, disc, path) in [
            (
                "conservative+rl:/tmp/a+b.ckpt",
                Discipline::Conservative,
                "/tmp/a+b.ckpt",
            ),
            (
                "backfill+rl:runs/07:30/w+b.json",
                Discipline::Backfill,
                "runs/07:30/w+b.json",
            ),
            (
                "priority:edf+rl:/x/y+z:0.json",
                Discipline::Priority(PriorityRule::Edf),
                "/x/y+z:0.json",
            ),
        ] {
            let s: SchedSpec = raw
                .parse()
                .unwrap_or_else(|e| panic!("`{raw}` must parse: {e}"));
            assert_eq!(s.discipline, disc, "{raw}");
            assert_eq!(s.placement, Placement::Rl { path: path.into() }, "{raw}");
            assert_eq!(s.to_string(), raw, "Display must re-emit the input");
            assert_eq!(raw.parse::<SchedSpec>().unwrap(), s, "{raw} round trip");
        }
    }

    #[test]
    fn errors_name_the_offending_token() {
        let e = "warp+speed".parse::<SchedSpec>().unwrap_err();
        assert_eq!(e, SpecParseError::UnknownDiscipline("warp".into()));
        assert!(e.to_string().contains("`warp`"), "{e}");
        assert!(e.to_string().contains("conservative"), "{e}");

        let e = "backfill+warp".parse::<SchedSpec>().unwrap_err();
        assert_eq!(e, SpecParseError::UnknownPlacement("warp".into()));
        assert!(e.to_string().contains("`warp`"), "{e}");
        assert!(e.to_string().contains("hybrid-strict"), "{e}");

        let e = "nope".parse::<SchedSpec>().unwrap_err();
        assert_eq!(e, SpecParseError::UnknownPlacement("nope".into()));
    }

    #[test]
    fn every_registered_component_parses_and_round_trips() {
        for d in DISCIPLINES {
            for p in PLACEMENTS {
                let ptok = if p.token == "rl:<path>" {
                    "rl:some/checkpoint.json"
                } else {
                    p.token
                };
                let spec = format!("{}+{}", d.token, ptok);
                let parsed: SchedSpec = spec
                    .parse()
                    .unwrap_or_else(|e| panic!("registered spec `{spec}` must parse: {e}"));
                // Canonical render parses back to the identical value.
                let rendered = parsed.to_string();
                let reparsed: SchedSpec = rendered
                    .parse()
                    .unwrap_or_else(|e| panic!("canonical `{rendered}` must re-parse: {e}"));
                assert_eq!(reparsed, parsed, "{spec} → {rendered}");
            }
        }
        for p in PLACEMENTS {
            if p.token == "rl:<path>" {
                continue;
            }
            let parsed: SchedSpec = p.token.parse().unwrap();
            assert_eq!(parsed.discipline, Discipline::Fifo);
            assert_eq!(parsed.to_string(), p.token);
        }
    }
}
