//! The allocation policies of paper §5 plus two extra baselines.
//!
//! | Policy | Paper mode | Selection rule |
//! |---|---|---|
//! | [`SpeedBroker`] | Speed-based | fastest (highest-CLOPS) devices first, spill on contention |
//! | [`FidelityBroker`] | Error-aware | lowest-error devices, *waits* for them (quality-strict) |
//! | [`FairBroker`] | Fair | least-utilised devices first, spill on contention |
//! | [`RlBroker`] | RL-based | trained PPO policy emits allocation weights |
//! | [`RoundRobinBroker`] | — | rotating start device (baseline) |
//! | [`RandomBroker`] | — | random device order (baseline) |
//!
//! Specs are **typed**: [`SchedSpec`] (a [`Discipline`] plus a
//! [`Placement`]) is the parsed form of the CLI's `[discipline+]policy`
//! grammar — see the [`spec`] module for the grammar definition and the
//! single registry every help listing derives from. The stringly surface
//! is a thin wrapper: [`by_name`] (including `rl:<checkpoint-path>` for a
//! trained RL policy) and [`scheduler_by_name`] (`backfill+speed`,
//! `priority:edf+fair`, …) parse to the typed form and build from it,
//! accepting exactly the strings they always did; [`names`] and
//! [`discipline_names`] feed CLI help text from the registry.

pub mod fair;
pub mod fidelity;
pub mod hybrid;
pub mod minfrag;
pub mod random;
pub mod rl;
pub mod round_robin;
pub mod spec;
pub mod speed;

pub use fair::FairBroker;
pub use fidelity::FidelityBroker;
pub use hybrid::HybridBroker;
pub use minfrag::MinFragBroker;
pub use random::RandomBroker;
pub use rl::RlBroker;
pub use round_robin::RoundRobinBroker;
pub use spec::{Discipline, Placement, PriorityRule, SchedSpec, SpecParseError};
pub use speed::SpeedBroker;

use crate::broker::Broker;
use crate::gym::GymConfig;
use crate::sched::{
    BackfillScheduler, ConservativeBackfillScheduler, FifoAdapter, PriorityDiscipline,
    PriorityScheduler, Scheduler, SnapshotAdapter,
};
use crate::sla::DeadlinePolicy;

/// The paper strategies by name (for harness CLI selection): `speed`,
/// `fidelity`, `fair`, `roundrobin`, `random`, `minfrag`, `hybrid`,
/// `hybrid-strict`, plus `rl:<checkpoint-path>` — the deployed RL policy
/// loaded from an [`qcs_rl::policy::ActorCritic`] JSON checkpoint (as
/// written by the `fig5`/`table2` harness binaries), so `rlbase` is
/// reachable from the CLI like every other policy.
///
/// Panics (with the I/O or decode error) when an `rl:` checkpoint exists
/// syntactically but cannot be loaded — a misconfiguration, not an unknown
/// name. Returns `None` only for unrecognised names.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Broker>> {
    name.parse::<Placement>().ok().map(|p| p.build(seed))
}

impl Placement {
    /// Instantiates the policy. `seed` feeds the stochastic baselines
    /// ([`Placement::Random`]).
    ///
    /// Panics (with the I/O or decode error) when an
    /// [`Placement::Rl`] checkpoint cannot be loaded — a
    /// misconfiguration, not an unknown name.
    pub fn build(&self, seed: u64) -> Box<dyn Broker> {
        match self {
            Placement::Speed => Box::new(SpeedBroker::new()),
            Placement::Fidelity => Box::new(FidelityBroker::new()),
            Placement::Fair => Box::new(FairBroker::new()),
            Placement::RoundRobin => Box::new(RoundRobinBroker::new()),
            Placement::Random => Box::new(RandomBroker::new(seed)),
            Placement::MinFrag => Box::new(MinFragBroker::new()),
            Placement::Hybrid => Box::new(HybridBroker::new(0.5)),
            Placement::HybridStrict => Box::new(HybridBroker::strict(0.5)),
            Placement::Rl { path } => {
                let json = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read RL checkpoint '{path}': {e}"));
                let broker = RlBroker::from_json(&json, GymConfig::default())
                    .unwrap_or_else(|e| panic!("invalid RL checkpoint '{path}': {e}"));
                Box::new(broker)
            }
        }
    }
}

impl SchedSpec {
    /// Instantiates the composed scheduler. `window` is the FIFO /
    /// snapshot scan depth (the seed semantics; `window = backfill_depth
    /// + 1` reproduces `SimParams`), ignored by the other disciplines.
    pub fn build(&self, seed: u64, window: usize) -> Box<dyn Scheduler> {
        // An `rl:` checkpoint can hold either a per-job placement policy
        // (a plain ActorCritic, composable under any discipline) or a
        // complete queue-deep scheduler trained on
        // [`crate::rlsched::SchedulerEnv`]. Probe for the latter first: it
        // replaces the whole discipline, so composing it makes no sense.
        if let Placement::Rl { path } = &self.placement {
            if let Some(sched) = crate::rlsched::try_load_scheduler(path, seed) {
                assert!(
                    matches!(self.discipline, Discipline::Fifo),
                    "scheduler RL checkpoint '{path}' is a complete discipline; \
                     it cannot compose under '{}'",
                    self.discipline
                );
                return sched;
            }
        }
        let broker = self.placement.build(seed);
        match self.discipline {
            Discipline::Fifo => Box::new(FifoAdapter::new(broker, window)),
            Discipline::Snapshot => Box::new(SnapshotAdapter::new(broker, window)),
            Discipline::Backfill => Box::new(BackfillScheduler::new(broker)),
            Discipline::Conservative => Box::new(ConservativeBackfillScheduler::new(broker)),
            Discipline::Priority(rule) => {
                let d = match rule {
                    PriorityRule::Sjf => PriorityDiscipline::ShortestFirst,
                    PriorityRule::Edf => {
                        PriorityDiscipline::EarliestDeadline(DeadlinePolicy::default())
                    }
                    // 0.1 qubits of priority per queued second: a 250-qubit
                    // job overtakes a fresh 130-qubit job after 20 minutes
                    // of waiting.
                    PriorityRule::Aging => PriorityDiscipline::WeightedAging { aging: 0.1 },
                };
                Box::new(PriorityScheduler::new(broker, d))
            }
        }
    }
}

/// Every name [`by_name`] accepts, for CLI help text, in registry order
/// ([`spec::PLACEMENTS`]). `rl:<path>` stands for the checkpoint-loading
/// spec.
pub fn names() -> Vec<&'static str> {
    spec::PLACEMENTS.iter().map(|c| c.token).collect()
}

/// Scheduling-discipline prefixes [`scheduler_by_name`] accepts in front of
/// a policy name (joined with `+`), for CLI help text, in registry order
/// ([`spec::DISCIPLINES`]).
pub fn discipline_names() -> Vec<&'static str> {
    spec::DISCIPLINES.iter().map(|c| c.token).collect()
}

/// Resolves a composed scheduler spec `[discipline+]policy` to a
/// queue-aware [`Scheduler`]:
///
/// * a bare policy name (`speed`, `rl:<path>`, …) or `fifo+<policy>` runs
///   under [`FifoAdapter`] with the given scan `window` (the seed
///   semantics; `window = backfill_depth + 1` reproduces `SimParams`);
/// * `backfill+<policy>` runs EASY backfilling ([`BackfillScheduler`]);
/// * `conservative+<policy>` runs conservative backfilling with
///   availability-aware start reservations for every queued job
///   ([`ConservativeBackfillScheduler`]);
/// * `priority+<policy>` (alias `priority:sjf`), `priority:edf+<policy>`,
///   `priority:aging+<policy>` run the ranked-queue disciplines
///   ([`PriorityScheduler`]);
/// * `snapshot+<policy>` runs the seed-mechanics parity baseline
///   ([`SnapshotAdapter`]) — for benchmarking, not production.
///
/// Returns `None` when either component is unknown; parse via
/// [`SchedSpec`] directly for an error naming the offending token.
pub fn scheduler_by_name(spec: &str, seed: u64, window: usize) -> Option<Box<dyn Scheduler>> {
    spec.parse::<SchedSpec>()
        .ok()
        .map(|s| s.build(seed, window))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_known_policies() {
        for n in [
            "speed",
            "fidelity",
            "fair",
            "roundrobin",
            "random",
            "minfrag",
        ] {
            assert_eq!(by_name(n, 0).unwrap().name(), n);
        }
        assert_eq!(by_name("hybrid", 0).unwrap().name(), "hybrid(0.50)");
        assert_eq!(
            by_name("hybrid-strict", 0).unwrap().name(),
            "hybrid-strict(0.50)"
        );
        assert!(
            by_name("rlbase", 0).is_none(),
            "rlbase needs a trained policy (use rl:<path>)"
        );
        assert!(by_name("nope", 0).is_none());
    }

    #[test]
    fn names_round_trip_through_by_name() {
        for n in names() {
            if n.starts_with("rl:") {
                continue; // needs a checkpoint file
            }
            assert!(by_name(n, 0).is_some(), "{n} listed but unresolvable");
        }
    }

    #[test]
    fn rl_spec_loads_checkpoint_from_disk() {
        use qcs_desim::Xoshiro256StarStar;
        let cfg = crate::gym::GymConfig::default();
        let mut rng = Xoshiro256StarStar::new(5);
        let policy = qcs_rl::policy::ActorCritic::new(cfg.obs_dim(), cfg.max_devices, &mut rng);
        let dir = std::env::temp_dir().join("qcs_rl_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        std::fs::write(&path, policy.to_json()).unwrap();
        let spec = format!("rl:{}", path.display());
        let broker = by_name(&spec, 0).expect("rl: spec must resolve");
        assert_eq!(broker.name(), "rlbase");
    }

    #[test]
    #[should_panic(expected = "cannot read RL checkpoint")]
    fn rl_spec_missing_file_panics_with_context() {
        by_name("rl:/nonexistent/policy.json", 0);
    }

    #[test]
    fn rl_spec_resolves_scheduler_checkpoints() {
        use crate::rlsched::{SchedCheckpoint, SchedObsConfig};
        use qcs_desim::Xoshiro256StarStar;
        let obs = SchedObsConfig::default();
        let mut rng = Xoshiro256StarStar::new(8);
        let policy = qcs_rl::policy::ActorCritic::new(obs.obs_dim(), obs.action_dim(), &mut rng);
        let ck = SchedCheckpoint::new(obs, &Placement::Speed, policy);
        let dir = std::env::temp_dir().join("qcs_rl_spec_sched_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sched_policy.json");
        ck.save(&path).unwrap();
        // The same `rl:<path>` surface that loads gym checkpoints resolves
        // a scheduler checkpoint to the full inference adapter.
        let spec = format!("rl:{}", path.display());
        let sched = scheduler_by_name(&spec, 0, 1).expect("sched checkpoint must resolve");
        assert_eq!(sched.name(), "rlsched");
    }

    #[test]
    #[should_panic(expected = "cannot compose")]
    fn sched_checkpoint_rejects_discipline_composition() {
        use crate::rlsched::{SchedCheckpoint, SchedObsConfig};
        use qcs_desim::Xoshiro256StarStar;
        let obs = SchedObsConfig::default();
        let mut rng = Xoshiro256StarStar::new(8);
        let policy = qcs_rl::policy::ActorCritic::new(obs.obs_dim(), obs.action_dim(), &mut rng);
        let ck = SchedCheckpoint::new(obs, &Placement::Speed, policy);
        let dir = std::env::temp_dir().join("qcs_rl_spec_sched_compose_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sched_policy.json");
        ck.save(&path).unwrap();
        let _ = scheduler_by_name(&format!("backfill+rl:{}", path.display()), 0, 1);
    }

    #[test]
    fn scheduler_specs_compose() {
        for (spec, name) in [
            ("speed", "speed"),
            ("fifo+fair", "fair"),
            ("backfill+speed", "backfill+speed"),
            ("conservative+speed", "conservative+speed"),
            ("conservative+fair", "conservative+fair"),
            ("priority+speed", "priority:sjf+speed"),
            ("priority:sjf+minfrag", "priority:sjf+minfrag"),
            ("priority:edf+fair", "priority:edf+fair"),
            ("priority:aging+speed", "priority:aging+speed"),
            ("snapshot+speed", "speed"),
        ] {
            let s = scheduler_by_name(spec, 0, 1).unwrap_or_else(|| panic!("{spec} unresolved"));
            assert_eq!(s.name(), name, "{spec}");
        }
        assert!(scheduler_by_name("warp+speed", 0, 1).is_none());
        assert!(scheduler_by_name("backfill+warp", 0, 1).is_none());
        for d in discipline_names() {
            assert!(
                scheduler_by_name(&format!("{d}+speed"), 0, 1).is_some(),
                "{d} listed but unresolvable"
            );
        }
    }
}
