//! The allocation policies of paper §5 plus two extra baselines.
//!
//! | Policy | Paper mode | Selection rule |
//! |---|---|---|
//! | [`SpeedBroker`] | Speed-based | fastest (highest-CLOPS) devices first, spill on contention |
//! | [`FidelityBroker`] | Error-aware | lowest-error devices, *waits* for them (quality-strict) |
//! | [`FairBroker`] | Fair | least-utilised devices first, spill on contention |
//! | [`RlBroker`] | RL-based | trained PPO policy emits allocation weights |
//! | [`RoundRobinBroker`] | — | rotating start device (baseline) |
//! | [`RandomBroker`] | — | random device order (baseline) |

pub mod fair;
pub mod fidelity;
pub mod hybrid;
pub mod minfrag;
pub mod random;
pub mod rl;
pub mod round_robin;
pub mod speed;

pub use fair::FairBroker;
pub use fidelity::FidelityBroker;
pub use hybrid::HybridBroker;
pub use minfrag::MinFragBroker;
pub use random::RandomBroker;
pub use rl::RlBroker;
pub use round_robin::RoundRobinBroker;
pub use speed::SpeedBroker;

use crate::broker::Broker;

/// The four paper strategies by name (for harness CLI selection): `speed`,
/// `fidelity`, `fair`, `rlbase` (requires a trained policy), plus
/// `roundrobin` and `random`.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Broker>> {
    match name {
        "speed" => Some(Box::new(SpeedBroker::new())),
        "fidelity" => Some(Box::new(FidelityBroker::new())),
        "fair" => Some(Box::new(FairBroker::new())),
        "roundrobin" => Some(Box::new(RoundRobinBroker::new())),
        "random" => Some(Box::new(RandomBroker::new(seed))),
        "minfrag" => Some(Box::new(MinFragBroker::new())),
        "hybrid" => Some(Box::new(HybridBroker::new(0.5))),
        "hybrid-strict" => Some(Box::new(HybridBroker::strict(0.5))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_known_policies() {
        for n in [
            "speed",
            "fidelity",
            "fair",
            "roundrobin",
            "random",
            "minfrag",
        ] {
            assert_eq!(by_name(n, 0).unwrap().name(), n);
        }
        assert_eq!(by_name("hybrid", 0).unwrap().name(), "hybrid(0.50)");
        assert_eq!(
            by_name("hybrid-strict", 0).unwrap().name(),
            "hybrid-strict(0.50)"
        );
        assert!(
            by_name("rlbase", 0).is_none(),
            "rlbase needs a trained policy"
        );
        assert!(by_name("nope", 0).is_none());
    }
}
