//! Speed-based allocation (paper §5, "Speed-based Mode"): minimise runtime
//! by preferring the fastest (highest-CLOPS) devices, spilling to slower
//! ones when the fast devices lack free qubits.

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::job::QJob;
use crate::partition::greedy_fill;

/// Fastest-first, availability-greedy.
#[derive(Debug, Default, Clone)]
pub struct SpeedBroker;

impl SpeedBroker {
    /// Creates the policy.
    pub fn new() -> Self {
        SpeedBroker
    }
}

impl Broker for SpeedBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        // Highest CLOPS first; ties broken by lower error score, then id.
        let order =
            view.order_by(|d| (std::cmp::Reverse(ordered(d.clops)), ordered(d.error_score)));
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "speed"
    }
}

/// Total-order wrapper for f64 keys in sort tuples.
#[derive(PartialEq, PartialOrd)]
pub(crate) struct Ordered(f64);
pub(crate) fn ordered(x: f64) -> Ordered {
    Ordered(x)
}
impl std::cmp::Eq for Ordered {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};
    use crate::device::DeviceId;

    #[test]
    fn prefers_fastest_devices() {
        // test_view: clops descending with id (220k, 210k, 200k, ...).
        let view = test_view(&[127, 127, 127]);
        let mut b = SpeedBroker::new();
        let plan = b.select(&test_job(200), &view);
        let AllocationPlan::Dispatch(parts) = plan else {
            panic!("expected dispatch")
        };
        assert_eq!(parts, vec![(DeviceId(0), 127), (DeviceId(1), 73)]);
    }

    #[test]
    fn spills_when_fast_devices_busy() {
        let view = test_view(&[20, 127, 127]);
        let mut b = SpeedBroker::new();
        let AllocationPlan::Dispatch(parts) = b.select(&test_job(200), &view) else {
            panic!("expected dispatch")
        };
        assert_eq!(
            parts,
            vec![(DeviceId(0), 20), (DeviceId(1), 127), (DeviceId(2), 53)]
        );
    }

    #[test]
    fn waits_when_fleet_cannot_fit() {
        let view = test_view(&[20, 30, 40]);
        let mut b = SpeedBroker::new();
        assert_eq!(b.select(&test_job(200), &view), AllocationPlan::Wait);
    }

    #[test]
    fn plan_validates() {
        let view = test_view(&[127, 64, 127]);
        let job = test_job(250);
        let mut b = SpeedBroker::new();
        let plan = b.select(&job, &view);
        plan.validate(&job, &view).unwrap();
    }
}
