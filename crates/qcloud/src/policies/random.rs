//! Random-order baseline: a lower anchor for every metric.

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::device::DeviceId;
use crate::job::QJob;
use crate::partition::greedy_fill;
use qcs_desim::Xoshiro256StarStar;

/// Shuffles device order per decision, then fills greedily.
#[derive(Debug, Clone)]
pub struct RandomBroker {
    rng: Xoshiro256StarStar,
}

impl RandomBroker {
    /// Creates the policy with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        RandomBroker {
            rng: Xoshiro256StarStar::new(seed ^ 0x52414E444F4D21),
        }
    }
}

impl Broker for RandomBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let mut order: Vec<DeviceId> = view.devices.iter().map(|d| d.id).collect();
        self.rng.shuffle(&mut order);
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};

    #[test]
    fn allocations_are_valid_and_vary() {
        let view = test_view(&[127, 127, 127, 127, 127]);
        let mut b = RandomBroker::new(1);
        let job = test_job(190);
        let mut first_devices = std::collections::HashSet::new();
        for _ in 0..50 {
            let plan = b.select(&job, &view);
            plan.validate(&job, &view).unwrap();
            if let AllocationPlan::Dispatch(parts) = plan {
                first_devices.insert(parts[0].0);
            }
        }
        assert!(
            first_devices.len() >= 3,
            "random order should vary the primary device"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let view = test_view(&[127, 127, 127]);
        let job = test_job(150);
        let mut b1 = RandomBroker::new(7);
        let mut b2 = RandomBroker::new(7);
        for _ in 0..10 {
            assert_eq!(b1.select(&job, &view), b2.select(&job, &view));
        }
    }
}
