//! Fair allocation (paper §5, "Fair Mode"): balance load by preferring the
//! least-utilised devices, spilling as needed.

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::job::QJob;
use crate::partition::greedy_fill;
use crate::policies::speed::ordered;

/// Lowest-utilisation-first, availability-greedy.
#[derive(Debug, Default, Clone)]
pub struct FairBroker;

impl FairBroker {
    /// Creates the policy.
    pub fn new() -> Self {
        FairBroker
    }
}

impl Broker for FairBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        // Least *cumulatively* utilised first (time-weighted mean), ties by
        // id. Using the historical mean instead of the instantaneous busy
        // fraction makes the policy rotate load evenly over the whole
        // fleet instead of chasing whichever device most recently released
        // qubits.
        let order = view.order_by(|d| ordered(d.mean_utilization));
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "fair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};
    use crate::device::DeviceId;

    #[test]
    fn prefers_idle_devices() {
        // Device 2 fully idle, device 0 mostly busy.
        let view = test_view(&[27, 80, 127]);
        let mut b = FairBroker::new();
        let AllocationPlan::Dispatch(parts) = b.select(&test_job(150), &view) else {
            panic!("expected dispatch")
        };
        // Order by busy fraction: 2 (0%), 1 (37%), 0 (79%).
        assert_eq!(parts, vec![(DeviceId(2), 127), (DeviceId(1), 23)]);
    }

    #[test]
    fn balanced_fleet_ties_broken_by_id() {
        let view = test_view(&[127, 127, 127]);
        let mut b = FairBroker::new();
        let AllocationPlan::Dispatch(parts) = b.select(&test_job(140), &view) else {
            panic!("expected dispatch")
        };
        assert_eq!(parts, vec![(DeviceId(0), 127), (DeviceId(1), 13)]);
    }

    #[test]
    fn waits_when_insufficient() {
        let view = test_view(&[10, 10, 10]);
        let mut b = FairBroker::new();
        assert_eq!(b.select(&test_job(100), &view), AllocationPlan::Wait);
    }
}
