//! Round-robin baseline: rotates the starting device per job, spreading
//! load without inspecting calibration or speed.

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::device::DeviceId;
use crate::job::QJob;
use crate::partition::greedy_fill;

/// Rotating-start, availability-greedy baseline (not in the paper; useful
/// as a sanity anchor between `fair` and `random`).
#[derive(Debug, Default, Clone)]
pub struct RoundRobinBroker {
    next_start: usize,
}

impl RoundRobinBroker {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobinBroker { next_start: 0 }
    }
}

impl Broker for RoundRobinBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let n = view.devices.len();
        let start = self.next_start % n;
        let order: Vec<DeviceId> = (0..n).map(|i| view.devices[(start + i) % n].id).collect();
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => {
                self.next_start = (start + 1) % n;
                AllocationPlan::Dispatch(parts)
            }
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "roundrobin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};

    #[test]
    fn start_rotates_across_jobs() {
        let view = test_view(&[127, 127, 127]);
        let mut b = RoundRobinBroker::new();
        let AllocationPlan::Dispatch(p1) = b.select(&test_job(130), &view) else {
            panic!()
        };
        let AllocationPlan::Dispatch(p2) = b.select(&test_job(130), &view) else {
            panic!()
        };
        let AllocationPlan::Dispatch(p3) = b.select(&test_job(130), &view) else {
            panic!()
        };
        assert_eq!(p1[0].0, DeviceId(0));
        assert_eq!(p2[0].0, DeviceId(1));
        assert_eq!(p3[0].0, DeviceId(2));
    }

    #[test]
    fn waiting_does_not_advance_rotation() {
        let view = test_view(&[10, 10, 10]);
        let mut b = RoundRobinBroker::new();
        assert_eq!(b.select(&test_job(100), &view), AllocationPlan::Wait);
        let full = test_view(&[127, 127, 127]);
        let AllocationPlan::Dispatch(p) = b.select(&test_job(130), &full) else {
            panic!()
        };
        assert_eq!(p[0].0, DeviceId(0), "rotation must not advance on Wait");
    }
}
