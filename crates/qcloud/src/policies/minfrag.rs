//! Minimum-fragmentation allocation: use as few devices as possible.
//!
//! Every extra device in a partition costs a communication link (λ·q
//! seconds, Eq. 9) and a fidelity factor (φ, Eq. 8). This policy greedily
//! packs the job into the devices with the most free qubits, minimising the
//! device count `k` under current availability — the `T_comm`-optimal
//! baseline that bounds from below what any policy can achieve on
//! communication overhead.

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::job::QJob;
use crate::partition::greedy_fill;
use crate::policies::speed::ordered;

/// Fewest-devices-first packing (largest free capacity first; ties broken
/// by lower error score, then device id).
#[derive(Debug, Default, Clone)]
pub struct MinFragBroker;

impl MinFragBroker {
    /// Creates the policy.
    pub fn new() -> Self {
        MinFragBroker
    }
}

impl Broker for MinFragBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let order = view.order_by(|d| (std::cmp::Reverse(d.free), ordered(d.error_score)));
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "minfrag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::tests::{test_job, test_view};
    use crate::device::DeviceId;

    #[test]
    fn packs_into_fewest_devices() {
        // Free: 40, 127, 90 → a 160-qubit job fits in {127, 90} (k = 2),
        // not {40, 127, ...} (k = 3).
        let view = test_view(&[40, 127, 90]);
        let AllocationPlan::Dispatch(parts) = MinFragBroker::new().select(&test_job(160), &view)
        else {
            panic!("expected dispatch");
        };
        assert_eq!(parts, vec![(DeviceId(1), 127), (DeviceId(2), 33)]);
    }

    #[test]
    fn achieves_minimal_k_across_random_states() {
        // Exhaustive check: greedy largest-first always matches the true
        // minimal device count (which, for capacity packing, it does).
        let frees = [
            vec![127, 127, 127, 127, 127],
            vec![30, 60, 90, 120, 127],
            vec![127, 10, 10, 10, 127],
            vec![64, 64, 64, 64, 64],
        ];
        for free in &frees {
            let view = test_view(free);
            for q in [130u64, 180, 250] {
                let plan = MinFragBroker::new().select(&test_job(q), &view);
                let AllocationPlan::Dispatch(parts) = plan else {
                    assert!(free.iter().sum::<u64>() < q, "waited despite capacity");
                    continue;
                };
                // True minimum k: take devices in descending free order.
                let mut sorted = free.clone();
                sorted.sort_unstable_by_key(|&f| std::cmp::Reverse(f));
                let mut need = q as i64;
                let mut min_k = 0;
                for f in sorted {
                    if need <= 0 {
                        break;
                    }
                    need -= f as i64;
                    min_k += 1;
                }
                assert_eq!(parts.len(), min_k, "free={free:?} q={q}");
            }
        }
    }

    #[test]
    fn ties_prefer_lower_error() {
        // Equal free capacity everywhere: the tie-break should pick the
        // lowest-error device (device 0 in test_view).
        let view = test_view(&[127, 127, 127]);
        let AllocationPlan::Dispatch(parts) = MinFragBroker::new().select(&test_job(130), &view)
        else {
            panic!("expected dispatch");
        };
        assert_eq!(parts[0].0, DeviceId(0));
    }

    #[test]
    fn waits_when_infeasible() {
        let view = test_view(&[50, 50]);
        assert_eq!(
            MinFragBroker::new().select(&test_job(130), &view),
            AllocationPlan::Wait
        );
    }

    #[test]
    fn plan_validates() {
        let view = test_view(&[90, 127, 30, 127]);
        let job = test_job(250);
        let plan = MinFragBroker::new().select(&job, &view);
        plan.validate(&job, &view).unwrap();
    }
}
