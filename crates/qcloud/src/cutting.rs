//! Circuit-cutting execution mode: the paper's §2 alternative to real-time
//! classical communication, priced at the job abstraction level.
//!
//! When a job too large for one QPU is *cut* instead of *distributed*, each
//! fragment runs independently — no synchronisation links, so no `λ·q`
//! blocking delay and no `φ^(k−1)` fidelity penalty. The price moves into
//! the shot budget (× γ² per cut gate, γ = 3 for CX-like gates ⇒ 9× per
//! cut) and classical reconstruction (∝ 4^cuts). This module estimates both
//! sides from the same job tuple `J = (q, d, s, t₂)` the schedulers use, so
//! benches can chart the crossover between the two execution modes.
//!
//! Cut-count estimation depends on circuit *locality*, which the job
//! abstraction does not carry; [`CircuitLocality`] supplies the assumption:
//!
//! * [`CircuitLocality::Chain`] — nearest-neighbour circuits (Trotter, GHZ):
//!   a `k`-way contiguous split severs `(k−1) · t₂/(q−1)` gates — cutting's
//!   best case.
//! * [`CircuitLocality::Random`] — structureless circuits: a random
//!   two-qubit gate crosses blocks with probability `1 − Σ(aᵢ/q)²` —
//!   cutting's worst case, matching the exact distribution of the
//!   `qcs-circuit` random-layered family under balanced partitions.
//! * [`CircuitLocality::Fixed`] — an explicit cut count (e.g. measured on a
//!   concrete circuit by `qcs_circuit::cut_circuit`).

use crate::job::QJob;
use crate::model::exec_time::ExecTimeModel;
use crate::model::fidelity::{DeviceErrorRates, FidelityModel};
use qcs_circuit::CutCostModel;
use serde::{Deserialize, Serialize};

/// Locality assumption for estimating boundary-crossing gates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CircuitLocality {
    /// Nearest-neighbour chain structure (best case for cutting).
    Chain,
    /// Uniformly random qubit pairs (worst case for cutting).
    Random,
    /// Exact cut count supplied externally.
    Fixed(u64),
}

/// One execution site for a fragment: the device parameters the fragment
/// runs under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragmentSite {
    /// Qubits of the job assigned to this fragment, `aᵢ`.
    pub qubits: u64,
    /// Device CLOPS.
    pub clops: f64,
    /// Device QV layers `log2(QV)`.
    pub qv_layers: f64,
    /// Device averaged error rates.
    pub rates: DeviceErrorRates,
}

/// The cutting execution model: cut-cost constants plus the execution and
/// fidelity models the fragments run under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CuttingExecModel {
    /// Quasi-probability cutting cost constants (γ, reconstruction base,
    /// classical throughput).
    pub cost: CutCostModel,
    /// Locality assumption for the cut-count estimate.
    pub locality: CircuitLocality,
    /// Eq. 3 execution-time constants (same as the distributed mode, so
    /// comparisons are apples-to-apples).
    pub exec: ExecTimeModel,
    /// Fidelity formulation for fragment fidelities.
    pub fidelity: FidelityModel,
}

impl CuttingExecModel {
    /// A model with default cost constants and the given locality.
    pub fn with_locality(locality: CircuitLocality) -> Self {
        CuttingExecModel {
            cost: CutCostModel::default(),
            locality,
            exec: ExecTimeModel::default(),
            fidelity: FidelityModel::default(),
        }
    }

    /// Estimated boundary-crossing two-qubit gates for splitting a
    /// `q`-qubit, `t₂`-gate job into fragments of the given sizes.
    pub fn estimated_cuts(&self, q: u64, t2: u64, fragment_sizes: &[u64]) -> u64 {
        assert!(!fragment_sizes.is_empty(), "need at least one fragment");
        assert_eq!(
            fragment_sizes.iter().sum::<u64>(),
            q,
            "fragment sizes must tile the job's qubits"
        );
        let k = fragment_sizes.len();
        if k == 1 {
            return 0;
        }
        match self.locality {
            CircuitLocality::Fixed(c) => c,
            CircuitLocality::Chain => {
                // (k−1) boundaries, t₂/(q−1) gates per chain bond.
                let per_bond = t2 as f64 / (q.saturating_sub(1)).max(1) as f64;
                ((k as f64 - 1.0) * per_bond).round() as u64
            }
            CircuitLocality::Random => {
                let cross = 1.0
                    - fragment_sizes
                        .iter()
                        .map(|&a| {
                            let f = a as f64 / q as f64;
                            f * f
                        })
                        .sum::<f64>();
                (t2 as f64 * cross).round() as u64
            }
        }
    }

    /// Prices a cut execution of `job` across the given fragment sites.
    ///
    /// Fragments run their local share of the circuit
    /// (`t₂ − cuts`, split ∝ `aᵢ/q`) with an inflated shot budget
    /// `s · γ^(2·cuts)`. Execution needs no inter-device links, so wall
    /// time is the slowest fragment (concurrent) plus classical
    /// reconstruction; fidelity is the mean fragment fidelity with **no φ
    /// penalty** (each fragment is a self-contained circuit).
    pub fn evaluate(&self, job: &QJob, sites: &[FragmentSite]) -> CuttingOutcome {
        let sizes: Vec<u64> = sites.iter().map(|s| s.qubits).collect();
        let cuts = self.estimated_cuts(job.num_qubits, job.two_qubit_gates, &sizes);
        let overhead = self.cost.sampling_overhead(cuts);
        let shots_f = job.num_shots as f64 * overhead;
        let shots = if shots_f >= u64::MAX as f64 {
            u64::MAX
        } else {
            shots_f.ceil() as u64
        };

        let local_t2 = job.two_qubit_gates.saturating_sub(cuts);
        let mut slowest = 0.0f64;
        let mut total_device_seconds = 0.0f64;
        let mut fidelities = Vec::with_capacity(sites.len());
        for site in sites {
            let frac = site.qubits as f64 / job.num_qubits as f64;
            let frag_t2 = (local_t2 as f64 * frac).round() as u64;
            let t = self
                .exec
                .execution_seconds(shots, site.qv_layers, site.clops);
            slowest = slowest.max(t);
            total_device_seconds += t;
            // Each fragment is a standalone single-device circuit: the §6
            // readout exponent sees its own width.
            fidelities.push(self.fidelity.device_fidelity(
                &site.rates,
                job.depth,
                frag_t2,
                site.qubits,
                site.qubits,
                1,
            ));
        }
        let postprocessing_seconds = self.cost.postprocessing_seconds(cuts);
        let fidelity = fidelities.iter().sum::<f64>() / fidelities.len().max(1) as f64;
        CuttingOutcome {
            cuts,
            sampling_overhead: overhead,
            shots,
            exec_seconds: slowest,
            total_device_seconds,
            postprocessing_seconds,
            wall_seconds: slowest + postprocessing_seconds,
            fidelity,
        }
    }
}

impl Default for CuttingExecModel {
    fn default() -> Self {
        CuttingExecModel::with_locality(CircuitLocality::Random)
    }
}

/// Priced outcome of executing a job via circuit cutting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CuttingOutcome {
    /// Estimated cut gates.
    pub cuts: u64,
    /// Shot multiplier `γ^(2·cuts)`.
    pub sampling_overhead: f64,
    /// Inflated shot budget (saturating).
    pub shots: u64,
    /// Slowest fragment's execution time (fragments run concurrently).
    pub exec_seconds: f64,
    /// Sum of fragment execution times (QPU-seconds consumed).
    pub total_device_seconds: f64,
    /// Classical reconstruction time.
    pub postprocessing_seconds: f64,
    /// End-to-end wall time: slowest fragment + reconstruction.
    pub wall_seconds: f64,
    /// Mean fragment fidelity (no inter-device penalty).
    pub fidelity: f64,
}

/// Prices the *distributed* (real-time classical communication) execution
/// of the same job for side-by-side comparison: Eq. 3 on each device with
/// the original shot count, plus the Eq. 9 blocking delay; fidelity per
/// Eqs. 4-8 including the φ penalty.
pub fn realtime_comm_outcome(
    job: &QJob,
    sites: &[FragmentSite],
    exec: &ExecTimeModel,
    fidelity: &FidelityModel,
    comm: &crate::model::comm::CommModel,
) -> CommOutcome {
    let k = sites.len();
    let mut slowest = 0.0f64;
    let mut fids = Vec::with_capacity(k);
    for site in sites {
        let t = exec.execution_seconds(job.num_shots, site.qv_layers, site.clops);
        slowest = slowest.max(t);
        fids.push(fidelity.device_fidelity(
            &site.rates,
            job.depth,
            job.two_qubit_gates,
            site.qubits,
            job.num_qubits,
            k,
        ));
    }
    let comm_seconds = comm.comm_seconds(job.num_qubits, k);
    CommOutcome {
        exec_seconds: slowest,
        comm_seconds,
        wall_seconds: slowest + comm_seconds,
        fidelity: fidelity.final_fidelity(&fids, comm.phi),
    }
}

/// Priced outcome of the distributed real-time-communication execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommOutcome {
    /// Slowest device's execution time.
    pub exec_seconds: f64,
    /// Blocking communication delay (Eq. 9 over `k−1` links).
    pub comm_seconds: f64,
    /// End-to-end wall time.
    pub wall_seconds: f64,
    /// Final fidelity (Eq. 8, with φ penalty).
    pub fidelity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::model::comm::CommModel;

    fn site(qubits: u64) -> FragmentSite {
        FragmentSite {
            qubits,
            clops: 220_000.0,
            qv_layers: 7.0,
            rates: DeviceErrorRates {
                single_qubit: 3e-4,
                two_qubit: 8e-3,
                readout: 1.5e-2,
            },
        }
    }

    fn job(q: u64, t2: u64, shots: u64) -> QJob {
        QJob {
            id: JobId(0),
            num_qubits: q,
            depth: 10,
            num_shots: shots,
            two_qubit_gates: t2,
            arrival_time: 0.0,
        }
    }

    #[test]
    fn chain_cut_estimate_matches_bond_arithmetic() {
        let m = CuttingExecModel::with_locality(CircuitLocality::Chain);
        // 100 qubits, 99 bonds, 198 gates → 2 per bond; 2-way split → 2.
        assert_eq!(m.estimated_cuts(100, 198, &[50, 50]), 2);
        // 4-way split → 3 boundaries × 2 = 6.
        assert_eq!(m.estimated_cuts(100, 198, &[25, 25, 25, 25]), 6);
        // Single fragment: no cuts.
        assert_eq!(m.estimated_cuts(100, 198, &[100]), 0);
    }

    #[test]
    fn random_cut_estimate_matches_collision_probability() {
        let m = CuttingExecModel::with_locality(CircuitLocality::Random);
        // Balanced bipartition: crossing probability 1 − 2·(1/2)² = 1/2.
        assert_eq!(m.estimated_cuts(100, 1000, &[50, 50]), 500);
        // Skewed split 90/10: 1 − 0.81 − 0.01 = 0.18.
        assert_eq!(m.estimated_cuts(100, 1000, &[90, 10]), 180);
    }

    #[test]
    fn fixed_locality_passes_through() {
        let m = CuttingExecModel::with_locality(CircuitLocality::Fixed(7));
        assert_eq!(m.estimated_cuts(100, 10_000, &[50, 50]), 7);
        assert_eq!(m.estimated_cuts(100, 10_000, &[100]), 0, "k=1 never cuts");
    }

    #[test]
    #[should_panic(expected = "tile the job")]
    fn fragment_sizes_must_tile() {
        CuttingExecModel::default().estimated_cuts(100, 10, &[40, 40]);
    }

    #[test]
    fn chain_cutting_beats_comm_for_low_t2() {
        // A shallow chain job: 2 cuts → 81× shots but tiny fragments of a
        // cheap job; vs comm mode paying λ·q ≈ 3 s and φ² fidelity.
        let j = job(150, 149, 1_000);
        let sites = [site(75), site(75)];
        let m = CuttingExecModel::with_locality(CircuitLocality::Chain);
        let cut = m.evaluate(&j, &sites);
        assert_eq!(cut.cuts, 1);
        assert_eq!(cut.sampling_overhead, 9.0);
        let comm = realtime_comm_outcome(&j, &sites, &m.exec, &m.fidelity, &CommModel::default());
        // Fidelity: cutting avoids φ = 0.95 → strictly better.
        assert!(cut.fidelity > comm.fidelity);
    }

    #[test]
    fn random_cutting_is_hopeless_for_dense_jobs() {
        // The paper-scale job (t₂ ≈ 0.25·q·d ≈ 475): a random-locality cut
        // saturates the shot budget — exactly why the paper builds
        // real-time links instead.
        let j = job(190, 475, 50_000);
        let sites = [site(95), site(95)];
        let m = CuttingExecModel::with_locality(CircuitLocality::Random);
        let cut = m.evaluate(&j, &sites);
        assert!(cut.cuts > 200);
        assert_eq!(cut.shots, u64::MAX);
        let comm = realtime_comm_outcome(&j, &sites, &m.exec, &m.fidelity, &CommModel::default());
        assert!(
            cut.wall_seconds > 100.0 * comm.wall_seconds,
            "cutting {} should dwarf comm {}",
            cut.wall_seconds,
            comm.wall_seconds
        );
    }

    #[test]
    fn zero_cut_execution_matches_plain_run() {
        let j = job(100, 300, 10_000);
        let sites = [site(100)];
        let m = CuttingExecModel::with_locality(CircuitLocality::Chain);
        let out = m.evaluate(&j, &sites);
        assert_eq!(out.cuts, 0);
        assert_eq!(out.sampling_overhead, 1.0);
        assert_eq!(out.shots, 10_000);
        let direct = m.exec.execution_seconds(10_000, 7.0, 220_000.0);
        assert!((out.exec_seconds - direct).abs() < 1e-9);
        assert!(out.postprocessing_seconds < 1e-6);
    }

    #[test]
    fn comm_outcome_matches_models() {
        let j = job(190, 475, 50_000);
        let sites = [site(95), site(95)];
        let exec = ExecTimeModel::default();
        let fid = FidelityModel::default();
        let comm = CommModel::default();
        let out = realtime_comm_outcome(&j, &sites, &exec, &fid, &comm);
        assert!((out.comm_seconds - 0.02 * 190.0).abs() < 1e-9);
        assert!((out.wall_seconds - out.exec_seconds - out.comm_seconds).abs() < 1e-12);
        assert!(out.fidelity > 0.0 && out.fidelity < 1.0);
    }

    #[test]
    fn wall_time_decomposition_consistent() {
        let j = job(120, 119, 5_000);
        let sites = [site(60), site(60)];
        let m = CuttingExecModel::with_locality(CircuitLocality::Chain);
        let out = m.evaluate(&j, &sites);
        assert!((out.wall_seconds - out.exec_seconds - out.postprocessing_seconds).abs() < 1e-9);
        assert!(out.total_device_seconds >= out.exec_seconds);
        assert!((0.0..=1.0).contains(&out.fidelity));
    }

    #[test]
    fn serde_roundtrip() {
        let m = CuttingExecModel::default();
        let s = serde_json::to_string(&m).unwrap();
        let m2: CuttingExecModel = serde_json::from_str(&s).unwrap();
        assert_eq!(m, m2);
    }
}
