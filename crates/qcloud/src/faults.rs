//! Deterministic fault injection: unplanned device outages, per-attempt
//! execution failures, and the retry policy that re-queues their victims.
//!
//! The [`crate::maintenance`] module models *scheduled* unavailability:
//! every capacity cliff is on a calendar the reservation timeline folds
//! into its availability profile, and in-flight work drains gracefully.
//! This module models the other kind — the kind the paper's premise says
//! quantum clouds are full of:
//!
//! * **Unplanned crashes** ([`CrashEvent`]): the device drops offline at
//!   `at` with no warning, every lease it holds is revoked (the victims'
//!   jobs are killed mid-flight), and it returns `down_for` seconds later.
//!   Crucially the outage is *invisible* to the scheduler stack ahead of
//!   time: it never enters the [`crate::MaintenanceCalendar`], so the
//!   [`crate::sched::AvailabilityProfile`] as derived before the crash
//!   happily promises capacity the fleet is about to lose, and once
//!   re-derived during the outage it treats the device as gone forever
//!   (its recovery time is unknowable). Reservation *repair* — dropping promises pinned on the
//!   dead capacity and recompressing — is the scheduler stack's job.
//! * **Execution failures**: at the end of the quantum execution phase an
//!   attempt fails with a per-device probability — flat
//!   ([`FaultScript::exec_fail_prob`]) or scaled by *drifted* calibration
//!   error scores ([`FaultScript::with_drift`], wiring
//!   [`qcs_calibration::DriftModel`] + [`qcs_calibration::error_score`]
//!   into the running simulation: noisier devices fail more).
//!
//! Everything is **seed-deterministic**: failure draws come from a counter
//! hash over `(seed, job, attempt)` ([`hash_u01`]), backoff jitter from the
//! same construction — two runs with the same script produce bit-identical
//! [`crate::records::JobRecord`] streams (pinned by the golden fingerprints
//! in `tests/chaos_proptests.rs`).
//!
//! Victims re-enter the pending queue through a [`RetryPolicy`]:
//! exponential backoff with deterministic jitter, a hard attempt cap (a
//! job that exhausts its attempts is recorded as
//! [`crate::records::FinalStatus::RetriesExhausted`] — never silently
//! lost), and optional prefer-different-device resubmission via
//! [`DeviceAvoidingBroker`] + [`AvoidSet`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::broker::{AllocationPlan, Broker, CloudView};
use crate::device::DeviceId;
use crate::job::{JobId, QJob};
use qcs_calibration::{error_score, DeviceProfile, DriftModel, ErrorScoreWeights};
use qcs_desim::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// An unplanned outage: `device` crashes at `at` and recovers `down_for`
/// seconds later. Unlike a maintenance window it is never announced to the
/// scheduler — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Device index within the fleet.
    pub device: usize,
    /// Crash instant (s).
    pub at: f64,
    /// Outage duration (s); the device recovers at `at + down_for`.
    pub down_for: f64,
}

impl CrashEvent {
    /// Recovery instant.
    pub fn recovery_at(&self) -> f64 {
        self.at + self.down_for
    }
}

/// Per-device failure probabilities scaled by drifted calibration scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftFaults {
    /// The drift process applied to each device's calibration snapshot.
    pub model: DriftModel,
    /// How many seconds of drift to apply before scoring (how stale the
    /// calibration data is assumed to be).
    pub horizon: f64,
}

/// A deterministic, seed-driven fault scenario for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    /// Seed for every fault draw (failure Bernoullis, backoff jitter,
    /// drift evolution). Independent of the simulation seed.
    pub seed: u64,
    /// Unplanned outages, in any order.
    pub crashes: Vec<CrashEvent>,
    /// Base per-attempt execution-failure probability (`[0, 1)`), applied
    /// per device in the attempt's partition.
    pub exec_fail_prob: f64,
    /// When set, per-device failure probabilities are
    /// `exec_fail_prob × score_d / mean(score)` over drift-evolved error
    /// scores instead of flat.
    pub drift: Option<DriftFaults>,
}

impl FaultScript {
    /// An empty script (no crashes, no failures) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultScript {
            seed,
            crashes: Vec::new(),
            exec_fail_prob: 0.0,
            drift: None,
        }
    }

    /// Adds an unplanned outage.
    pub fn with_crash(mut self, device: usize, at: f64, down_for: f64) -> Self {
        self.crashes.push(CrashEvent {
            device,
            at,
            down_for,
        });
        self
    }

    /// Sets the flat per-attempt execution-failure probability.
    pub fn with_exec_failures(mut self, p: f64) -> Self {
        self.exec_fail_prob = p;
        self
    }

    /// Scales failure probabilities by drift-evolved calibration scores.
    pub fn with_drift(mut self, model: DriftModel, horizon: f64) -> Self {
        self.drift = Some(DriftFaults { model, horizon });
        self
    }

    /// Whether the script injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.exec_fail_prob == 0.0
    }

    /// Validates against a fleet of `n_devices`: device indices in range,
    /// finite non-negative times, probability in `[0, 1)`, and no two
    /// outages of the *same* device overlapping (a crash of an
    /// already-crashed device has no meaning).
    pub fn validate(&self, n_devices: usize) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.exec_fail_prob) {
            return Err(format!(
                "exec_fail_prob {} outside [0, 1)",
                self.exec_fail_prob
            ));
        }
        if let Some(d) = &self.drift {
            if !d.horizon.is_finite() || d.horizon < 0.0 {
                return Err(format!("drift horizon {} invalid", d.horizon));
            }
        }
        for c in &self.crashes {
            if c.device >= n_devices {
                return Err(format!(
                    "crash names device {} of a {n_devices}-device fleet",
                    c.device
                ));
            }
            if !c.at.is_finite() || c.at < 0.0 || !c.down_for.is_finite() || c.down_for <= 0.0 {
                return Err(format!(
                    "crash of device {} has invalid times (at {}, down_for {})",
                    c.device, c.at, c.down_for
                ));
            }
        }
        let mut per_dev: Vec<(usize, f64, f64)> = self
            .crashes
            .iter()
            .map(|c| (c.device, c.at, c.recovery_at()))
            .collect();
        per_dev.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in per_dev.windows(2) {
            if w[0].0 == w[1].0 && w[1].1 < w[0].2 {
                return Err(format!(
                    "overlapping outages of device {} (recovery {} after next crash {})",
                    w[0].0, w[0].2, w[1].1
                ));
            }
        }
        Ok(())
    }

    /// Parses a command-line fault spec into a script plus retry policy.
    ///
    /// Semicolon-separated clauses (all optional, any order):
    ///
    /// * `crash:DEV@AT+DOWN[,DEV@AT+DOWN...]` — unplanned outages;
    /// * `pfail:P` — per-attempt execution-failure probability;
    /// * `drift:HORIZON` — drift-scale the failure probabilities over a
    ///   `HORIZON`-second staleness window (default [`DriftModel`]);
    /// * `seed:S` — fault seed (default 0);
    /// * `retries:N` — max attempts per job (default 3);
    /// * `backoff:B` — base backoff seconds (default 30);
    /// * `avoid` — prefer a different device on resubmission.
    ///
    /// Example: `crash:0@500+300,2@1000+200;pfail:0.05;retries:4`.
    pub fn parse(spec: &str) -> Result<(FaultScript, RetryPolicy), String> {
        let mut script = FaultScript::new(0);
        let mut retry = RetryPolicy::default();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (key, val) = match clause.split_once(':') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => (clause, ""),
            };
            match key {
                "crash" => {
                    for ev in val.split(',').filter(|e| !e.trim().is_empty()) {
                        let ev = ev.trim();
                        let (dev, times) = ev
                            .split_once('@')
                            .ok_or_else(|| format!("crash clause '{ev}' missing '@'"))?;
                        let (at, down) = times
                            .split_once('+')
                            .ok_or_else(|| format!("crash clause '{ev}' missing '+'"))?;
                        script.crashes.push(CrashEvent {
                            device: dev
                                .parse()
                                .map_err(|_| format!("bad device index '{dev}'"))?,
                            at: at.parse().map_err(|_| format!("bad crash time '{at}'"))?,
                            down_for: down
                                .parse()
                                .map_err(|_| format!("bad outage duration '{down}'"))?,
                        });
                    }
                }
                "pfail" => {
                    script.exec_fail_prob = val
                        .parse()
                        .map_err(|_| format!("bad failure probability '{val}'"))?;
                }
                "drift" => {
                    let horizon: f64 = if val.is_empty() {
                        86_400.0
                    } else {
                        val.parse()
                            .map_err(|_| format!("bad drift horizon '{val}'"))?
                    };
                    script.drift = Some(DriftFaults {
                        model: DriftModel::default(),
                        horizon,
                    });
                }
                "seed" => {
                    script.seed = val.parse().map_err(|_| format!("bad fault seed '{val}'"))?;
                }
                "retries" => {
                    retry.max_attempts = val
                        .parse()
                        .map_err(|_| format!("bad retry count '{val}'"))?;
                }
                "backoff" => {
                    retry.base_backoff_s = val
                        .parse()
                        .map_err(|_| format!("bad backoff seconds '{val}'"))?;
                }
                "avoid" => retry.prefer_different_device = true,
                other => return Err(format!("unknown fault clause '{other}'")),
            }
        }
        retry.validate()?;
        Ok((script, retry))
    }
}

/// How killed/failed jobs re-enter the queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per job, the first included (≥ 1). A job whose
    /// attempt `max_attempts` fails is recorded as retries-exhausted.
    pub max_attempts: u32,
    /// Backoff before re-queueing after the first failed attempt (s).
    pub base_backoff_s: f64,
    /// Multiplier per further failed attempt (exponential backoff).
    pub backoff_factor: f64,
    /// Backoff ceiling (s), applied before jitter.
    pub max_backoff_s: f64,
    /// Symmetric jitter fraction: the backoff is scaled by a deterministic
    /// factor in `[1 − jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// Record the failed attempt's devices so a [`DeviceAvoidingBroker`]
    /// steers the resubmission elsewhere (requires wiring an [`AvoidSet`]).
    pub prefer_different_device: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 30.0,
            backoff_factor: 2.0,
            max_backoff_s: 600.0,
            jitter_frac: 0.1,
            prefer_different_device: false,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy's numeric ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts < 1 {
            return Err("max_attempts must be at least 1".into());
        }
        if self.base_backoff_s < 0.0 || !self.base_backoff_s.is_finite() {
            return Err(format!("base backoff {} invalid", self.base_backoff_s));
        }
        if self.backoff_factor < 1.0 {
            return Err(format!("backoff factor {} below 1", self.backoff_factor));
        }
        if self.max_backoff_s < self.base_backoff_s {
            return Err("max backoff below base backoff".into());
        }
        if !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(format!(
                "jitter fraction {} outside [0, 1)",
                self.jitter_frac
            ));
        }
        Ok(())
    }

    /// The deterministic backoff before re-queueing a job whose attempt
    /// number `failed_attempt` (1-based) just failed: exponential in the
    /// attempt, capped, jittered by a `(seed, job, attempt)` hash.
    pub fn backoff_seconds(&self, seed: u64, job: JobId, failed_attempt: u32) -> f64 {
        let exp = failed_attempt.saturating_sub(1).min(62);
        let raw = self.base_backoff_s * self.backoff_factor.powi(exp as i32);
        let capped = raw.min(self.max_backoff_s);
        let u = hash_u01(seed ^ 0xB0F0_5EED, job.0, failed_attempt as u64);
        capped * (1.0 + self.jitter_frac * (2.0 * u - 1.0))
    }
}

/// A deterministic hash of `(seed, a, b)` mapped to `[0, 1)` — the
/// counter-mode Bernoulli source behind execution failures and backoff
/// jitter (splitmix64 finalizer; no state, so draws for different jobs or
/// attempts never perturb each other).
pub fn hash_u01(seed: u64, a: u64, b: u64) -> f64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The resolved, per-fleet fault source handed to the simulation: crash
/// schedule plus per-device failure probabilities (drift-scaled when the
/// script asks for it).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    per_device_fail: Vec<f64>,
}

impl FaultInjector {
    /// Resolves a script against a fleet. With [`FaultScript::drift`] set,
    /// each device's calibration snapshot is evolved `horizon` seconds by
    /// the drift model (seeded per device from the script seed), re-scored
    /// with Eq. 2, and the base failure probability is scaled by the
    /// device's share of the fleet-mean drifted score — noisier devices
    /// fail more, exactly the signal an adaptive scheduler should learn to
    /// route around.
    pub fn resolve(
        script: &FaultScript,
        profiles: &[DeviceProfile],
        weights: &ErrorScoreWeights,
    ) -> Self {
        let n = profiles.len();
        let per_device_fail = match &script.drift {
            None => vec![script.exec_fail_prob; n],
            Some(df) => {
                let scores: Vec<f64> = profiles
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let mut snap = p.calibration.clone();
                        let mut rng = Xoshiro256StarStar::new(
                            script.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        df.model
                            .step(&mut snap, &p.calibration, df.horizon, &mut rng);
                        error_score(&snap, weights)
                    })
                    .collect();
                let mean = scores.iter().sum::<f64>() / n.max(1) as f64;
                scores
                    .iter()
                    .map(|s| {
                        if mean > 0.0 {
                            (script.exec_fail_prob * s / mean).clamp(0.0, 0.95)
                        } else {
                            script.exec_fail_prob
                        }
                    })
                    .collect()
            }
        };
        FaultInjector {
            seed: script.seed,
            per_device_fail,
        }
    }

    /// The fault seed (shared with the retry policy's jitter).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The resolved per-device failure probabilities.
    pub fn per_device_fail(&self) -> &[f64] {
        &self.per_device_fail
    }

    /// Whether attempt `attempt` (1-based) of `job`, running on `parts`,
    /// fails at the end of its execution phase. Deterministic in
    /// `(seed, job, attempt)`; the combined probability is
    /// `1 − Π_d (1 − p_d)` over the partition's devices.
    pub fn exec_failure(&self, job: JobId, attempt: u32, parts: &[(DeviceId, u64)]) -> bool {
        let p_ok: f64 = parts
            .iter()
            .map(|&(d, _)| 1.0 - self.per_device_fail[d.index()])
            .product();
        let p_fail = 1.0 - p_ok;
        if p_fail <= 0.0 {
            return false;
        }
        hash_u01(self.seed, job.0, attempt as u64) < p_fail
    }
}

/// Shared record of which devices each job has failed on, feeding
/// [`DeviceAvoidingBroker`]. Cloned handles share one table.
#[derive(Debug, Clone, Default)]
pub struct AvoidSet {
    inner: Arc<Mutex<HashMap<u64, u64>>>,
}

impl AvoidSet {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `job` failed while holding `devices` (bit per device
    /// index; fleets larger than 64 devices saturate silently — avoidance
    /// is best-effort by design).
    pub fn record_failure(&self, job: JobId, devices: impl IntoIterator<Item = DeviceId>) {
        let mut t = self.inner.lock();
        let mask = t.entry(job.0).or_insert(0);
        for d in devices {
            if d.index() < 64 {
                *mask |= 1 << d.index();
            }
        }
    }

    /// The avoid bitmask for `job` (0 = nothing to avoid).
    pub fn mask(&self, job: JobId) -> u64 {
        self.inner.lock().get(&job.0).copied().unwrap_or(0)
    }

    /// Forgets `job` (called on completion).
    pub fn clear(&self, job: JobId) {
        self.inner.lock().remove(&job.0);
    }
}

/// Best-effort prefer-different-device resubmission: consults the inner
/// policy against a view with the job's previously failed devices masked
/// out (zero free qubits); if the masked consult declines, falls back to
/// the unmasked view — availability beats avoidance.
pub struct DeviceAvoidingBroker {
    inner: Box<dyn Broker>,
    avoid: AvoidSet,
    scratch: CloudView,
}

impl DeviceAvoidingBroker {
    /// Wraps `inner`; `avoid` is the table the simulation's retry handler
    /// fills in (pass a clone of the same handle to
    /// `QCloudSimEnv::install_faults`).
    pub fn new(inner: Box<dyn Broker>, avoid: AvoidSet) -> Self {
        DeviceAvoidingBroker {
            inner,
            avoid,
            scratch: CloudView {
                devices: Vec::new(),
            },
        }
    }
}

impl Broker for DeviceAvoidingBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let mask = self.avoid.mask(job.id);
        if mask != 0 {
            self.scratch.devices.clear();
            self.scratch.devices.extend_from_slice(&view.devices);
            let mut masked_any = false;
            for v in &mut self.scratch.devices {
                if v.id.index() < 64 && mask & (1 << v.id.index()) != 0 && v.free > 0 {
                    v.free = 0;
                    v.busy_fraction = 1.0;
                    masked_any = true;
                }
            }
            if masked_any {
                if let AllocationPlan::Dispatch(parts) = self.inner.select(job, &self.scratch) {
                    return AllocationPlan::Dispatch(parts);
                }
            }
        }
        self.inner.select(job, view)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_u01_is_deterministic_and_uniform_ish() {
        assert_eq!(hash_u01(1, 2, 3), hash_u01(1, 2, 3));
        assert_ne!(hash_u01(1, 2, 3), hash_u01(1, 2, 4));
        assert_ne!(hash_u01(1, 2, 3), hash_u01(2, 2, 3));
        let n = 10_000;
        let mean = (0..n).map(|i| hash_u01(7, i, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        assert!((0..n).all(|i| (0.0..1.0).contains(&hash_u01(7, i, 0))));
    }

    #[test]
    fn script_validation_catches_bad_inputs() {
        let ok = FaultScript::new(1).with_crash(0, 100.0, 50.0);
        assert!(ok.validate(2).is_ok());
        assert!(ok.validate(0).is_err(), "device out of range");
        assert!(FaultScript::new(1)
            .with_exec_failures(1.5)
            .validate(2)
            .is_err());
        assert!(FaultScript::new(1)
            .with_crash(0, -1.0, 10.0)
            .validate(2)
            .is_err());
        assert!(FaultScript::new(1)
            .with_crash(0, 10.0, 0.0)
            .validate(2)
            .is_err());
        // Same-device overlap rejected; different devices may overlap.
        assert!(FaultScript::new(1)
            .with_crash(0, 10.0, 100.0)
            .with_crash(0, 50.0, 10.0)
            .validate(2)
            .is_err());
        assert!(FaultScript::new(1)
            .with_crash(0, 10.0, 100.0)
            .with_crash(1, 50.0, 100.0)
            .validate(2)
            .is_ok());
    }

    #[test]
    fn spec_parsing_round_trips() {
        let (s, r) = FaultScript::parse("crash:0@500+300,2@1000+200;pfail:0.05;retries:4;seed:9")
            .expect("valid spec");
        assert_eq!(s.seed, 9);
        assert_eq!(s.exec_fail_prob, 0.05);
        assert_eq!(
            s.crashes,
            vec![
                CrashEvent {
                    device: 0,
                    at: 500.0,
                    down_for: 300.0
                },
                CrashEvent {
                    device: 2,
                    at: 1000.0,
                    down_for: 200.0
                },
            ]
        );
        assert_eq!(r.max_attempts, 4);

        let (s, r) = FaultScript::parse("pfail:0.1;drift:3600;avoid;backoff:5").unwrap();
        assert!(s.drift.is_some());
        assert_eq!(s.drift.unwrap().horizon, 3600.0);
        assert!(r.prefer_different_device);
        assert_eq!(r.base_backoff_s, 5.0);

        assert!(FaultScript::parse("crash:0@5").is_err());
        assert!(FaultScript::parse("bogus:1").is_err());
        assert!(FaultScript::parse("retries:0").is_err(), "policy validated");
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_s: 10.0,
            backoff_factor: 2.0,
            max_backoff_s: 100.0,
            jitter_frac: 0.1,
            prefer_different_device: false,
        };
        let b1 = p.backoff_seconds(1, JobId(5), 1);
        let b2 = p.backoff_seconds(1, JobId(5), 2);
        let b7 = p.backoff_seconds(1, JobId(5), 7);
        assert!((9.0..=11.0).contains(&b1), "b1 = {b1}");
        assert!((18.0..=22.0).contains(&b2), "b2 = {b2}");
        // 10 · 2⁶ = 640 capped at 100, ±10%.
        assert!((90.0..=110.0).contains(&b7), "b7 = {b7}");
        assert_eq!(b1, p.backoff_seconds(1, JobId(5), 1), "deterministic");
        assert_ne!(b1, p.backoff_seconds(1, JobId(6), 1), "per-job jitter");
    }

    #[test]
    fn injector_flat_and_exec_failure_determinism() {
        let profiles = qcs_calibration::ibm_fleet(3);
        let script = FaultScript::new(11).with_exec_failures(0.3);
        let inj = FaultInjector::resolve(&script, &profiles, &ErrorScoreWeights::default());
        assert!(inj.per_device_fail().iter().all(|&p| p == 0.3));
        let parts = vec![(DeviceId(0), 50), (DeviceId(1), 50)];
        let a = inj.exec_failure(JobId(1), 1, &parts);
        assert_eq!(a, inj.exec_failure(JobId(1), 1, &parts));
        // Over many jobs roughly 1 − 0.7² = 51% fail.
        let fails = (0..2000)
            .filter(|&i| inj.exec_failure(JobId(i), 1, &parts))
            .count();
        let rate = fails as f64 / 2000.0;
        assert!((0.45..0.57).contains(&rate), "failure rate {rate}");
        // Zero probability never fails.
        let none = FaultInjector::resolve(
            &FaultScript::new(11),
            &profiles,
            &ErrorScoreWeights::default(),
        );
        assert!((0..2000).all(|i| !none.exec_failure(JobId(i), 1, &parts)));
    }

    #[test]
    fn drift_scaled_probabilities_track_device_noise() {
        let profiles = qcs_calibration::ibm_fleet(3);
        let script = FaultScript::new(11)
            .with_exec_failures(0.1)
            .with_drift(DriftModel::default(), 86_400.0);
        let inj = FaultInjector::resolve(&script, &profiles, &ErrorScoreWeights::default());
        let probs = inj.per_device_fail();
        assert_eq!(probs.len(), profiles.len());
        assert!(probs.iter().all(|&p| (0.0..0.95).contains(&p)));
        // Scaled around the base: mean stays near 0.1 and devices differ.
        let mean = probs.iter().sum::<f64>() / probs.len() as f64;
        assert!((0.05..0.2).contains(&mean), "mean {mean}");
        assert!(
            probs.iter().any(|&p| (p - probs[0]).abs() > 1e-9),
            "drift must differentiate devices: {probs:?}"
        );
        // Deterministic resolution.
        let again = FaultInjector::resolve(&script, &profiles, &ErrorScoreWeights::default());
        assert_eq!(probs, again.per_device_fail());
    }

    #[test]
    fn avoid_set_records_and_clears() {
        let a = AvoidSet::new();
        assert_eq!(a.mask(JobId(1)), 0);
        a.record_failure(JobId(1), [DeviceId(0), DeviceId(2)]);
        assert_eq!(a.mask(JobId(1)), 0b101);
        let clone = a.clone();
        clone.record_failure(JobId(1), [DeviceId(1)]);
        assert_eq!(a.mask(JobId(1)), 0b111, "handles share one table");
        a.clear(JobId(1));
        assert_eq!(a.mask(JobId(1)), 0);
    }

    #[test]
    fn avoiding_broker_masks_failed_devices_and_falls_back() {
        use crate::broker::tests::test_view;
        use crate::policies::SpeedBroker;
        let avoid = AvoidSet::new();
        let mut b = DeviceAvoidingBroker::new(Box::new(SpeedBroker::new()), avoid.clone());
        let job = QJob {
            id: JobId(1),
            num_qubits: 100,
            depth: 10,
            num_shots: 50_000,
            two_qubit_gates: 400,
            arrival_time: 0.0,
        };
        let view = test_view(&[127, 127]);
        // Unrestricted: speed picks device 0 (fastest).
        let plan = b.select(&job, &view);
        let AllocationPlan::Dispatch(parts) = plan else {
            panic!("must dispatch");
        };
        assert_eq!(parts[0].0, DeviceId(0));
        // Device 0 failed: the retry must land elsewhere.
        avoid.record_failure(JobId(1), [DeviceId(0)]);
        let AllocationPlan::Dispatch(parts) = b.select(&job, &view) else {
            panic!("must dispatch");
        };
        assert!(parts.iter().all(|&(d, _)| d != DeviceId(0)), "{parts:?}");
        // Everything failed: fall back to the unmasked view rather than
        // blocking forever.
        avoid.record_failure(JobId(1), [DeviceId(1)]);
        assert!(matches!(b.select(&job, &view), AllocationPlan::Dispatch(_)));
    }
}
