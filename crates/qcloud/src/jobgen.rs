//! Job arrival processes (the paper's `JobGenerator`).
//!
//! Jobs are materialised up front (deterministically from a seed, or loaded
//! from CSV/JSON by the `qcs-workload` crate) and released into the cloud's
//! pending queue at their `arrival_time` by a generator coroutine.

use crate::job::{JobDistribution, JobId, QJob};
use qcs_desim::Xoshiro256StarStar;

/// Generates `n` jobs that all arrive at time 0 (the case-study setting:
/// a backlogged batch of 1'000 large circuits).
pub fn batch_at_zero(n: usize, dist: &JobDistribution, seed: u64) -> Vec<QJob> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n)
        .map(|i| dist.sample(JobId(i as u64), 0.0, &mut rng))
        .collect()
}

/// Generates `n` jobs with exponential (Poisson-process) inter-arrival
/// times at `rate` jobs/second — the open-system variant used by the
/// queueing ablation.
pub fn poisson_arrivals(n: usize, rate: f64, dist: &JobDistribution, seed: u64) -> Vec<QJob> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += qcs_desim::dist::exponential(&mut rng, rate);
            dist.sample(JobId(i as u64), t, &mut rng)
        })
        .collect()
}

/// Generates a bimodal open-system trace: every `big_every`-th job is a
/// fleet-spanning long-runner (250 qubits, 100k shots), the rest are
/// small, short jobs (20–60 qubits, 10–30k shots), with Poisson arrivals
/// at `rate` jobs/second.
///
/// This is the head-of-line-blocking stress scenario: under strict FIFO a
/// blocked big job idles most of the fleet while backfillable small jobs
/// pile up behind it — the workload used by the `sched` bench and the
/// backfill acceptance tests to separate queue-aware disciplines from the
/// paper's FIFO scheduler.
pub fn bimodal_arrivals(n: usize, rate: f64, big_every: usize, seed: u64) -> Vec<QJob> {
    assert!(rate > 0.0, "arrival rate must be positive");
    assert!(big_every >= 2, "big_every must leave room for small jobs");
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += qcs_desim::dist::exponential(&mut rng, rate);
            if i % big_every == big_every - 1 {
                QJob {
                    id: JobId(i as u64),
                    num_qubits: 250,
                    depth: 15,
                    num_shots: 100_000,
                    two_qubit_gates: 900,
                    arrival_time: t,
                }
            } else {
                QJob {
                    id: JobId(i as u64),
                    num_qubits: rng.range_u64(20, 60),
                    depth: 8,
                    num_shots: rng.range_u64(10_000, 30_000),
                    two_qubit_gates: 100,
                    arrival_time: t,
                }
            }
        })
        .collect()
}

/// Generates a diurnal open-system trace: a non-homogeneous Poisson
/// process whose instantaneous rate follows a sinusoidal day/night cycle,
///
/// ```text
/// λ(t) = base_rate · (1 + amplitude · sin(2π t / period))
/// ```
///
/// sampled by Lewis–Shedler thinning (draw candidate gaps at the peak rate
/// `base_rate · (1 + amplitude)`, keep each candidate with probability
/// `λ(t) / λ_peak`). Job bodies reuse the bimodal big/small mix (every
/// `big_every`-th *accepted* job is the fleet-spanning long-runner), so the
/// trace composes rush-hour load swings with the head-of-line-blocking
/// stressor. This is the service-mode workload: daytime peaks push the
/// intake queue past its admission watermark while the night trough lets
/// it drain.
///
/// `amplitude` must lie in `[0, 1)` so the rate stays strictly positive.
pub fn diurnal_arrivals(
    n: usize,
    base_rate: f64,
    amplitude: f64,
    period: f64,
    big_every: usize,
    seed: u64,
) -> Vec<QJob> {
    assert!(base_rate > 0.0, "arrival rate must be positive");
    assert!(
        (0.0..1.0).contains(&amplitude),
        "amplitude must be in [0, 1) to keep the rate positive"
    );
    assert!(period > 0.0, "period must be positive");
    assert!(big_every >= 2, "big_every must leave room for small jobs");
    let mut rng = Xoshiro256StarStar::new(seed);
    let peak = base_rate * (1.0 + amplitude);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Candidate event of the homogeneous majorant process.
        t += qcs_desim::dist::exponential(&mut rng, peak);
        let lambda = base_rate * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
        if rng.next_f64() * peak >= lambda {
            continue; // thinned: candidate fell in a trough
        }
        let i = out.len();
        out.push(if i % big_every == big_every - 1 {
            QJob {
                id: JobId(i as u64),
                num_qubits: 250,
                depth: 15,
                num_shots: 100_000,
                two_qubit_gates: 900,
                arrival_time: t,
            }
        } else {
            QJob {
                id: JobId(i as u64),
                num_qubits: rng.range_u64(20, 60),
                depth: 8,
                num_shots: rng.range_u64(10_000, 30_000),
                two_qubit_gates: 100,
                arrival_time: t,
            }
        });
    }
    out
}

/// Generates bursty arrivals: `bursts` groups of `per_burst` jobs, the
/// groups separated by `gap` seconds (jobs within a burst arrive together).
pub fn bursty_arrivals(
    bursts: usize,
    per_burst: usize,
    gap: f64,
    dist: &JobDistribution,
    seed: u64,
) -> Vec<QJob> {
    assert!(gap >= 0.0, "gap must be non-negative");
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut out = Vec::with_capacity(bursts * per_burst);
    let mut id = 0u64;
    for b in 0..bursts {
        let t = b as f64 * gap;
        for _ in 0..per_burst {
            out.push(dist.sample(JobId(id), t, &mut rng));
            id += 1;
        }
    }
    out
}

/// Validates a job list against a fleet: every job must satisfy Eq. 1
/// (larger than any single device — i.e. forced to split — yet within the
/// cloud's total capacity). Jobs that fit a single device are allowed too
/// (the framework handles them; the *case study* just doesn't generate
/// them); only cloud-overflow is fatal.
pub fn validate_jobs(jobs: &[QJob], total_capacity: u64) -> Result<(), String> {
    for j in jobs {
        j.validate()?;
        if j.num_qubits > total_capacity {
            return Err(format!(
                "job {:?} needs {} qubits but the cloud has {total_capacity}",
                j.id, j.num_qubits
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_mixes_sizes_deterministically() {
        let jobs = bimodal_arrivals(40, 0.1, 4, 3);
        assert_eq!(jobs.len(), 40);
        let big = jobs.iter().filter(|j| j.num_qubits == 250).count();
        assert_eq!(big, 10, "every 4th job is fleet-spanning");
        for j in &jobs {
            j.validate().unwrap();
            if j.num_qubits != 250 {
                assert!((20..=60).contains(&j.num_qubits));
            }
        }
        // Arrivals strictly increase; trace is reproducible.
        for w in jobs.windows(2) {
            assert!(w[1].arrival_time > w[0].arrival_time);
        }
        assert_eq!(jobs, bimodal_arrivals(40, 0.1, 4, 3));
    }

    #[test]
    fn batch_all_at_zero() {
        let jobs = batch_at_zero(100, &JobDistribution::default(), 1);
        assert_eq!(jobs.len(), 100);
        assert!(jobs.iter().all(|j| j.arrival_time == 0.0));
        // Ids are dense and unique.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn poisson_interarrivals_have_expected_rate() {
        let jobs = poisson_arrivals(20_000, 0.5, &JobDistribution::default(), 2);
        let t_last = jobs.last().unwrap().arrival_time;
        let rate = jobs.len() as f64 / t_last;
        assert!((rate - 0.5).abs() < 0.02, "empirical rate {rate}");
        // Arrival times strictly increase.
        for w in jobs.windows(2) {
            assert!(w[1].arrival_time > w[0].arrival_time);
        }
    }

    #[test]
    fn bursts_are_spaced_by_gap() {
        let jobs = bursty_arrivals(3, 4, 100.0, &JobDistribution::default(), 3);
        assert_eq!(jobs.len(), 12);
        assert!(jobs[..4].iter().all(|j| j.arrival_time == 0.0));
        assert!(jobs[4..8].iter().all(|j| j.arrival_time == 100.0));
        assert!(jobs[8..].iter().all(|j| j.arrival_time == 200.0));
    }

    #[test]
    fn diurnal_modulates_rate_and_validates() {
        let period = 86_400.0;
        let jobs = diurnal_arrivals(4_000, 0.05, 0.8, period, 4, 7);
        assert_eq!(jobs.len(), 4_000);
        validate_jobs(&jobs, 635).unwrap();
        // Ids dense, arrivals strictly increasing, mix preserved.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
        for w in jobs.windows(2) {
            assert!(w[1].arrival_time > w[0].arrival_time);
        }
        let big = jobs.iter().filter(|j| j.num_qubits == 250).count();
        assert_eq!(big, 1_000, "every 4th job is fleet-spanning");
        // Day/night modulation: the sine's positive half-period (day) must
        // hold clearly more arrivals than the negative half (night).
        let (mut day, mut night) = (0usize, 0usize);
        for j in &jobs {
            if (std::f64::consts::TAU * j.arrival_time / period).sin() >= 0.0 {
                day += 1;
            } else {
                night += 1;
            }
        }
        assert!(
            day as f64 > 1.5 * night as f64,
            "no diurnal swing: {day} day vs {night} night arrivals"
        );
        // Long-run mean rate matches base_rate (thinning preserves it).
        let t_last = jobs.last().unwrap().arrival_time;
        let rate = jobs.len() as f64 / t_last;
        assert!((rate - 0.05).abs() < 0.005, "empirical rate {rate}");
    }

    #[test]
    fn diurnal_is_deterministic() {
        let a = diurnal_arrivals(200, 0.1, 0.5, 3_600.0, 5, 11);
        let b = diurnal_arrivals(200, 0.1, 0.5, 3_600.0, 5, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "amplitude must be in [0, 1)")]
    fn diurnal_rejects_full_amplitude() {
        diurnal_arrivals(10, 0.1, 1.0, 3_600.0, 4, 1);
    }

    #[test]
    fn validation_rejects_cloud_overflow() {
        let jobs = batch_at_zero(50, &JobDistribution::default(), 4);
        assert!(validate_jobs(&jobs, 635).is_ok());
        // With 50 draws from U[130, 250] some job exceeds 200 qubits.
        assert!(jobs.iter().any(|j| j.num_qubits > 200));
        assert!(validate_jobs(&jobs, 200).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let a = batch_at_zero(50, &JobDistribution::default(), 9);
        let b = batch_at_zero(50, &JobDistribution::default(), 9);
        assert_eq!(a, b);
    }
}
