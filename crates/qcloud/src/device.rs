//! Quantum devices (QPUs) inside the simulation.

use crate::model::fidelity::DeviceErrorRates;
use qcs_calibration::{DeviceProfile, ErrorScoreWeights};
use qcs_desim::{ContainerId, Simulation};

/// Index of a device within one [`crate::QCloud`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A QPU registered in the simulation: static profile + the qubit container
/// that tracks free capacity + cached aggregates the scheduler reads on
/// every decision.
#[derive(Debug, Clone)]
pub struct QDevice {
    /// Device index within the cloud.
    pub id: DeviceId,
    /// Profile: spec, coupling map, calibration.
    pub profile: DeviceProfile,
    /// The qubit pool (level = free qubits).
    pub container: ContainerId,
    /// Cached device-average error rates for the fidelity model.
    pub error_rates: DeviceErrorRates,
    /// Cached error score (Eq. 2).
    pub error_score: f64,
}

impl QDevice {
    /// Registers a device in the simulation (creating its qubit container)
    /// and caches its calibration aggregates.
    pub fn register(
        id: DeviceId,
        profile: DeviceProfile,
        weights: &ErrorScoreWeights,
        sim: &mut Simulation,
    ) -> Self {
        let capacity = profile.spec.num_qubits as u64;
        let container = sim.add_container(profile.spec.name.clone(), capacity, capacity);
        let error_rates = DeviceErrorRates {
            single_qubit: profile.calibration.avg_rx_error(),
            two_qubit: profile.calibration.avg_two_qubit_error(),
            readout: profile.calibration.avg_readout_error(),
        };
        let error_score = profile.error_score(weights);
        QDevice {
            id,
            profile,
            container,
            error_rates,
            error_score,
        }
    }

    /// Refreshes cached aggregates after the profile's calibration changed
    /// (drift studies).
    pub fn refresh_calibration(&mut self, weights: &ErrorScoreWeights) {
        self.error_rates = DeviceErrorRates {
            single_qubit: self.profile.calibration.avg_rx_error(),
            two_qubit: self.profile.calibration.avg_two_qubit_error(),
            readout: self.profile.calibration.avg_readout_error(),
        };
        self.error_score = self.profile.error_score(weights);
    }

    /// Qubit capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.profile.spec.num_qubits as u64
    }

    /// CLOPS rating.
    #[inline]
    pub fn clops(&self) -> f64 {
        self.profile.spec.clops
    }

    /// Quantum-volume layer depth `D = log2(QV)`.
    #[inline]
    pub fn qv_layers(&self) -> f64 {
        self.profile.spec.qv_layers()
    }

    /// Device name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.profile.spec.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_calibration::ibm_fleet;

    #[test]
    fn register_creates_full_container() {
        let mut sim = Simulation::new(1);
        let profile = ibm_fleet(1).remove(0);
        let d = QDevice::register(
            DeviceId(0),
            profile,
            &ErrorScoreWeights::default(),
            &mut sim,
        );
        assert_eq!(d.capacity(), 127);
        assert_eq!(sim.container(d.container).level(), 127);
        assert_eq!(sim.container(d.container).capacity(), 127);
        assert_eq!(d.name(), "ibm_strasbourg");
        assert_eq!(d.qv_layers(), 7.0);
        assert!(d.error_score > 0.0);
        assert!(d.error_rates.readout > 0.0);
    }

    #[test]
    fn refresh_tracks_calibration_changes() {
        let mut sim = Simulation::new(2);
        let profile = ibm_fleet(2).remove(0);
        let w = ErrorScoreWeights::default();
        let mut d = QDevice::register(DeviceId(0), profile, &w, &mut sim);
        let before = d.error_score;
        for q in &mut d.profile.calibration.qubits {
            q.readout_error *= 2.0;
        }
        d.refresh_calibration(&w);
        assert!(d.error_score > before);
    }
}
