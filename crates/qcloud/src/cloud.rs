//! The quantum cloud: a fleet of devices sharing one simulation.

use crate::broker::{CloudView, DeviceView};
use crate::device::{DeviceId, QDevice};
use qcs_calibration::{DeviceProfile, ErrorScoreWeights};
use qcs_desim::Simulation;

/// The device fleet (paper's `QCloud`): owns the registered devices and
/// builds the per-decision snapshot ([`CloudView`]) brokers consume.
#[derive(Debug)]
pub struct QCloud {
    devices: Vec<QDevice>,
}

impl QCloud {
    /// Registers every profile as a device in `sim`.
    pub fn new(
        profiles: Vec<DeviceProfile>,
        weights: &ErrorScoreWeights,
        sim: &mut Simulation,
    ) -> Self {
        assert!(!profiles.is_empty(), "a cloud needs at least one device");
        let devices = profiles
            .into_iter()
            .enumerate()
            .map(|(i, p)| QDevice::register(DeviceId(i as u32), p, weights, sim))
            .collect();
        QCloud { devices }
    }

    /// Devices in the fleet.
    pub fn devices(&self) -> &[QDevice] {
        &self.devices
    }

    /// Mutable device access (drift studies).
    pub fn devices_mut(&mut self) -> &mut [QDevice] {
        &mut self.devices
    }

    /// Device lookup.
    pub fn device(&self, id: DeviceId) -> &QDevice {
        &self.devices[id.index()]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total qubit capacity across the fleet.
    pub fn total_capacity(&self) -> u64 {
        self.devices.iter().map(|d| d.capacity()).sum()
    }

    /// Largest single-device capacity.
    pub fn max_device_capacity(&self) -> u64 {
        self.devices.iter().map(|d| d.capacity()).max().unwrap_or(0)
    }

    /// Builds the broker-facing snapshot of the fleet state.
    pub fn view(&self, sim: &Simulation) -> CloudView {
        let now = sim.now();
        CloudView {
            devices: self
                .devices
                .iter()
                .map(|d| {
                    let c = sim.container(d.container);
                    DeviceView {
                        id: d.id,
                        free: c.level(),
                        capacity: c.capacity(),
                        busy_fraction: c.busy_fraction(),
                        mean_utilization: c.mean_utilization(now),
                        error_score: d.error_score,
                        clops: d.clops(),
                        qv_layers: d.qv_layers(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_calibration::ibm_fleet;

    #[test]
    fn fleet_capacities() {
        let mut sim = Simulation::new(1);
        let cloud = QCloud::new(ibm_fleet(1), &ErrorScoreWeights::default(), &mut sim);
        assert_eq!(cloud.len(), 5);
        assert_eq!(cloud.total_capacity(), 635);
        assert_eq!(cloud.max_device_capacity(), 127);
        assert!(!cloud.is_empty());
    }

    #[test]
    fn view_reflects_withdrawals() {
        let mut sim = Simulation::new(2);
        let cloud = QCloud::new(ibm_fleet(2), &ErrorScoreWeights::default(), &mut sim);
        let v0 = cloud.view(&sim);
        assert!(v0.devices.iter().all(|d| d.free == 127));
        sim.withdraw(cloud.device(DeviceId(1)).container, 100);
        let v1 = cloud.view(&sim);
        assert_eq!(v1.devices[1].free, 27);
        assert!((v1.devices[1].busy_fraction - 100.0 / 127.0).abs() < 1e-12);
        assert_eq!(v1.devices[0].free, 127);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cloud_rejected() {
        let mut sim = Simulation::new(3);
        let _ = QCloud::new(vec![], &ErrorScoreWeights::default(), &mut sim);
    }
}
