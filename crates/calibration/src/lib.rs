//! # qcs-calibration — device calibration data and error scores
//!
//! Quantum cloud platforms publish *calibration data* for each QPU: per-qubit
//! readout errors and coherence times, and per-gate error rates. The paper's
//! error-aware scheduling policy consumes this data through a single scalar
//! **error score** (Eq. 2):
//!
//! ```text
//! error_score = α · mean(ε_readout) + θ · ε_1Q + γ · mean(ε_2Q)
//! α = 0.5, θ = 0.3, γ = 0.2
//! ```
//!
//! The original study used IBM calibration snapshots from March 2025, which
//! are not redistributable; this crate substitutes **synthetic snapshots**
//! drawn from published error magnitudes for Eagle-class devices (see
//! [`synth`]) plus an Ornstein–Uhlenbeck [`drift`] process for studies of
//! calibration change over time. The five named devices of the paper's case
//! study are provided by [`profiles::ibm_fleet`].

#![warn(missing_docs)]

pub mod csv;
pub mod data;
pub mod drift;
pub mod profiles;
pub mod score;
pub mod synth;

pub use csv::{snapshot_from_csv, snapshot_to_csv};
pub use data::{CalibrationSnapshot, QubitCalibration, TwoQubitGateCalibration};
pub use drift::DriftModel;
pub use profiles::{ibm_fleet, regional_fleet, DeviceProfile, DeviceSpec};
pub use score::{error_score, ErrorScoreWeights};
pub use synth::{synth_snapshot, SynthErrorRanges};
