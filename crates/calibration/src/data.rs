//! Calibration snapshot data model.

use serde::{Deserialize, Serialize};

/// Per-qubit calibration values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QubitCalibration {
    /// Readout (measurement) error probability for this qubit.
    pub readout_error: f64,
    /// Error rate of the single-qubit RX gate on this qubit.
    pub rx_error: f64,
    /// Relaxation time T1 in microseconds.
    pub t1_us: f64,
    /// Dephasing time T2 in microseconds.
    pub t2_us: f64,
}

/// Calibration of one two-qubit gate (one per coupling-map edge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoQubitGateCalibration {
    /// First qubit of the coupling.
    pub qubit_a: u32,
    /// Second qubit of the coupling.
    pub qubit_b: u32,
    /// Gate error rate (e.g. ECR / CZ).
    pub error: f64,
}

/// A full calibration snapshot for one device at one point in time.
///
/// Mirrors the content of IBM's calibration jobs that the paper's scheduler
/// consumes: per-qubit readout and single-qubit gate errors, coherence
/// times, and per-edge two-qubit gate errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSnapshot {
    /// Seconds since simulation epoch at which this snapshot was taken.
    pub timestamp: f64,
    /// Per-qubit data, indexed by physical qubit id.
    pub qubits: Vec<QubitCalibration>,
    /// Per-edge two-qubit gate data.
    pub two_qubit_gates: Vec<TwoQubitGateCalibration>,
}

impl CalibrationSnapshot {
    /// Number of qubits covered by the snapshot.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Mean readout error over all qubits (0 for an empty snapshot).
    pub fn avg_readout_error(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.readout_error))
    }

    /// Mean single-qubit RX error over all qubits.
    pub fn avg_rx_error(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.rx_error))
    }

    /// Mean two-qubit gate error over all calibrated couplings.
    pub fn avg_two_qubit_error(&self) -> f64 {
        mean(self.two_qubit_gates.iter().map(|g| g.error))
    }

    /// Mean T1 in microseconds.
    pub fn avg_t1_us(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.t1_us))
    }

    /// Mean T2 in microseconds.
    pub fn avg_t2_us(&self) -> f64 {
        mean(self.qubits.iter().map(|q| q.t2_us))
    }

    /// Best (lowest) readout error on the device.
    pub fn best_readout_error(&self) -> f64 {
        self.qubits
            .iter()
            .map(|q| q.readout_error)
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst (highest) readout error on the device.
    pub fn worst_readout_error(&self) -> f64 {
        self.qubits
            .iter()
            .map(|q| q.readout_error)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Validates physical plausibility: every rate in `[0, 1]`, coherence
    /// times positive, and T2 ≤ 2·T1 (a physical bound).
    pub fn validate(&self) -> Result<(), String> {
        for (i, q) in self.qubits.iter().enumerate() {
            if !(0.0..=1.0).contains(&q.readout_error) {
                return Err(format!(
                    "qubit {i}: readout error {} out of [0,1]",
                    q.readout_error
                ));
            }
            if !(0.0..=1.0).contains(&q.rx_error) {
                return Err(format!("qubit {i}: rx error {} out of [0,1]", q.rx_error));
            }
            if q.t1_us <= 0.0 || q.t2_us <= 0.0 {
                return Err(format!("qubit {i}: non-positive coherence time"));
            }
            if q.t2_us > 2.0 * q.t1_us + 1e-9 {
                return Err(format!(
                    "qubit {i}: T2 {} exceeds physical bound 2·T1 {}",
                    q.t2_us,
                    2.0 * q.t1_us
                ));
            }
        }
        for g in &self.two_qubit_gates {
            if !(0.0..=1.0).contains(&g.error) {
                return Err(format!(
                    "gate {}-{}: error {} out of [0,1]",
                    g.qubit_a, g.qubit_b, g.error
                ));
            }
        }
        Ok(())
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CalibrationSnapshot {
        CalibrationSnapshot {
            timestamp: 0.0,
            qubits: vec![
                QubitCalibration {
                    readout_error: 0.01,
                    rx_error: 0.0002,
                    t1_us: 300.0,
                    t2_us: 200.0,
                },
                QubitCalibration {
                    readout_error: 0.03,
                    rx_error: 0.0004,
                    t1_us: 250.0,
                    t2_us: 180.0,
                },
            ],
            two_qubit_gates: vec![TwoQubitGateCalibration {
                qubit_a: 0,
                qubit_b: 1,
                error: 0.008,
            }],
        }
    }

    #[test]
    fn averages() {
        let s = sample();
        assert!((s.avg_readout_error() - 0.02).abs() < 1e-12);
        assert!((s.avg_rx_error() - 0.0003).abs() < 1e-12);
        assert!((s.avg_two_qubit_error() - 0.008).abs() < 1e-12);
        assert!((s.avg_t1_us() - 275.0).abs() < 1e-12);
        assert_eq!(s.num_qubits(), 2);
        assert_eq!(s.best_readout_error(), 0.01);
        assert_eq!(s.worst_readout_error(), 0.03);
    }

    #[test]
    fn empty_snapshot_averages_are_zero() {
        let s = CalibrationSnapshot {
            timestamp: 0.0,
            qubits: vec![],
            two_qubit_gates: vec![],
        };
        assert_eq!(s.avg_readout_error(), 0.0);
        assert_eq!(s.avg_two_qubit_error(), 0.0);
    }

    #[test]
    fn validate_accepts_physical_data() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_readout() {
        let mut s = sample();
        s.qubits[0].readout_error = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_unphysical_t2() {
        let mut s = sample();
        s.qubits[0].t2_us = 1000.0; // > 2 * 300
        assert!(s.validate().unwrap_err().contains("T2"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let s2: CalibrationSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, s2);
    }
}
