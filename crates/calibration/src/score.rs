//! The device error score (paper Eq. 2).

use crate::data::CalibrationSnapshot;
use serde::{Deserialize, Serialize};

/// Weights of the error-score combination. The paper fixes
/// `α = 0.5, θ = 0.3, γ = 0.2` (readout weighted highest because it directly
/// corrupts measurement outcomes) but notes the scheme is adjustable; the
/// ablation harness sweeps these.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorScoreWeights {
    /// Weight of the mean readout error.
    pub alpha: f64,
    /// Weight of the single-qubit (RX) gate error.
    pub theta: f64,
    /// Weight of the mean two-qubit gate error.
    pub gamma: f64,
}

impl Default for ErrorScoreWeights {
    fn default() -> Self {
        ErrorScoreWeights {
            alpha: 0.5,
            theta: 0.3,
            gamma: 0.2,
        }
    }
}

impl ErrorScoreWeights {
    /// Validates that weights are non-negative and sum to a positive value.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha < 0.0 || self.theta < 0.0 || self.gamma < 0.0 {
            return Err("error-score weights must be non-negative".into());
        }
        if self.alpha + self.theta + self.gamma <= 0.0 {
            return Err("error-score weights must sum to a positive value".into());
        }
        Ok(())
    }
}

/// Computes the error score of Eq. 2:
/// `α·(Σ ε_readout / N) + θ·ε_1Q + γ·(Σ ε_2Q / N_2Q)`.
///
/// Lower is better. The single-qubit term uses the device-average RX error
/// (the paper's ε_1Q is the RX gate error rate).
pub fn error_score(snapshot: &CalibrationSnapshot, weights: &ErrorScoreWeights) -> f64 {
    weights.alpha * snapshot.avg_readout_error()
        + weights.theta * snapshot.avg_rx_error()
        + weights.gamma * snapshot.avg_two_qubit_error()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{QubitCalibration, TwoQubitGateCalibration};

    fn snapshot(ro: f64, rx: f64, tq: f64) -> CalibrationSnapshot {
        CalibrationSnapshot {
            timestamp: 0.0,
            qubits: vec![QubitCalibration {
                readout_error: ro,
                rx_error: rx,
                t1_us: 300.0,
                t2_us: 200.0,
            }],
            two_qubit_gates: vec![TwoQubitGateCalibration {
                qubit_a: 0,
                qubit_b: 0,
                error: tq,
            }],
        }
    }

    #[test]
    fn paper_weights_combination() {
        let s = snapshot(0.02, 0.001, 0.01);
        let score = error_score(&s, &ErrorScoreWeights::default());
        // 0.5*0.02 + 0.3*0.001 + 0.2*0.01 = 0.0123
        assert!((score - 0.0123).abs() < 1e-12);
    }

    #[test]
    fn score_monotone_in_each_term() {
        let w = ErrorScoreWeights::default();
        let base = error_score(&snapshot(0.02, 0.001, 0.01), &w);
        assert!(error_score(&snapshot(0.03, 0.001, 0.01), &w) > base);
        assert!(error_score(&snapshot(0.02, 0.002, 0.01), &w) > base);
        assert!(error_score(&snapshot(0.02, 0.001, 0.02), &w) > base);
    }

    #[test]
    fn custom_weights() {
        let s = snapshot(0.02, 0.001, 0.01);
        let w = ErrorScoreWeights {
            alpha: 1.0,
            theta: 0.0,
            gamma: 0.0,
        };
        assert!((error_score(&s, &w) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn weight_validation() {
        assert!(ErrorScoreWeights::default().validate().is_ok());
        assert!(ErrorScoreWeights {
            alpha: -0.1,
            theta: 0.5,
            gamma: 0.6
        }
        .validate()
        .is_err());
        assert!(ErrorScoreWeights {
            alpha: 0.0,
            theta: 0.0,
            gamma: 0.0
        }
        .validate()
        .is_err());
    }
}
