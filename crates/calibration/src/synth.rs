//! Synthetic calibration snapshot generation.
//!
//! Substitutes the IBM March-2025 calibration CSVs used by the paper. Error
//! rates are drawn from truncated normals around device-level centres, which
//! reproduces the two features the scheduler actually depends on: realistic
//! magnitudes and stable cross-device ordering of error scores.

use crate::data::{CalibrationSnapshot, QubitCalibration, TwoQubitGateCalibration};
use qcs_desim::dist::truncated_normal;
use qcs_desim::Xoshiro256StarStar;
use qcs_topology::Graph;
use serde::{Deserialize, Serialize};

/// Device-level centres and spreads for synthetic calibration data.
///
/// Defaults reflect published Eagle-class magnitudes (readout ≈ 1e-2,
/// RX ≈ 2.5e-4, two-qubit ≈ 7e-3, T1/T2 ≈ 250/150 µs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthErrorRanges {
    /// Mean readout error per qubit.
    pub readout_mean: f64,
    /// Relative spread (std dev / mean) of per-qubit readout errors.
    pub readout_rel_spread: f64,
    /// Mean single-qubit RX error.
    pub rx_mean: f64,
    /// Relative spread of RX errors.
    pub rx_rel_spread: f64,
    /// Mean two-qubit gate error.
    pub two_qubit_mean: f64,
    /// Relative spread of two-qubit gate errors.
    pub two_qubit_rel_spread: f64,
    /// Mean T1 in µs.
    pub t1_mean_us: f64,
    /// Mean T2 in µs (clamped to ≤ 2·T1 per qubit).
    pub t2_mean_us: f64,
}

impl Default for SynthErrorRanges {
    fn default() -> Self {
        SynthErrorRanges {
            readout_mean: 1.68e-2,
            readout_rel_spread: 0.35,
            rx_mean: 4.2e-4,
            rx_rel_spread: 0.30,
            two_qubit_mean: 9.2e-3,
            two_qubit_rel_spread: 0.30,
            t1_mean_us: 250.0,
            t2_mean_us: 150.0,
        }
    }
}

impl SynthErrorRanges {
    /// Returns a copy with all error means scaled by `factor` — a convenient
    /// way to derive cleaner/noisier device variants from one base profile.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        SynthErrorRanges {
            readout_mean: self.readout_mean * factor,
            rx_mean: self.rx_mean * factor,
            two_qubit_mean: self.two_qubit_mean * factor,
            ..self.clone()
        }
    }
}

/// Generates a synthetic calibration snapshot for a device with the given
/// coupling map. Deterministic in `(ranges, coupling map, rng state)`.
pub fn synth_snapshot(
    topology: &Graph,
    ranges: &SynthErrorRanges,
    timestamp: f64,
    rng: &mut Xoshiro256StarStar,
) -> CalibrationSnapshot {
    let n = topology.num_nodes();
    let mut qubits = Vec::with_capacity(n);
    for _ in 0..n {
        let ro = sample_rate(rng, ranges.readout_mean, ranges.readout_rel_spread);
        let rx = sample_rate(rng, ranges.rx_mean, ranges.rx_rel_spread);
        let t1 = truncated_normal(rng, ranges.t1_mean_us, ranges.t1_mean_us * 0.2, 20.0, 1e4);
        let t2_raw = truncated_normal(rng, ranges.t2_mean_us, ranges.t2_mean_us * 0.25, 10.0, 1e4);
        let t2 = t2_raw.min(2.0 * t1);
        qubits.push(QubitCalibration {
            readout_error: ro,
            rx_error: rx,
            t1_us: t1,
            t2_us: t2,
        });
    }
    let mut two_qubit_gates = Vec::with_capacity(topology.num_edges());
    for (a, b) in topology.edges() {
        let err = sample_rate(rng, ranges.two_qubit_mean, ranges.two_qubit_rel_spread);
        two_qubit_gates.push(TwoQubitGateCalibration {
            qubit_a: a,
            qubit_b: b,
            error: err,
        });
    }
    CalibrationSnapshot {
        timestamp,
        qubits,
        two_qubit_gates,
    }
}

fn sample_rate(rng: &mut Xoshiro256StarStar, mean: f64, rel_spread: f64) -> f64 {
    let lo = (mean * 0.2).max(1e-9);
    let hi = (mean * 4.0).min(0.5);
    truncated_normal(rng, mean, mean * rel_spread, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::heavy_hex_eagle;

    #[test]
    fn snapshot_covers_topology() {
        let g = heavy_hex_eagle();
        let mut rng = Xoshiro256StarStar::new(1);
        let s = synth_snapshot(&g, &SynthErrorRanges::default(), 0.0, &mut rng);
        assert_eq!(s.num_qubits(), 127);
        assert_eq!(s.two_qubit_gates.len(), 144);
        s.validate().expect("synthetic snapshot must be physical");
    }

    #[test]
    fn magnitudes_near_centres() {
        let g = heavy_hex_eagle();
        let mut rng = Xoshiro256StarStar::new(2);
        let ranges = SynthErrorRanges::default();
        let s = synth_snapshot(&g, &ranges, 0.0, &mut rng);
        // With 127 samples the mean should land near the centre.
        assert!((s.avg_readout_error() / ranges.readout_mean - 1.0).abs() < 0.25);
        assert!((s.avg_two_qubit_error() / ranges.two_qubit_mean - 1.0).abs() < 0.25);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = heavy_hex_eagle();
        let ranges = SynthErrorRanges::default();
        let mut r1 = Xoshiro256StarStar::new(77);
        let mut r2 = Xoshiro256StarStar::new(77);
        let a = synth_snapshot(&g, &ranges, 0.0, &mut r1);
        let b = synth_snapshot(&g, &ranges, 0.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_ranges_shift_error_scores() {
        let g = heavy_hex_eagle();
        let base = SynthErrorRanges::default();
        let noisy = base.scaled(2.0);
        let mut r1 = Xoshiro256StarStar::new(5);
        let mut r2 = Xoshiro256StarStar::new(5);
        let clean_snap = synth_snapshot(&g, &base, 0.0, &mut r1);
        let noisy_snap = synth_snapshot(&g, &noisy, 0.0, &mut r2);
        let w = crate::score::ErrorScoreWeights::default();
        assert!(
            crate::score::error_score(&noisy_snap, &w) > crate::score::error_score(&clean_snap, &w)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = SynthErrorRanges::default().scaled(0.0);
    }
}
