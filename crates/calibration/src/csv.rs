//! CSV import/export of calibration snapshots.
//!
//! IBM's calibration-job downloads arrive as per-qubit CSV tables; this
//! module round-trips [`CalibrationSnapshot`]s through the same style of
//! flat file so recorded (or real, suitably column-mapped) calibration data
//! can drive simulations deterministically. The format is two sections:
//!
//! ```text
//! # timestamp,<seconds>
//! qubit,readout_error,rx_error,t1_us,t2_us
//! 0,0.0123,0.00031,310.5,180.2
//! ...
//! edge,qubit_a,qubit_b,error
//! 0,0,1,0.0071
//! ...
//! ```
//!
//! Hand-rolled (5 fixed columns per section) — a CSV dependency is not
//! warranted, mirroring `qcs-workload`'s job files.

use crate::data::{CalibrationSnapshot, QubitCalibration, TwoQubitGateCalibration};

/// Serialises a snapshot to the CSV format above.
pub fn snapshot_to_csv(snap: &CalibrationSnapshot) -> String {
    let mut out = String::with_capacity(64 * (snap.qubits.len() + snap.two_qubit_gates.len()));
    out.push_str(&format!("# timestamp,{}\n", snap.timestamp));
    out.push_str("qubit,readout_error,rx_error,t1_us,t2_us\n");
    for (i, q) in snap.qubits.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{},{},{}\n",
            q.readout_error, q.rx_error, q.t1_us, q.t2_us
        ));
    }
    out.push_str("edge,qubit_a,qubit_b,error\n");
    for (i, g) in snap.two_qubit_gates.iter().enumerate() {
        out.push_str(&format!("{i},{},{},{}\n", g.qubit_a, g.qubit_b, g.error));
    }
    out
}

/// Parses a snapshot written by [`snapshot_to_csv`]. Returns a descriptive
/// error (line number + reason) on malformed input; the parsed snapshot is
/// also [validated](CalibrationSnapshot::validate).
pub fn snapshot_from_csv(text: &str) -> Result<CalibrationSnapshot, String> {
    let mut timestamp = 0.0f64;
    let mut qubits = Vec::new();
    let mut gates = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Qubits,
        Edges,
    }
    let mut section = Section::Preamble;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# timestamp,") {
            timestamp = rest
                .trim()
                .parse()
                .map_err(|e| format!("line {n}: bad timestamp: {e}"))?;
            continue;
        }
        if line == "qubit,readout_error,rx_error,t1_us,t2_us" {
            section = Section::Qubits;
            continue;
        }
        if line == "edge,qubit_a,qubit_b,error" {
            section = Section::Edges;
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        match section {
            Section::Preamble => {
                return Err(format!("line {n}: data before a section header"));
            }
            Section::Qubits => {
                if fields.len() != 5 {
                    return Err(format!(
                        "line {n}: expected 5 qubit fields, got {}",
                        fields.len()
                    ));
                }
                let idx: usize = fields[0]
                    .parse()
                    .map_err(|e| format!("line {n}: bad qubit index: {e}"))?;
                if idx != qubits.len() {
                    return Err(format!(
                        "line {n}: qubit rows must be dense and ordered (expected {}, got {idx})",
                        qubits.len()
                    ));
                }
                let num = |k: usize, what: &str| -> Result<f64, String> {
                    fields[k]
                        .parse()
                        .map_err(|e| format!("line {n}: bad {what}: {e}"))
                };
                qubits.push(QubitCalibration {
                    readout_error: num(1, "readout_error")?,
                    rx_error: num(2, "rx_error")?,
                    t1_us: num(3, "t1_us")?,
                    t2_us: num(4, "t2_us")?,
                });
            }
            Section::Edges => {
                if fields.len() != 4 {
                    return Err(format!(
                        "line {n}: expected 4 edge fields, got {}",
                        fields.len()
                    ));
                }
                let a: u32 = fields[1]
                    .parse()
                    .map_err(|e| format!("line {n}: bad qubit_a: {e}"))?;
                let b: u32 = fields[2]
                    .parse()
                    .map_err(|e| format!("line {n}: bad qubit_b: {e}"))?;
                let error: f64 = fields[3]
                    .parse()
                    .map_err(|e| format!("line {n}: bad error: {e}"))?;
                if a as usize >= qubits.len() || b as usize >= qubits.len() {
                    return Err(format!(
                        "line {n}: edge {a}-{b} references a qubit outside 0..{}",
                        qubits.len()
                    ));
                }
                gates.push(TwoQubitGateCalibration {
                    qubit_a: a,
                    qubit_b: b,
                    error,
                });
            }
        }
    }
    let snap = CalibrationSnapshot {
        timestamp,
        qubits,
        two_qubit_gates: gates,
    };
    snap.validate()?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_snapshot, SynthErrorRanges};
    use qcs_desim::Xoshiro256StarStar;
    use qcs_topology::heavy_hex_eagle;

    fn sample() -> CalibrationSnapshot {
        let mut rng = Xoshiro256StarStar::new(42);
        synth_snapshot(
            &heavy_hex_eagle(),
            &SynthErrorRanges::default(),
            0.0,
            &mut rng,
        )
    }

    #[test]
    fn roundtrip_is_lossless() {
        let snap = sample();
        let csv = snapshot_to_csv(&snap);
        let back = snapshot_from_csv(&csv).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn format_shape() {
        let snap = sample();
        let csv = snapshot_to_csv(&snap);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("# timestamp,"));
        assert_eq!(lines[1], "qubit,readout_error,rx_error,t1_us,t2_us");
        // 127 qubit rows, then the edge header, then 144 edge rows.
        assert_eq!(lines.len(), 2 + 127 + 1 + 144);
        assert_eq!(lines[2 + 127], "edge,qubit_a,qubit_b,error");
    }

    #[test]
    fn rejects_data_before_header() {
        assert!(snapshot_from_csv("0,0.1,0.1,100,100\n")
            .unwrap_err()
            .contains("before a section"));
    }

    #[test]
    fn rejects_sparse_qubit_rows() {
        let txt = "qubit,readout_error,rx_error,t1_us,t2_us\n2,0.1,0.001,100,100\n";
        assert!(snapshot_from_csv(txt)
            .unwrap_err()
            .contains("dense and ordered"));
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let txt = "qubit,readout_error,rx_error,t1_us,t2_us\n\
                   0,0.1,0.001,100,100\n\
                   edge,qubit_a,qubit_b,error\n\
                   0,0,5,0.01\n";
        assert!(snapshot_from_csv(txt).unwrap_err().contains("outside"));
    }

    #[test]
    fn rejects_malformed_numbers_with_line_info() {
        let txt = "qubit,readout_error,rx_error,t1_us,t2_us\n0,abc,0.001,100,100\n";
        let err = snapshot_from_csv(txt).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("readout_error"), "{err}");
    }

    #[test]
    fn validation_applies_after_parse() {
        // T2 > 2·T1 violates the physical bound even if the CSV is
        // syntactically fine.
        let txt = "# timestamp,0\n\
                   qubit,readout_error,rx_error,t1_us,t2_us\n\
                   0,0.01,0.001,100,300\n\
                   edge,qubit_a,qubit_b,error\n";
        assert!(snapshot_from_csv(txt).unwrap_err().contains("T2"));
    }

    #[test]
    fn empty_sections_parse() {
        let txt = "# timestamp,3.5\nqubit,readout_error,rx_error,t1_us,t2_us\n\
                   edge,qubit_a,qubit_b,error\n";
        let snap = snapshot_from_csv(txt).unwrap();
        assert_eq!(snap.timestamp, 3.5);
        assert_eq!(snap.num_qubits(), 0);
    }
}
