//! Calibration drift: a mean-reverting stochastic process over error rates.
//!
//! Real devices are recalibrated periodically; between calibrations error
//! rates wander. The paper treats calibration as static within a run but
//! lists "dynamic hardware variability" as a limitation (§7.2); this module
//! implements the extension so the drift ablation can quantify how much a
//! noise-aware scheduler gains when calibration data goes stale.
//!
//! Each error rate `ε` follows a log-space Ornstein–Uhlenbeck process:
//! `d ln ε = -κ (ln ε - ln ε₀) dt + σ dW`, which keeps rates positive and
//! mean-reverting to the calibrated value `ε₀`.

use crate::data::CalibrationSnapshot;
use qcs_desim::dist::standard_normal;
use qcs_desim::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// Parameters of the log-OU drift process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// Mean-reversion rate κ per second (e.g. 1/86400 for a one-day scale).
    pub kappa: f64,
    /// Volatility σ per √second.
    pub sigma: f64,
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel {
            // One-day reversion scale, ±20% daily wander — typical of the
            // day-to-day variation visible in public IBM calibration data.
            kappa: 1.0 / 86_400.0,
            sigma: 0.2 / 86_400.0f64.sqrt(),
        }
    }
}

impl DriftModel {
    /// Advances every error rate in `snapshot` by `dt` seconds of drift,
    /// using `baseline` as the mean-reversion anchor. Coherence times are
    /// left unchanged (their drift does not enter the paper's models).
    pub fn step(
        &self,
        snapshot: &mut CalibrationSnapshot,
        baseline: &CalibrationSnapshot,
        dt: f64,
        rng: &mut Xoshiro256StarStar,
    ) {
        assert!(dt >= 0.0, "drift interval must be non-negative");
        assert_eq!(
            snapshot.qubits.len(),
            baseline.qubits.len(),
            "snapshot/baseline qubit count mismatch"
        );
        if dt == 0.0 {
            return;
        }
        let decay = (-self.kappa * dt).exp();
        // Exact OU transition: stationary-consistent variance over dt.
        let noise_std = if self.kappa > 0.0 {
            (self.sigma * self.sigma / (2.0 * self.kappa) * (1.0 - decay * decay)).sqrt()
        } else {
            self.sigma * dt.sqrt()
        };

        let mut evolve = |current: f64, anchor: f64| -> f64 {
            let x = current.max(1e-12).ln();
            let mu = anchor.max(1e-12).ln();
            let next = mu + (x - mu) * decay + noise_std * standard_normal(rng);
            next.exp().clamp(1e-9, 0.9)
        };

        for (q, q0) in snapshot.qubits.iter_mut().zip(&baseline.qubits) {
            q.readout_error = evolve(q.readout_error, q0.readout_error);
            q.rx_error = evolve(q.rx_error, q0.rx_error);
        }
        for (g, g0) in snapshot
            .two_qubit_gates
            .iter_mut()
            .zip(&baseline.two_qubit_gates)
        {
            g.error = evolve(g.error, g0.error);
        }
        snapshot.timestamp += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_snapshot, SynthErrorRanges};
    use qcs_topology::heavy_hex_eagle;

    fn base() -> CalibrationSnapshot {
        let g = heavy_hex_eagle();
        let mut rng = Xoshiro256StarStar::new(3);
        synth_snapshot(&g, &SynthErrorRanges::default(), 0.0, &mut rng)
    }

    #[test]
    fn zero_dt_is_identity() {
        let baseline = base();
        let mut snap = baseline.clone();
        let mut rng = Xoshiro256StarStar::new(9);
        DriftModel::default().step(&mut snap, &baseline, 0.0, &mut rng);
        assert_eq!(snap, baseline);
    }

    #[test]
    fn drift_changes_rates_but_stays_physical() {
        let baseline = base();
        let mut snap = baseline.clone();
        let mut rng = Xoshiro256StarStar::new(9);
        DriftModel::default().step(&mut snap, &baseline, 3600.0, &mut rng);
        assert_ne!(snap, baseline);
        snap.validate()
            .expect("drifted snapshot must stay physical");
        assert_eq!(snap.timestamp, 3600.0);
    }

    #[test]
    fn drift_is_mean_reverting() {
        // After many reversion timescales with zero volatility, rates return
        // to the baseline.
        let baseline = base();
        let mut snap = baseline.clone();
        // Knock the first qubit far off.
        snap.qubits[0].readout_error = 0.2;
        let model = DriftModel {
            kappa: 1.0,
            sigma: 0.0,
        };
        let mut rng = Xoshiro256StarStar::new(1);
        model.step(&mut snap, &baseline, 50.0, &mut rng);
        assert!(
            (snap.qubits[0].readout_error - baseline.qubits[0].readout_error).abs() < 1e-6,
            "rate should revert to baseline"
        );
    }

    #[test]
    fn long_drift_variance_is_bounded() {
        // The stationary std of log-rate is sigma/sqrt(2 kappa); with the
        // default model that is ~0.1 in log space — rates can't run away.
        let baseline = base();
        let mut snap = baseline.clone();
        let mut rng = Xoshiro256StarStar::new(4);
        let model = DriftModel::default();
        for _ in 0..100 {
            model.step(&mut snap, &baseline, 86_400.0, &mut rng);
        }
        let ratio = snap.avg_readout_error() / baseline.avg_readout_error();
        assert!(
            (0.3..3.0).contains(&ratio),
            "drifted mean ratio {ratio} diverged"
        );
    }
}
