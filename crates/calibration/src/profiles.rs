//! The five IBM device profiles of the paper's case study (§7).
//!
//! All devices are 127-qubit Eagle-class QPUs with quantum volume 2^7 (the
//! paper quotes "quantum volumes of 127", which enters every formula only as
//! `D = log2(QV) ≈ 7` layers; we use QV = 128 so `D = 7` exactly).
//! CLOPS values are the paper's: `ibm_strasbourg` and `ibm_brussels` at
//! 220,000; `ibm_quebec` 32,000; `ibm_kyiv` 30,000; `ibm_kawasaki` 29,000.
//!
//! Error-rate *scales* per device are synthetic (the real March-2025
//! calibration snapshots are not redistributable) and are chosen so that the
//! error-score ranking is `strasbourg < brussels < kyiv < quebec <
//! kawasaki`, i.e. the fast devices are also the cleanest. This matches the
//! qualitative structure needed to reproduce Table 2: the error-aware policy
//! concentrates load on the two premium devices, gaining fidelity but paying
//! queueing delay.

use crate::data::CalibrationSnapshot;
use crate::score::{error_score, ErrorScoreWeights};
use crate::synth::{synth_snapshot, SynthErrorRanges};
use qcs_desim::Xoshiro256StarStar;
use qcs_topology::{heavy_hex_eagle, Graph};
use serde::{Deserialize, Serialize};

/// Static description of a QPU model (name + performance envelope).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name, e.g. `ibm_strasbourg`.
    pub name: String,
    /// Qubit count.
    pub num_qubits: u32,
    /// Quantum volume (a power of two; `log2` gives the layer depth D).
    pub quantum_volume: u64,
    /// Circuit layer operations per second.
    pub clops: f64,
    /// Multiplier applied to the base synthetic error ranges.
    pub error_scale: f64,
}

impl DeviceSpec {
    /// `D = log2(QV)`, the layer depth used in the execution-time model.
    pub fn qv_layers(&self) -> f64 {
        (self.quantum_volume as f64).log2()
    }
}

/// A fully materialised device: spec, coupling map and calibration snapshot.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Static spec.
    pub spec: DeviceSpec,
    /// Coupling map.
    pub topology: Graph,
    /// Current calibration snapshot.
    pub calibration: CalibrationSnapshot,
}

impl DeviceProfile {
    /// Materialises a profile: builds the Eagle coupling map and draws a
    /// synthetic calibration snapshot scaled by the spec's `error_scale`.
    pub fn materialise(spec: DeviceSpec, base: &SynthErrorRanges, seed: u64) -> Self {
        let topology = if spec.num_qubits == 127 {
            heavy_hex_eagle()
        } else {
            // Fall back to a generic heavy-hex sized to fit at least the
            // requested qubit count, then a line for tiny devices.
            generic_map(spec.num_qubits)
        };
        assert_eq!(
            topology.num_nodes(),
            spec.num_qubits as usize,
            "topology size does not match spec"
        );
        let mut rng = Xoshiro256StarStar::new(seed);
        let ranges = base.scaled(spec.error_scale);
        let calibration = synth_snapshot(&topology, &ranges, 0.0, &mut rng);
        DeviceProfile {
            spec,
            topology,
            calibration,
        }
    }

    /// Error score of the current calibration (Eq. 2).
    pub fn error_score(&self, weights: &ErrorScoreWeights) -> f64 {
        error_score(&self.calibration, weights)
    }
}

fn generic_map(num_qubits: u32) -> Graph {
    // Find a heavy-hex (rows, 15) close to the requested size; otherwise a
    // line. Used only for non-Eagle what-if studies.
    for rows in 2..40 {
        let g = qcs_topology::heavy_hex(rows, 15);
        if g.num_nodes() == num_qubits as usize {
            return g;
        }
    }
    qcs_topology::line(num_qubits as usize)
}

/// The paper's five-device fleet, deterministically materialised from a
/// seed. Order: strasbourg, brussels, kyiv, quebec, kawasaki.
pub fn ibm_fleet(seed: u64) -> Vec<DeviceProfile> {
    let base = SynthErrorRanges::default();
    let specs = [
        ("ibm_strasbourg", 220_000.0, 0.82),
        ("ibm_brussels", 220_000.0, 0.90),
        ("ibm_kyiv", 30_000.0, 1.05),
        ("ibm_quebec", 32_000.0, 1.13),
        ("ibm_kawasaki", 29_000.0, 1.21),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, &(name, clops, scale))| {
            DeviceProfile::materialise(
                DeviceSpec {
                    name: name.to_string(),
                    num_qubits: 127,
                    quantum_volume: 128,
                    clops,
                    error_scale: scale,
                },
                &base,
                seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )
        })
        .collect()
}

/// A region-sharded fleet for service-mode studies: `regions` replicas of
/// the paper's five-device fleet, each region materialised from its own
/// derived seed (so calibrations differ between regions, as real sites
/// would) with names prefixed `r<i>/` (e.g. `r2/ibm_kyiv`). Region `0` of
/// `regional_fleet(n, s)` is **not** `ibm_fleet(s)` — the seed derivation
/// mixes the region index first so no two regions alias.
pub fn regional_fleet(regions: usize, seed: u64) -> Vec<Vec<DeviceProfile>> {
    assert!(regions >= 1, "need at least one region");
    (0..regions)
        .map(|r| {
            let region_seed = seed
                .wrapping_add((r as u64 + 1) << 32)
                .wrapping_mul(0x9E3779B97F4A7C15);
            let mut fleet = ibm_fleet(region_seed);
            for d in &mut fleet {
                d.spec.name = format!("r{r}/{}", d.spec.name);
            }
            fleet
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_five_eagles() {
        let fleet = ibm_fleet(42);
        assert_eq!(fleet.len(), 5);
        for d in &fleet {
            assert_eq!(d.spec.num_qubits, 127);
            assert_eq!(d.topology.num_nodes(), 127);
            assert_eq!(d.spec.qv_layers(), 7.0);
            d.calibration.validate().unwrap();
        }
        assert_eq!(fleet[0].spec.name, "ibm_strasbourg");
        assert_eq!(fleet[4].spec.name, "ibm_kawasaki");
    }

    #[test]
    fn fleet_clops_match_paper() {
        let fleet = ibm_fleet(1);
        let clops: Vec<f64> = fleet.iter().map(|d| d.spec.clops).collect();
        assert_eq!(
            clops,
            vec![220_000.0, 220_000.0, 30_000.0, 32_000.0, 29_000.0]
        );
    }

    #[test]
    fn error_score_ranking_is_stable() {
        // The intended ranking must hold across seeds — otherwise the
        // error-aware policy would pick different devices run to run.
        let w = ErrorScoreWeights::default();
        for seed in [1u64, 7, 42, 1000, 31337] {
            let fleet = ibm_fleet(seed);
            let scores: Vec<f64> = fleet.iter().map(|d| d.error_score(&w)).collect();
            for i in 0..scores.len() - 1 {
                assert!(
                    scores[i] < scores[i + 1],
                    "seed {seed}: error ranking broken at {i}: {scores:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_fleet() {
        let a = ibm_fleet(7);
        let b = ibm_fleet(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.calibration, y.calibration);
        }
    }

    #[test]
    fn regional_fleet_replicates_with_distinct_calibrations() {
        let regions = regional_fleet(3, 42);
        assert_eq!(regions.len(), 3);
        for (r, fleet) in regions.iter().enumerate() {
            assert_eq!(fleet.len(), 5);
            assert_eq!(fleet[0].spec.name, format!("r{r}/ibm_strasbourg"));
            for d in fleet {
                assert_eq!(d.spec.num_qubits, 127);
                d.calibration.validate().unwrap();
            }
        }
        // Regions are replicas in shape but not in calibration draws.
        assert_ne!(regions[0][0].calibration, regions[1][0].calibration);
        // Deterministic across invocations.
        let again = regional_fleet(3, 42);
        for (a, b) in regions.iter().flatten().zip(again.iter().flatten()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.calibration, b.calibration);
        }
    }

    #[test]
    fn error_scores_in_realistic_band() {
        let w = ErrorScoreWeights::default();
        for d in ibm_fleet(9) {
            let s = d.error_score(&w);
            assert!(
                (0.002..0.03).contains(&s),
                "{} error score {s} outside realistic band",
                d.spec.name
            );
        }
    }
}
