//! Property-based tests for calibration data: physicality under synthesis
//! and drift, and error-score algebra.

use proptest::prelude::*;
use qcs_calibration::{
    error_score, synth_snapshot, DriftModel, ErrorScoreWeights, SynthErrorRanges,
};
use qcs_desim::Xoshiro256StarStar;
use qcs_topology::heavy_hex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Synthetic snapshots are physical for any plausible range settings.
    #[test]
    fn synth_snapshots_always_physical(
        seed in 0u64..10_000,
        ro in 1e-3f64..0.1,
        rx in 1e-5f64..1e-2,
        tq in 1e-4f64..0.05,
        rows in 2usize..8,
    ) {
        let ranges = SynthErrorRanges {
            readout_mean: ro,
            rx_mean: rx,
            two_qubit_mean: tq,
            ..SynthErrorRanges::default()
        };
        let g = heavy_hex(rows, 15);
        let mut rng = Xoshiro256StarStar::new(seed);
        let snap = synth_snapshot(&g, &ranges, 0.0, &mut rng);
        prop_assert!(snap.validate().is_ok(), "{:?}", snap.validate());
        prop_assert_eq!(snap.num_qubits(), g.num_nodes());
        prop_assert_eq!(snap.two_qubit_gates.len(), g.num_edges());
    }

    /// Error score is linear in the weights: score(w1+w2) = score(w1) + score(w2).
    #[test]
    fn error_score_linear_in_weights(
        seed in 0u64..1000,
        a1 in 0.0f64..1.0, t1 in 0.0f64..1.0, g1 in 0.0f64..1.0,
        a2 in 0.0f64..1.0, t2 in 0.0f64..1.0, g2 in 0.0f64..1.0,
    ) {
        let g = heavy_hex(3, 15);
        let mut rng = Xoshiro256StarStar::new(seed);
        let snap = synth_snapshot(&g, &SynthErrorRanges::default(), 0.0, &mut rng);
        let w1 = ErrorScoreWeights { alpha: a1, theta: t1, gamma: g1 };
        let w2 = ErrorScoreWeights { alpha: a2, theta: t2, gamma: g2 };
        let wsum = ErrorScoreWeights { alpha: a1 + a2, theta: t1 + t2, gamma: g1 + g2 };
        let s = error_score(&snap, &w1) + error_score(&snap, &w2);
        prop_assert!((error_score(&snap, &wsum) - s).abs() < 1e-12);
    }

    /// Scaling all error means scales the score proportionally (within the
    /// sampling noise of independent draws).
    #[test]
    fn error_score_scales_with_error_magnitude(
        seed in 0u64..1000,
        factor in 1.2f64..3.0,
    ) {
        let g = heavy_hex(4, 15);
        let base = SynthErrorRanges::default();
        let scaled = base.scaled(factor);
        let w = ErrorScoreWeights::default();
        let mut r1 = Xoshiro256StarStar::new(seed);
        let mut r2 = Xoshiro256StarStar::new(seed);
        let s_base = error_score(&synth_snapshot(&g, &base, 0.0, &mut r1), &w);
        let s_scaled = error_score(&synth_snapshot(&g, &scaled, 0.0, &mut r2), &w);
        // Same seed → same relative draws → the ratio tracks the factor
        // closely (truncation bounds differ slightly).
        let ratio = s_scaled / s_base;
        prop_assert!((ratio / factor - 1.0).abs() < 0.25, "ratio {ratio} vs factor {factor}");
    }

    /// Drift never leaves the physical region, regardless of horizon.
    #[test]
    fn drift_stays_physical(
        seed in 0u64..1000,
        steps in 1usize..20,
        dt in 60.0f64..200_000.0,
        sigma_scale in 0.1f64..5.0,
    ) {
        let g = heavy_hex(3, 15);
        let mut rng = Xoshiro256StarStar::new(seed);
        let baseline = synth_snapshot(&g, &SynthErrorRanges::default(), 0.0, &mut rng);
        let mut snap = baseline.clone();
        let model = DriftModel {
            kappa: 1.0 / 86_400.0,
            sigma: sigma_scale * 0.2 / 86_400.0f64.sqrt(),
        };
        for _ in 0..steps {
            model.step(&mut snap, &baseline, dt, &mut rng);
        }
        prop_assert!(snap.validate().is_ok());
        prop_assert!((snap.timestamp - steps as f64 * dt).abs() < 1e-6);
    }
}
