//! Optional event tracing for debugging and analysis.

use crate::container::ContainerId;
use crate::process::ProcessId;

/// One trace record emitted by the kernel or by a process.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time at which the record was emitted.
    pub time: f64,
    /// The process involved, if any.
    pub pid: Option<ProcessId>,
    /// What happened.
    pub kind: TraceKind,
}

/// Categories of trace records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A process was spawned.
    Spawn,
    /// A process finished.
    Finish,
    /// A request was queued on one or more containers.
    Queued {
        /// Involved containers.
        containers: Vec<ContainerId>,
    },
    /// A queued request was granted.
    Granted {
        /// Involved containers.
        containers: Vec<ContainerId>,
    },
    /// Free-form message from a process.
    Note(String),
}

/// A bounded trace buffer. When full, new records are dropped (the count of
/// dropped records is kept so analyses know the trace is partial).
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding up to `capacity` records; 0 disables tracing.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            records: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether tracing is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record if there is room.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else if self.capacity > 0 {
            self.dropped += 1;
        }
    }

    /// The collected records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// How many records were dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_drops_silently() {
        let mut tb = TraceBuffer::new(0);
        assert!(!tb.enabled());
        tb.push(TraceRecord {
            time: 0.0,
            pid: None,
            kind: TraceKind::Spawn,
        });
        assert!(tb.records().is_empty());
        assert_eq!(tb.dropped(), 0);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut tb = TraceBuffer::new(2);
        for i in 0..5 {
            tb.push(TraceRecord {
                time: i as f64,
                pid: None,
                kind: TraceKind::Spawn,
            });
        }
        assert_eq!(tb.records().len(), 2);
        assert_eq!(tb.dropped(), 3);
    }
}
