//! # qcs-desim — deterministic discrete-event simulation kernel
//!
//! A process-interaction discrete-event simulation (DES) engine in the style
//! of [SimPy](https://simpy.readthedocs.io), built for the `qcs` quantum cloud
//! simulator (Luo et al., ICPP 2025) but fully general.
//!
//! ## Model
//!
//! * A [`Simulation`] owns a monotone event heap, a set of *processes*
//!   (cooperative coroutines implementing [`Coroutine`]), and a set of
//!   [`Container`]s (counted resources with FIFO blocking semantics).
//! * Processes advance by returning [`Step::Wait`] with an [`Effect`] —
//!   a timeout, a (multi-)container get/put, or a suspension. The kernel
//!   resumes them when the effect completes.
//! * Multi-container requests ([`Effect::GetAll`]) are **atomic and
//!   all-or-nothing**: a job reserving qubits on several quantum devices
//!   either acquires every partition or keeps waiting, which makes
//!   cross-device reservation deadlock-free by construction.
//! * Requests carry an optional **priority** ([`Effect::GetPri`],
//!   [`Effect::GetAllPri`]): lower values are served first and may overtake
//!   queued lower-priority requests (non-preemptive priority service);
//!   equal priorities stay strictly FIFO. The service key `(priority,
//!   submission order)` is global across containers, so multi-container
//!   priority requests inherit the FIFO deadlock-freedom argument.
//! * Processes can be **interrupted** ([`Simulation::interrupt`]): a
//!   pending timeout, container request or suspension is cancelled and the
//!   process resumes immediately with a flag it reads via
//!   [`process::Ctx::take_interrupted`] — the building block for reneging
//!   (give up after waiting too long), watchdogs, and preemptive failure
//!   injection.
//! * Everything is deterministic: events are ordered by `(time, seq)`,
//!   requests by `(priority, ticket)`, and all randomness flows from
//!   explicit seeds through the bundled [`rng::Xoshiro256StarStar`]
//!   generator.
//!
//! ## Slab allocation and handles
//!
//! Processes and scheduled resume events live in `Vec`-backed slabs with
//! free lists: a finished or killed process returns its slot to a pool
//! that the next spawn reuses, and every heap entry names a pooled event
//! slot, so long runs (100k+ jobs) recycle a bounded set of allocations
//! instead of growing without bound.
//!
//! Handles ([`ProcessId`], [`kernel::EventId`]) are `(index, generation)`
//! pairs. Freeing a slot bumps its generation, so a handle from a previous
//! occupant can never resolve to the new one:
//!
//! * [`Simulation::wake`] / [`Simulation::interrupt`] /
//!   [`Simulation::kill`] through a stale handle return `false` and do
//!   nothing — holding a pid of a finished process is always safe, even
//!   after its slot was reused;
//! * [`Simulation::is_done`] answers `true` for a stale handle (that
//!   incarnation is gone);
//! * [`ProcessId::as_raw`] packs `(index, generation)` into a `u64` for
//!   storage in atomics/registries, and [`ProcessId::from_raw`] restores
//!   the full handle — staleness checks survive the round-trip.
//!
//! Cancelling a pending wait (interrupt, kill) frees the event slot and
//! leaves the heap entry behind; the kernel recognises it as stale by its
//! generation when popped and discards it without advancing the clock.
//!
//! ## Quick example
//!
//! ```
//! use qcs_desim::{Simulation, Coroutine, Ctx, Step, Effect};
//!
//! struct Pulse { remaining: u32 }
//! impl Coroutine for Pulse {
//!     fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
//!         if self.remaining == 0 { return Step::Done; }
//!         self.remaining -= 1;
//!         Step::Wait(Effect::Timeout(1.5))
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! sim.spawn(Box::new(Pulse { remaining: 4 }));
//! sim.run();
//! assert_eq!(sim.now(), 6.0);
//! ```

#![warn(missing_docs)]

pub mod container;
pub mod dist;
pub mod kernel;
pub mod parallel;
pub mod process;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod store;
pub mod time;
pub mod trace;

pub use container::{Container, ContainerId};
pub use kernel::{EventId, SimConfig, Simulation};
pub use process::{Coroutine, Ctx, Effect, ProcessId, Step};
pub use resource::Resource;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use stats::{Histogram, TimeWeighted, Welford};
pub use store::Store;
pub use time::SimTime;
pub use trace::{TraceKind, TraceRecord};
