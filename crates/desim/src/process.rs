//! Processes: cooperative coroutines driven by the kernel.
//!
//! A process is any type implementing [`Coroutine`]. Each time the kernel
//! resumes it, the process performs some computation and either finishes
//! ([`Step::Done`]) or yields an [`Effect`] describing what it is waiting
//! for. This mirrors SimPy's generator-based processes, expressed as an
//! explicit state machine (Rust has no stable generators, and explicit
//! states are easier to unit-test).

use crate::container::ContainerId;
use crate::kernel::Simulation;
use crate::rng::Xoshiro256StarStar;
use crate::trace::{TraceKind, TraceRecord};

/// Generation-checked handle to a spawned process within one [`Simulation`].
///
/// Process slots are pooled: after a process finishes or is killed, its
/// slot is reused by a later spawn under a bumped generation. A handle
/// therefore names one *incarnation*, not a slot — operations through a
/// handle whose process is gone are safe no-ops (see the
/// [kernel docs](crate::kernel)), even if the slot now hosts someone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

impl ProcessId {
    #[inline]
    pub(crate) fn new(idx: u32, gen: u32) -> Self {
        ProcessId { idx, gen }
    }

    /// The slab slot index (shared between incarnations; use the full
    /// handle, not the index, to identify a process).
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The slot generation this handle was issued under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// Packs the handle into a `u64` for storage in atomics/registries
    /// (low 32 bits: slot index, high 32 bits: generation).
    #[inline]
    pub fn as_raw(self) -> u64 {
        (self.idx as u64) | ((self.gen as u64) << 32)
    }

    /// Rebuilds a handle from [`ProcessId::as_raw`]. The caller is
    /// responsible for only using raw values obtained from the same
    /// simulation; the generation check still applies on use.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        ProcessId {
            idx: raw as u32,
            gen: (raw >> 32) as u32,
        }
    }
}

/// What a process is waiting for.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Resume after the given number of simulated seconds (must be ≥ 0).
    Timeout(f64),
    /// Take `amount` units from a container, blocking FIFO until available.
    Get {
        /// Source container.
        container: ContainerId,
        /// Units to take.
        amount: u64,
    },
    /// Add `amount` units to a container, blocking FIFO while it would
    /// overflow the capacity.
    Put {
        /// Destination container.
        container: ContainerId,
        /// Units to add.
        amount: u64,
    },
    /// Atomically take units from several containers. The request is granted
    /// only when **all** containers can supply their amount and the request
    /// is at the head of every involved FIFO queue — all-or-nothing, so
    /// partial-hold deadlocks cannot occur.
    GetAll(Vec<(ContainerId, u64)>),
    /// Atomically add units to several containers (all-or-nothing, FIFO).
    PutAll(Vec<(ContainerId, u64)>),
    /// Like [`Effect::Get`] with an explicit queue priority: lower values
    /// are served first; equal priorities stay FIFO. A waiting
    /// high-priority request overtakes queued lower-priority ones
    /// (non-preemptive priority service, as in SimPy's `PriorityResource`).
    GetPri {
        /// Source container.
        container: ContainerId,
        /// Units to take.
        amount: u64,
        /// Queue priority (lower = more urgent; plain `Get` is priority 0).
        priority: i32,
    },
    /// Like [`Effect::GetAll`] with an explicit queue priority.
    GetAllPri {
        /// `(container, amount)` parts, granted all-or-nothing.
        parts: Vec<(ContainerId, u64)>,
        /// Queue priority (lower = more urgent).
        priority: i32,
    },
    /// Park until another component calls [`Simulation::wake`].
    Suspend,
    /// Immediately reschedule at the current time, after already-queued
    /// events (a cooperative yield).
    Yield,
}

/// Result of one resumption of a [`Coroutine`].
#[derive(Debug)]
pub enum Step {
    /// The process blocks on the given effect.
    Wait(Effect),
    /// The process has finished and will be dropped.
    Done,
}

/// A cooperative simulation process.
///
/// Implementations are state machines: keep an explicit `state` enum field,
/// advance it in `resume`, and yield the effect the new state waits on.
pub trait Coroutine: Send {
    /// Advances the process. Called once at spawn time and then once per
    /// completed effect.
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step;

    /// Optional human-readable label used in traces.
    fn label(&self) -> &str {
        "process"
    }
}

/// The kernel-side view handed to a process while it runs.
///
/// `Ctx` exposes read-only queries (time, container levels), the simulation's
/// RNG, tracing, and the ability to spawn further processes. All *blocking*
/// interactions go through the yielded [`Effect`] instead.
pub struct Ctx<'a> {
    pub(crate) sim: &'a mut Simulation,
    pub(crate) pid: ProcessId,
}

impl Ctx<'_> {
    /// Current simulation time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.sim.now()
    }

    /// The id of the running process.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current level of a container.
    #[inline]
    pub fn level(&self, c: ContainerId) -> u64 {
        self.sim.container(c).level()
    }

    /// Capacity of a container.
    #[inline]
    pub fn capacity(&self, c: ContainerId) -> u64 {
        self.sim.container(c).capacity()
    }

    /// Instantaneous busy fraction of a container: `1 - level/capacity`.
    #[inline]
    pub fn busy_fraction(&self, c: ContainerId) -> f64 {
        let cont = self.sim.container(c);
        if cont.capacity() == 0 {
            0.0
        } else {
            1.0 - cont.level() as f64 / cont.capacity() as f64
        }
    }

    /// Time-weighted mean utilisation of a container since t = 0.
    #[inline]
    pub fn mean_utilization(&self, c: ContainerId) -> f64 {
        let now = self.sim.now();
        self.sim.container(c).mean_utilization(now)
    }

    /// Mutable access to the simulation's root RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256StarStar {
        self.sim.rng()
    }

    /// Spawns a child process, scheduled to start at the current time.
    pub fn spawn(&mut self, co: Box<dyn Coroutine>) -> ProcessId {
        self.sim.spawn(co)
    }

    /// Spawns a child process that starts after `delay` seconds.
    pub fn spawn_after(&mut self, delay: f64, co: Box<dyn Coroutine>) -> ProcessId {
        self.sim.spawn_after(delay, co)
    }

    /// Wakes a process parked on [`Effect::Suspend`].
    pub fn wake(&mut self, pid: ProcessId) {
        self.sim.wake(pid);
    }

    /// Wakes several suspended processes in slice order. The order is part
    /// of the contract: wakes enqueue resume events at the current time, so
    /// callers fanning out to many waiters (e.g. a router finalising every
    /// shard scheduler at once) get a deterministic resume sequence.
    pub fn wake_many(&mut self, pids: &[ProcessId]) {
        for &pid in pids {
            self.sim.wake(pid);
        }
    }

    /// Interrupts another process: cancels its current wait (timeout,
    /// container request, or suspension) and reschedules it at the current
    /// time with its interrupted flag set. See [`Simulation::interrupt`].
    pub fn interrupt(&mut self, pid: ProcessId) -> bool {
        self.sim.interrupt(pid)
    }

    /// Terminates another process immediately (drops its body, cancels any
    /// queued request; held units are the killer's to return). Returns
    /// `false` if it had already finished. See [`Simulation::kill`].
    pub fn kill(&mut self, pid: ProcessId) -> bool {
        self.sim.kill(pid)
    }

    /// Whether this process's last wait was cut short by
    /// [`Simulation::interrupt`]. Reading does not clear the flag; use
    /// [`Ctx::take_interrupted`] for consume-on-read semantics.
    #[inline]
    pub fn interrupted(&self) -> bool {
        self.sim.interrupted(self.pid)
    }

    /// Reads **and clears** this process's interrupted flag. Call at the
    /// top of `resume` after any wait that an interrupter might target:
    /// `true` means the wait did not complete normally (a cancelled
    /// timeout slept short; a cancelled request acquired nothing).
    #[inline]
    pub fn take_interrupted(&mut self) -> bool {
        self.sim.take_interrupted(self.pid)
    }

    /// Atomically withdraws `parts` from several containers **without
    /// blocking**: if every container can supply its amount right now, the
    /// withdrawal happens and `true` is returned; otherwise nothing changes.
    ///
    /// This is the primitive for *scheduler-style* components that keep
    /// their own queue discipline instead of the containers' FIFO queues.
    pub fn try_withdraw_many(&mut self, parts: &[(ContainerId, u64)]) -> bool {
        let ok = parts
            .iter()
            .all(|&(c, amt)| self.sim.container(c).can_get(amt));
        if ok {
            for &(c, amt) in parts {
                if amt > 0 {
                    self.sim.withdraw(c, amt);
                }
            }
        }
        ok
    }

    /// Deposits `parts` into several containers immediately (never blocks;
    /// panics on overflow, which indicates a release/acquire imbalance).
    pub fn deposit_many(&mut self, parts: &[(ContainerId, u64)]) {
        for &(c, amt) in parts {
            if amt > 0 {
                self.sim.deposit(c, amt);
            }
        }
    }

    /// Emits a trace record (no-op unless tracing is enabled).
    pub fn trace(&mut self, kind: TraceKind) {
        let now = self.sim.now();
        let pid = self.pid;
        self.sim.push_trace(TraceRecord {
            time: now,
            pid: Some(pid),
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let pid = ProcessId::new(7, 3);
        assert_eq!(pid.index(), 7);
        assert_eq!(pid.generation(), 3);
        assert_eq!(ProcessId::from_raw(pid.as_raw()), pid);
        // Different generations of the same slot are distinct handles.
        assert_ne!(ProcessId::new(7, 3), ProcessId::new(7, 4));
    }

    #[test]
    fn effect_equality() {
        assert_eq!(Effect::Timeout(1.0), Effect::Timeout(1.0));
        assert_ne!(Effect::Timeout(1.0), Effect::Yield);
    }
}
