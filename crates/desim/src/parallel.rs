//! Parallel execution of independent simulations.
//!
//! Discrete-event simulations are inherently sequential *inside* one run,
//! but parameter sweeps and Monte-Carlo replications are embarrassingly
//! parallel *across* runs. This module provides a small scoped-thread
//! work-distribution helper (no `unsafe`, no global pool, data-race freedom
//! guaranteed by `std::thread::scope`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, running on up to `threads` OS threads, and
/// returns the results in input order.
///
/// Work is distributed dynamically via an atomic cursor, so uneven item
/// costs (e.g. different strategy runtimes) balance automatically.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move into per-index slots; results come back into slots too.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("input slot taken twice");
                let out = f(item);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });

    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result slot"))
        .collect()
}

/// Applies `f(index, &mut item)` to every slot of `items`, striping the
/// slots statically over up to `threads` scoped OS threads (slot `i` runs
/// on thread `i % threads`).
///
/// This is the fork-join primitive behind the multi-worker PPO update
/// phase: each slot is a preallocated per-shard scratch + gradient slab, so
/// unlike [`par_map`] nothing is moved, boxed or locked — the only
/// per-call costs are the thread spawns and one small `Vec` per thread.
/// With `threads <= 1` (or a single item) everything runs inline on the
/// caller's thread — no spawns, byte-identical scheduling to a plain loop.
///
/// Striping is static, so *which* thread runs a slot is deterministic too;
/// but callers must not rely on cross-slot ordering — correctness (and the
/// determinism contract of the update phase) comes from each slot writing
/// only to its own item, with any reduction done by the caller afterwards
/// in slot order.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        buckets[i % threads].push((i, item));
    }
    let f = &f;
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for (i, item) in bucket {
                    f(i, item);
                }
            });
        }
    });
}

/// Runs `n` seeded replications of `f` in parallel and collects results in
/// replication order. `f` receives the replication index; derive seeds from
/// it for reproducibility.
pub fn par_replicate<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map((0..n).collect(), threads, f)
}

/// A reasonable default parallelism level: available cores, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(xs.clone(), 8, |x| x * x);
        let expected: Vec<u64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(ys, expected);
    }

    #[test]
    fn par_map_empty() {
        let ys: Vec<u64> = par_map(Vec::<u64>::new(), 4, |x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn par_map_single_thread_path() {
        let ys = par_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(ys, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_more_threads_than_items() {
        let ys = par_map(vec![5], 64, |x| x * 2);
        assert_eq!(ys, vec![10]);
    }

    #[test]
    fn par_replicate_deterministic_per_index() {
        // Each replication runs a seeded simulation; results must be
        // independent of thread interleaving.
        let run = |threads| {
            par_replicate(16, threads, |rep| {
                let mut rng = crate::rng::Xoshiro256StarStar::new(1000 + rep as u64);
                (0..100).map(|_| rng.next_u64() & 0xFF).sum::<u64>()
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn par_for_each_mut_touches_every_slot_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut slots: Vec<u64> = (0..37).collect();
            par_for_each_mut(&mut slots, threads, |i, v| {
                assert_eq!(*v, i as u64);
                *v = *v * 2 + 1;
            });
            let expected: Vec<u64> = (0..37).map(|x| x * 2 + 1).collect();
            assert_eq!(slots, expected, "{threads} threads");
        }
    }

    #[test]
    fn par_for_each_mut_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![7u32];
        par_for_each_mut(&mut one, 4, |_, v| *v += 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn par_map_uneven_workloads_balance() {
        // Just a smoke test that very uneven costs still complete.
        let xs: Vec<u64> = (0..64).collect();
        let ys = par_map(xs, 4, |x| {
            let spin = if x % 7 == 0 { 10_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        assert_eq!(ys.len(), 64);
    }
}
