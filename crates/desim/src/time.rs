//! Simulation time: a totally ordered, finite `f64` wrapper.

use std::cmp::Ordering;
use std::fmt;

/// A point in simulated time, in seconds.
///
/// `SimTime` is a thin wrapper over `f64` that guarantees finiteness and
/// provides a total order (via [`f64::total_cmp`]) so it can key the event
/// heap. Construction from a non-finite float panics: a NaN deadline is a
/// logic error in the model, not a recoverable condition.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the epoch of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point, panicking on NaN/±∞ or negative values.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// The value in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Advances by `dt` seconds (panics if `dt` is negative or non-finite).
    #[inline]
    pub fn after(self, dt: f64) -> Self {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "time increment must be finite and non-negative, got {dt}"
        );
        SimTime(self.0 + dt)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_monotone() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn after_advances() {
        let t = SimTime::ZERO.after(2.5).after(0.5);
        assert_eq!(t.seconds(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_increment_rejected() {
        let _ = SimTime::ZERO.after(-1.0);
    }

    #[test]
    fn zero_increment_ok() {
        assert_eq!(SimTime::ZERO.after(0.0), SimTime::ZERO);
    }
}
