//! Probability distributions sampled from [`crate::Xoshiro256StarStar`].
//!
//! Implemented in-tree (rather than via `rand_distr`) so that simulation
//! streams are bit-reproducible regardless of dependency versions. All
//! samplers take `&mut Xoshiro256StarStar` explicitly.

use crate::rng::Xoshiro256StarStar;

/// Standard normal via the Box–Muller transform (the second variate is
/// discarded for simplicity; samplers here are not on any hot path).
pub fn standard_normal(rng: &mut Xoshiro256StarStar) -> f64 {
    // Avoid ln(0).
    let mut u1 = rng.next_f64();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.next_f64();
    }
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal(rng: &mut Xoshiro256StarStar, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "std_dev must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Normal truncated to `[lo, hi]` by rejection (assumes the interval has
/// non-trivial mass; falls back to clamping after 1000 rejections).
pub fn truncated_normal(
    rng: &mut Xoshiro256StarStar,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid truncation interval");
    for _ in 0..1000 {
        let x = normal(rng, mean, std_dev);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

/// Log-normal: `exp(N(mu, sigma))`.
pub fn log_normal(rng: &mut Xoshiro256StarStar, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential with rate `lambda` (mean `1/lambda`).
pub fn exponential(rng: &mut Xoshiro256StarStar, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let mut u = rng.next_f64();
    while u <= f64::MIN_POSITIVE {
        u = rng.next_f64();
    }
    -u.ln() / lambda
}

/// Poisson-distributed count with the given mean.
///
/// Uses Knuth's product method for small means and a normal approximation
/// with continuity correction for large means (λ > 30), which is ample for
/// arrival batching in this simulator.
pub fn poisson(rng: &mut Xoshiro256StarStar, mean: f64) -> u64 {
    assert!(mean >= 0.0, "mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Bernoulli trial with success probability `p`.
pub fn bernoulli(rng: &mut Xoshiro256StarStar, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    rng.next_f64() < p
}

/// Samples an index from unnormalised non-negative weights.
pub fn weighted_index(rng: &mut Xoshiro256StarStar, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().copied().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must have positive finite sum"
    );
    let mut target = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w >= 0.0, "weights must be non-negative");
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(20240601)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let mut w = Welford::new();
        for _ in 0..200_000 {
            w.push(normal(&mut r, 3.0, 2.0));
        }
        assert!((w.mean() - 3.0).abs() < 0.02, "mean {}", w.mean());
        assert!((w.std_dev() - 2.0).abs() < 0.02, "std {}", w.std_dev());
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = truncated_normal(&mut r, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let mut w = Welford::new();
        for _ in 0..200_000 {
            w.push(exponential(&mut r, 0.25));
        }
        assert!((w.mean() - 4.0).abs() < 0.05, "mean {}", w.mean());
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.push(poisson(&mut r, 3.5) as f64);
        }
        assert!((w.mean() - 3.5).abs() < 0.05, "mean {}", w.mean());
        assert!((w.variance() - 3.5).abs() < 0.15, "var {}", w.variance());
    }

    #[test]
    fn poisson_large_mean_normal_approx() {
        let mut r = rng();
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.push(poisson(&mut r, 100.0) as f64);
        }
        assert!((w.mean() - 100.0).abs() < 0.5, "mean {}", w.mean());
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn weighted_index_proportions() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 100_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn weighted_index_single() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn weighted_index_zero_sum_panics() {
        let mut r = rng();
        weighted_index(&mut r, &[0.0, 0.0]);
    }
}
