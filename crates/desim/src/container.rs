//! Counted resource containers with FIFO blocking semantics.
//!
//! A [`Container`] models a pool of identical units — for the quantum cloud,
//! the free physical qubits of one QPU (`device.container.level` in the
//! paper). Processes take units with [`crate::Effect::Get`] /
//! [`crate::Effect::GetAll`] and return them with `Put`/`PutAll`.
//!
//! The container itself only stores state; the wait queues and grant logic
//! live in the kernel so that multi-container atomic requests can be
//! coordinated across containers.

use crate::stats::TimeWeighted;

/// Identifier of a container within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub(crate) u32);

impl ContainerId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A pool of `capacity` identical units, `level` of which are available.
#[derive(Debug, Clone)]
pub struct Container {
    capacity: u64,
    level: u64,
    /// Time-weighted statistics over the level, for utilization reporting.
    pub(crate) level_stats: TimeWeighted,
    label: String,
}

impl Container {
    /// Creates a container with the given capacity and initial level.
    pub fn new(label: impl Into<String>, capacity: u64, initial_level: u64) -> Self {
        assert!(
            initial_level <= capacity,
            "initial level {initial_level} exceeds capacity {capacity}"
        );
        Container {
            capacity,
            level: initial_level,
            level_stats: TimeWeighted::new(0.0, initial_level as f64),
            label: label.into(),
        }
    }

    /// Human-readable label.
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total capacity in units.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently available units.
    #[inline]
    pub fn level(&self) -> u64 {
        self.level
    }

    /// Units currently in use (`capacity - level`).
    #[inline]
    pub fn in_use(&self) -> u64 {
        self.capacity - self.level
    }

    /// Instantaneous busy fraction in `[0, 1]`.
    #[inline]
    pub fn busy_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.in_use() as f64 / self.capacity as f64
        }
    }

    /// Time-weighted mean level since the simulation started.
    #[inline]
    pub fn mean_level(&self, now: f64) -> f64 {
        self.level_stats.mean_at(now)
    }

    /// Time-weighted mean *utilization* (busy fraction) since t=0.
    pub fn mean_utilization(&self, now: f64) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            1.0 - self.mean_level(now) / self.capacity as f64
        }
    }

    /// Whether a get of `amount` could be satisfied right now.
    #[inline]
    pub fn can_get(&self, amount: u64) -> bool {
        amount <= self.level
    }

    /// Whether a put of `amount` could be absorbed right now.
    #[inline]
    pub fn can_put(&self, amount: u64) -> bool {
        self.level + amount <= self.capacity
    }

    /// Applies a grant. `delta > 0` puts units, `delta < 0` takes units.
    /// Panics on violation — grants are only issued after `can_get`/`can_put`
    /// checks, so a violation is a kernel bug.
    pub(crate) fn apply(&mut self, now: f64, delta: i64) {
        if delta >= 0 {
            let d = delta as u64;
            assert!(self.can_put(d), "container overflow (kernel bug)");
            self.level += d;
        } else {
            let d = (-delta) as u64;
            assert!(self.can_get(d), "container underflow (kernel bug)");
            self.level -= d;
        }
        self.level_stats.record(now, self.level as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_container_has_full_level() {
        let c = Container::new("qpu", 127, 127);
        assert_eq!(c.capacity(), 127);
        assert_eq!(c.level(), 127);
        assert_eq!(c.in_use(), 0);
        assert_eq!(c.busy_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn initial_level_above_capacity_panics() {
        let _ = Container::new("bad", 10, 11);
    }

    #[test]
    fn apply_tracks_level_and_stats() {
        let mut c = Container::new("qpu", 100, 100);
        c.apply(1.0, -30);
        assert_eq!(c.level(), 70);
        assert_eq!(c.in_use(), 30);
        c.apply(2.0, 30);
        assert_eq!(c.level(), 100);
        // Mean level over [0,2]: 100 for 1s, then 70 for 1s = 85.
        assert!((c.mean_level(2.0) - 85.0).abs() < 1e-9);
        assert!((c.mean_utilization(2.0) - 0.15).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut c = Container::new("qpu", 10, 5);
        c.apply(0.0, -6);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut c = Container::new("qpu", 10, 5);
        c.apply(0.0, 6);
    }

    #[test]
    fn busy_fraction_zero_capacity() {
        let c = Container::new("null", 0, 0);
        assert_eq!(c.busy_fraction(), 0.0);
        assert_eq!(c.mean_utilization(10.0), 0.0);
    }
}
