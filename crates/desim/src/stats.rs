//! Streaming statistics: time-weighted means, Welford accumulators and
//! fixed-bin histograms used by the record manager and the bench harness.

use serde::{Deserialize, Serialize};

/// Time-weighted statistic over a piecewise-constant signal, e.g. a
/// container level. Records `(t, value)` change points and integrates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    last_v: f64,
    integral: f64,
    min: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking at time `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            min: v0,
            max: v0,
        }
    }

    /// Records that the signal changed to `v` at time `t` (must be ≥ the
    /// previous change time).
    pub fn record(&mut self, t: f64, v: f64) {
        debug_assert!(
            t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        self.integral += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The time-weighted mean over `[t0, now]`.
    pub fn mean_at(&self, now: f64) -> f64 {
        let span = now - self.start;
        if span <= 0.0 {
            return self.last_v;
        }
        (self.integral + self.last_v * (now - self.last_t)) / span
    }

    /// Minimum value seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current (latest) value.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-range, fixed-bin histogram (used for the Fig. 6 fidelity
/// distributions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` equal bins.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        0.5 * (a + b)
    }

    /// Index of the fullest bin (ties broken toward lower index).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        best
    }

    /// Renders a simple ASCII bar chart, `width` characters at the mode.
    pub fn ascii(&self, width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(peak as usize).min(width));
            out.push_str(&format!("[{a:8.4},{b:8.4}) {c:>7} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_piecewise() {
        let mut tw = TimeWeighted::new(0.0, 10.0);
        tw.record(2.0, 20.0); // 10 for 2s
        tw.record(4.0, 0.0); // 20 for 2s
                             // mean over [0,8]: (10*2 + 20*2 + 0*4)/8 = 7.5
        assert!((tw.mean_at(8.0) - 7.5).abs() < 1e-12);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.max(), 20.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_empty_span() {
        let tw = TimeWeighted::new(5.0, 3.0);
        assert_eq!(tw.mean_at(5.0), 3.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 3.5).abs() < 1e-12);
        let naive_var = xs.iter().map(|x| (x - 3.5) * (x - 3.5)).sum::<f64>() / xs.len() as f64;
        assert!((w.variance() - naive_var).abs() < 1e-12);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 6.0);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 5.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(-0.1);
        h.push(0.05);
        h.push(0.05);
        h.push(0.95);
        h.push(1.0);
        h.push(2.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.mode_bin(), 0);
        let (a, b) = h.bin_edges(0);
        assert!((a - 0.0).abs() < 1e-12 && (b - 0.1).abs() < 1e-12);
        assert!((h.bin_center(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn histogram_ascii_renders() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for _ in 0..8 {
            h.push(0.3);
        }
        h.push(0.8);
        let art = h.ascii(20);
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), 4);
    }
}
