//! The simulation kernel: slab-allocated processes and events, the event
//! heap, and the FIFO grant machinery for (multi-)container requests.
//!
//! # Slab/handle model
//!
//! The kernel stores processes and scheduled resume events in `Vec`-backed
//! slabs with free lists, so a long run (100k+ jobs) reuses a small pool of
//! slots instead of growing without bound. Handles ([`ProcessId`],
//! [`EventId`]) are `(index, generation)` pairs:
//!
//! * the **index** names the slot in the slab;
//! * the **generation** is bumped every time the slot is freed, so a handle
//!   from a previous occupant never resolves to the new one.
//!
//! A stale [`ProcessId`] (its process finished, was killed, or its slot was
//! reused) degrades safely everywhere: [`Simulation::wake`],
//! [`Simulation::interrupt`] and [`Simulation::kill`] return `false`,
//! [`Simulation::is_done`] returns `true`. This is what makes `kill` safe
//! in the presence of slot reuse — a registry holding a pid of an
//! already-finished process cannot accidentally kill its successor.
//!
//! The event heap is a `BinaryHeap` of plain `(time, seq, EventId)`
//! entries. Cancelling a pending resume (interrupt of a sleeping process,
//! kill) just frees the event slot; the heap entry stays behind and is
//! recognised as stale by its generation when popped. Each process has at
//! most one pending resume event (`pending_ev`), so cancellation is O(1).
//!
//! Request parts ride in a [`PartsList`] — a small-vector that keeps the
//! common one- and two-container requests inline, so the blocking path
//! does not allocate.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::container::{Container, ContainerId};
use crate::process::{Coroutine, Ctx, Effect, ProcessId, Step};
use crate::rng::Xoshiro256StarStar;
use crate::time::SimTime;
use crate::trace::{TraceBuffer, TraceKind, TraceRecord};

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Trace buffer capacity in records; 0 disables tracing.
    pub trace_capacity: usize,
    /// Hard cap on processed events, to catch accidental infinite loops.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace_capacity: 0,
            max_events: u64::MAX,
        }
    }
}

/// Generation-checked handle to a scheduled resume event.
///
/// Events live in a slab inside the kernel; an `EventId` is the
/// `(slot, generation)` pair identifying one scheduled resume. When the
/// event fires or is cancelled its slot is freed (generation bumped), so
/// any heap entry or handle still naming the old generation is recognised
/// as stale and discarded. The type is exposed for diagnostics and for
/// mirroring the kernel's handle discipline in embedding code; there is no
/// public API that consumes one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

impl EventId {
    /// The slab slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The slot generation this handle was issued under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

/// One slot of the event slab: which process the event resumes, plus the
/// slot's current generation (bumped on free, so stale heap entries and
/// handles never match).
#[derive(Debug, Clone, Copy)]
struct EventSlot {
    gen: u32,
    pid: ProcessId,
}

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has a resume event in the heap (or is being resumed right now).
    Scheduled,
    /// Blocked on a queued container request.
    WaitingReq(ReqId),
    /// Parked on [`Effect::Suspend`] until woken.
    Suspended,
    /// Finished; the slot is on the free list awaiting reuse.
    Done,
}

struct ProcSlot {
    co: Option<Box<dyn Coroutine>>,
    state: ProcState,
    /// Slot generation: bumped when the process finishes or is killed and
    /// the slot returns to the free list. Handles carry the generation they
    /// were issued under; a mismatch marks the handle stale.
    gen: u32,
    /// Set by [`Simulation::interrupt`]; cleared by `take_interrupted`.
    interrupted: bool,
    /// The slab slot of this process's pending resume event, if any. Kept
    /// in lock-step with `state == Scheduled`; cancelling a wait frees the
    /// event here, which is what invalidates the heap entry.
    pending_ev: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReqId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqDir {
    Get,
    Put,
}

/// Small-vector of `(container, amount)` request parts: the common one-
/// and two-container requests stay inline, larger multi-container
/// requests spill to the heap. Keeps the request submission path
/// allocation-free for `Get`/`Put`/`GetPri`.
#[derive(Debug)]
enum PartsList {
    Inline {
        buf: [(ContainerId, u64); 2],
        len: u8,
    },
    Heap(Vec<(ContainerId, u64)>),
}

impl PartsList {
    #[inline]
    fn one(container: ContainerId, amount: u64) -> Self {
        PartsList::Inline {
            buf: [(container, amount), (container, 0)],
            len: 1,
        }
    }

    #[inline]
    fn from_vec(v: Vec<(ContainerId, u64)>) -> Self {
        match v.as_slice() {
            [] => PartsList::Inline {
                buf: [(ContainerId(0), 0); 2],
                len: 0,
            },
            &[a] => PartsList::Inline {
                buf: [a, a],
                len: 1,
            },
            &[a, b] => PartsList::Inline {
                buf: [a, b],
                len: 2,
            },
            _ => PartsList::Heap(v),
        }
    }

    #[inline]
    fn as_slice(&self) -> &[(ContainerId, u64)] {
        match self {
            PartsList::Inline { buf, len } => &buf[..*len as usize],
            PartsList::Heap(v) => v.as_slice(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops zero amounts, merges duplicate containers, sorts by id —
    /// the normal form `submit_request` relies on.
    fn normalize(&mut self) {
        match self {
            PartsList::Inline { buf, len } => {
                let n = *len as usize;
                let mut tmp = *buf;
                let mut m = 0usize;
                for i in 0..n {
                    if tmp[i].1 > 0 {
                        tmp[m] = tmp[i];
                        m += 1;
                    }
                }
                if m == 2 {
                    if tmp[0].0 > tmp[1].0 {
                        tmp.swap(0, 1);
                    }
                    if tmp[0].0 == tmp[1].0 {
                        tmp[0].1 += tmp[1].1;
                        m = 1;
                    }
                }
                *buf = tmp;
                *len = m as u8;
            }
            PartsList::Heap(v) => {
                v.retain(|&(_, amt)| amt > 0);
                v.sort_by_key(|&(c, _)| c);
                v.dedup_by(|b, a| {
                    if a.0 == b.0 {
                        a.1 += b.1;
                        true
                    } else {
                        false
                    }
                });
            }
        }
    }
}

#[derive(Debug)]
struct PendingReq {
    pid: ProcessId,
    dir: ReqDir,
    /// Sorted by container id, amounts > 0, no duplicates.
    parts: PartsList,
    /// Queue priority: lower is served first; FIFO within a priority via
    /// `order`. The comparison key `(priority, order)` is *global*, so a
    /// multi-container request that is minimal overall is at the head of
    /// every queue it joined — the same progress argument as pure FIFO.
    priority: i32,
    /// Global submission counter (FIFO tiebreak).
    order: u64,
}

/// A heap entry naming a slab event. Ordered by `(time, seq)` so
/// simultaneous events fire in insertion order (deterministic). The event
/// slot's generation detects cancellation: a mismatch means the event was
/// freed (interrupt/kill) and the entry is skipped.
#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    ev: u32,
    gen: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic process-interaction discrete-event simulation.
///
/// See the [crate docs](crate) and the [module docs](self) for the
/// programming and slab/handle model.
pub struct Simulation {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    procs: Vec<ProcSlot>,
    /// Free-listed process slots (retired, generation already bumped).
    proc_free: Vec<u32>,
    /// Event slab; entries are reused across the run.
    events: Vec<EventSlot>,
    event_free: Vec<u32>,
    containers: Vec<Container>,
    reqs: Vec<Option<PendingReq>>,
    req_free: Vec<u32>,
    get_queues: Vec<VecDeque<ReqId>>,
    put_queues: Vec<VecDeque<ReqId>>,
    rng: Xoshiro256StarStar,
    trace: TraceBuffer,
    events_processed: u64,
    live_processes: usize,
    config: SimConfig,
    /// Scratch worklist for grant propagation (reused across calls).
    dirty_scratch: Vec<ContainerId>,
    /// Global request submission counter (FIFO tiebreak within a priority).
    req_order: u64,
}

impl Simulation {
    /// Creates an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, SimConfig::default())
    }

    /// Creates an empty simulation with explicit configuration.
    pub fn with_config(seed: u64, config: SimConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::with_capacity(1024),
            procs: Vec::with_capacity(256),
            proc_free: Vec::new(),
            events: Vec::with_capacity(1024),
            event_free: Vec::new(),
            containers: Vec::new(),
            reqs: Vec::new(),
            req_free: Vec::new(),
            get_queues: Vec::new(),
            put_queues: Vec::new(),
            rng: Xoshiro256StarStar::new(seed),
            trace: TraceBuffer::new(config.trace_capacity),
            events_processed: 0,
            live_processes: 0,
            config,
            dirty_scratch: Vec::new(),
            req_order: 0,
        }
    }

    /// Current simulation time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now.seconds()
    }

    /// Number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of processes that have been spawned and not yet finished.
    #[inline]
    pub fn live_processes(&self) -> usize {
        self.live_processes
    }

    /// Size of the process slab (high-water mark of concurrently live
    /// processes, not the total ever spawned — retired slots are reused).
    #[inline]
    pub fn process_slots(&self) -> usize {
        self.procs.len()
    }

    /// The kernel RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    /// Collected trace records (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceRecord] {
        self.trace.records()
    }

    pub(crate) fn push_trace(&mut self, rec: TraceRecord) {
        self.trace.push(rec);
    }

    // ------------------------------------------------------------------
    // Slab plumbing
    // ------------------------------------------------------------------

    /// The slot behind a handle, if the handle is still current.
    #[inline]
    fn live(&self, pid: ProcessId) -> Option<&ProcSlot> {
        self.procs
            .get(pid.index())
            .filter(|s| s.gen == pid.generation())
    }

    /// Allocates a process slot (reusing a retired one when available).
    fn alloc_proc(&mut self, co: Box<dyn Coroutine>) -> ProcessId {
        if let Some(idx) = self.proc_free.pop() {
            let slot = &mut self.procs[idx as usize];
            debug_assert!(slot.co.is_none() && slot.pending_ev.is_none());
            slot.co = Some(co);
            slot.state = ProcState::Scheduled;
            slot.interrupted = false;
            ProcessId::new(idx, slot.gen)
        } else {
            let idx = self.procs.len() as u32;
            self.procs.push(ProcSlot {
                co: Some(co),
                state: ProcState::Scheduled,
                gen: 0,
                interrupted: false,
                pending_ev: None,
            });
            ProcessId::new(idx, 0)
        }
    }

    /// Frees an event slot: bumps its generation (staling any heap entry
    /// or handle that names the old one) and returns it to the free list.
    fn free_event(&mut self, ev: u32) {
        let slot = &mut self.events[ev as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.event_free.push(ev);
    }

    // ------------------------------------------------------------------
    // Containers
    // ------------------------------------------------------------------

    /// Registers a container and returns its id.
    pub fn add_container(
        &mut self,
        label: impl Into<String>,
        capacity: u64,
        initial_level: u64,
    ) -> ContainerId {
        let id = ContainerId(self.containers.len() as u32);
        self.containers
            .push(Container::new(label, capacity, initial_level));
        self.get_queues.push(VecDeque::new());
        self.put_queues.push(VecDeque::new());
        id
    }

    /// Read access to a container.
    #[inline]
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.index()]
    }

    /// Number of registered containers.
    #[inline]
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Instantly deposits units into a container from outside any process
    /// (e.g. initial provisioning), then propagates grants.
    pub fn deposit(&mut self, id: ContainerId, amount: u64) {
        let now = self.now();
        self.containers[id.index()].apply(now, amount as i64);
        self.dirty_scratch.push(id);
        self.drain_queues();
    }

    /// Instantly withdraws units (panics if unavailable — external
    /// withdrawal never blocks).
    pub fn withdraw(&mut self, id: ContainerId, amount: u64) {
        let now = self.now();
        self.containers[id.index()].apply(now, -(amount as i64));
        self.dirty_scratch.push(id);
        self.drain_queues();
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Spawns a process, scheduled to run at the current time (after any
    /// events already queued for this instant).
    pub fn spawn(&mut self, co: Box<dyn Coroutine>) -> ProcessId {
        self.spawn_after(0.0, co)
    }

    /// Spawns a process that first runs `delay` seconds from now. The slot
    /// may be one reused from a finished process; the returned handle
    /// carries the slot's new generation.
    pub fn spawn_after(&mut self, delay: f64, co: Box<dyn Coroutine>) -> ProcessId {
        let pid = self.alloc_proc(co);
        self.live_processes += 1;
        let t = self.now.after(delay);
        self.push_event(t, pid);
        if self.trace.enabled() {
            let time = self.now();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Spawn,
            });
        }
        pid
    }

    /// Wakes a process parked on [`Effect::Suspend`]. Returns `true` if the
    /// process was suspended and is now scheduled. Stale handles (the
    /// process finished, or its slot was reused) are a safe no-op.
    pub fn wake(&mut self, pid: ProcessId) -> bool {
        let Some(slot) = self.live(pid) else {
            return false;
        };
        if slot.state == ProcState::Suspended {
            self.procs[pid.index()].state = ProcState::Scheduled;
            let t = self.now;
            self.push_event(t, pid);
            true
        } else {
            false
        }
    }

    /// Whether the given process has finished. Stale handles answer `true`:
    /// the incarnation the handle names is gone even if its slot now hosts
    /// a different process.
    pub fn is_done(&self, pid: ProcessId) -> bool {
        match self.live(pid) {
            Some(slot) => slot.state == ProcState::Done,
            None => true,
        }
    }

    /// Interrupts a process: cancels whatever it is currently waiting on
    /// and reschedules it at the current time with its interrupted flag
    /// set. The process observes the cut-short wait via
    /// [`Ctx::take_interrupted`](crate::process::Ctx::take_interrupted):
    ///
    /// * blocked on [`Effect::Timeout`] — the sleep ends now;
    /// * blocked on a container request — the request is cancelled (nothing
    ///   was acquired) and removed from all queues;
    /// * parked on [`Effect::Suspend`] — equivalent to [`wake`](Self::wake)
    ///   plus the flag.
    ///
    /// Returns `false` (no-op) if the process has already finished or the
    /// handle is stale. Interrupting a process that is *scheduled but not
    /// waiting* (e.g. its grant already fired this instant) still sets the
    /// flag — interrupters should target processes whose waiting state they
    /// control, as in the watchdog/reneging pattern.
    pub fn interrupt(&mut self, pid: ProcessId) -> bool {
        let Some(slot) = self.live(pid) else {
            return false;
        };
        match slot.state {
            ProcState::Done => false,
            ProcState::Scheduled => {
                // `push_event` frees any pending resume event (staling its
                // heap entry) before scheduling the replacement.
                self.procs[pid.index()].interrupted = true;
                let t = self.now;
                self.push_event(t, pid);
                true
            }
            ProcState::Suspended => {
                let slot = &mut self.procs[pid.index()];
                slot.interrupted = true;
                slot.state = ProcState::Scheduled;
                let t = self.now;
                self.push_event(t, pid);
                true
            }
            ProcState::WaitingReq(rid) => {
                self.cancel_request(rid);
                let slot = &mut self.procs[pid.index()];
                slot.interrupted = true;
                slot.state = ProcState::Scheduled;
                let t = self.now;
                self.push_event(t, pid);
                true
            }
        }
    }

    /// Terminates a process immediately, whatever it is doing. The body is
    /// dropped (releasing any shared state it held), a queued container
    /// request is cancelled (nothing was acquired), any pending resume
    /// event is freed, and the slot returns to the pool for reuse — the
    /// handle goes stale. Units the process already withdrew are **not**
    /// returned — the killer owns that cleanup (deposit them back
    /// explicitly), exactly as with an OS-level `kill -9`.
    ///
    /// Returns `false` (no-op) if the process had already finished or the
    /// handle is stale — slot reuse can never redirect a kill at the
    /// slot's next occupant.
    pub fn kill(&mut self, pid: ProcessId) -> bool {
        let Some(slot) = self.live(pid) else {
            return false;
        };
        match slot.state {
            ProcState::Done => false,
            ProcState::WaitingReq(rid) => {
                self.cancel_request(rid);
                self.retire(pid);
                true
            }
            ProcState::Scheduled | ProcState::Suspended => {
                self.retire(pid);
                true
            }
        }
    }

    /// Retires a live process: frees its pending event, drops its body,
    /// bumps the slot generation (staling every outstanding handle) and
    /// returns the slot to the free list.
    fn retire(&mut self, pid: ProcessId) {
        let idx = pid.index();
        if let Some(ev) = self.procs[idx].pending_ev.take() {
            self.free_event(ev);
        }
        let slot = &mut self.procs[idx];
        slot.state = ProcState::Done;
        slot.co = None;
        slot.interrupted = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.proc_free.push(idx as u32);
        self.live_processes -= 1;
        if self.trace.enabled() {
            let time = self.now();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Finish,
            });
        }
    }

    /// Whether `pid`'s interrupted flag is set (does not clear it). Stale
    /// handles answer `false`.
    #[inline]
    pub fn interrupted(&self, pid: ProcessId) -> bool {
        self.live(pid).is_some_and(|s| s.interrupted)
    }

    /// Reads and clears `pid`'s interrupted flag. Stale handles answer
    /// `false`.
    #[inline]
    pub fn take_interrupted(&mut self, pid: ProcessId) -> bool {
        if self.live(pid).is_none() {
            return false;
        }
        std::mem::take(&mut self.procs[pid.index()].interrupted)
    }

    /// Removes a queued request from every queue it joined and releases its
    /// slot. Successors may become grantable (the cancelled request might
    /// have been a blocked head), so grants are re-propagated.
    fn cancel_request(&mut self, rid: ReqId) {
        let req = self.reqs[rid.0 as usize]
            .take()
            .expect("cancelled request missing (kernel bug)");
        self.req_free.push(rid.0);
        for &(c, _) in req.parts.as_slice() {
            let q = match req.dir {
                ReqDir::Get => &mut self.get_queues[c.index()],
                ReqDir::Put => &mut self.put_queues[c.index()],
            };
            let pos = q
                .iter()
                .position(|&r| r == rid)
                .expect("request not in queue (kernel bug)");
            q.remove(pos);
            self.dirty_scratch.push(c);
        }
        self.drain_queues();
    }

    /// Schedules a resume event for `pid`, replacing (freeing) any pending
    /// one — a process has at most one resume event in flight.
    fn push_event(&mut self, time: SimTime, pid: ProcessId) {
        let idx = pid.index();
        if let Some(old) = self.procs[idx].pending_ev.take() {
            self.free_event(old);
        }
        let ev = if let Some(e) = self.event_free.pop() {
            self.events[e as usize].pid = pid;
            e
        } else {
            self.events.push(EventSlot { gen: 0, pid });
            (self.events.len() - 1) as u32
        };
        let gen = self.events[ev as usize].gen;
        self.procs[idx].pending_ev = Some(ev);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry { time, seq, ev, gen }));
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Processes a single event. Returns `false` when the heap is empty.
    /// Stale entries (their event slot was freed by an interrupt or kill)
    /// are discarded without advancing the clock; the call still returns
    /// `true`.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(entry)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "event heap not monotone");
        let slot = self.events[entry.ev as usize];
        if slot.gen != entry.gen {
            // Cancelled wait: the interrupt already queued a replacement.
            return true;
        }
        let pid = slot.pid;
        self.free_event(entry.ev);
        let pslot = &mut self.procs[pid.index()];
        debug_assert_eq!(pslot.gen, pid.generation(), "live event on a retired slot");
        debug_assert_eq!(pslot.pending_ev, Some(entry.ev));
        debug_assert_eq!(pslot.state, ProcState::Scheduled);
        pslot.pending_ev = None;
        self.now = entry.time;
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.config.max_events,
            "exceeded max_events = {} — runaway simulation?",
            self.config.max_events
        );
        self.run_process(pid);
        true
    }

    /// Runs until no events remain. Returns the final simulation time.
    pub fn run(&mut self) -> f64 {
        while self.step() {}
        self.now()
    }

    /// Runs until the next event would be after `t_end` (or the heap
    /// empties), then sets the clock to `t_end` if it was reached.
    pub fn run_until(&mut self, t_end: f64) -> f64 {
        let end = SimTime::new(t_end);
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time > end {
                self.now = end;
                break;
            }
            self.step();
        }
        if self.now < end && self.heap.is_empty() {
            // No more events; clock stays at last event time, which is the
            // conventional DES behaviour. Callers who want wall-alignment can
            // read the return value.
        }
        self.now()
    }

    /// Conservative epoch barrier: processes every event with time ≤
    /// `t_end` (inclusive), then pins the clock to **exactly** `t_end` —
    /// even when the heap drained first, and never backwards.
    ///
    /// This is the pause/resume primitive for running several kernels in
    /// bounded sim-time windows on separate OS threads: after each shard
    /// kernel returns from `run_epoch(t)` a coordinator may inspect shared
    /// state and [`wake`](Self::wake)/[`spawn`](Self::spawn) at the common
    /// instant `t`, and every kernel stamps those injected events with the
    /// same clock value regardless of where its own event stream ran dry.
    /// [`run_until`] cannot serve here: it leaves the clock at the last
    /// event time on an empty heap, so two shards paused at the "same"
    /// epoch would disagree about `now`.
    pub fn run_epoch(&mut self, t_end: f64) -> f64 {
        let end = SimTime::new(t_end);
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time > end {
                break;
            }
            self.step();
        }
        if self.now < end {
            self.now = end;
        }
        self.now()
    }

    /// Panics if any process is still blocked on a request or suspended.
    /// Call after [`run`](Self::run) to catch models that starve jobs.
    pub fn assert_quiescent(&self) {
        for (i, p) in self.procs.iter().enumerate() {
            match p.state {
                ProcState::WaitingReq(_) => {
                    panic!("process {i} still blocked on a container request at end of run")
                }
                ProcState::Suspended => {
                    panic!("process {i} still suspended at end of run")
                }
                _ => {}
            }
        }
    }

    /// Number of processes currently blocked on container requests.
    pub fn blocked_processes(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| matches!(p.state, ProcState::WaitingReq(_)))
            .count()
    }

    // ------------------------------------------------------------------
    // Process execution + effect handling
    // ------------------------------------------------------------------

    fn run_process(&mut self, pid: ProcessId) {
        loop {
            let idx = pid.index();
            let mut co = self.procs[idx]
                .co
                .take()
                .expect("process body missing (kernel bug)");
            let step = co.resume(&mut Ctx { sim: self, pid });
            // The body may have killed itself during resume — its slot was
            // retired (and possibly reused by a spawn). Only this
            // incarnation may write the body back.
            if self.procs[idx].gen != pid.generation() {
                return;
            }
            self.procs[idx].co = Some(co);

            match step {
                Step::Done => {
                    self.retire(pid);
                    return;
                }
                Step::Wait(effect) => {
                    if !self.handle_effect(pid, effect) {
                        // Blocked (or scheduled) — stop driving this process.
                        return;
                    }
                    // Effect completed synchronously: resume immediately.
                }
            }
        }
    }

    /// Applies an effect. Returns `true` if it completed synchronously and
    /// the process should be resumed immediately.
    fn handle_effect(&mut self, pid: ProcessId, effect: Effect) -> bool {
        match effect {
            Effect::Timeout(dt) => {
                let t = self.now.after(dt);
                self.procs[pid.index()].state = ProcState::Scheduled;
                self.push_event(t, pid);
                false
            }
            Effect::Yield => {
                let t = self.now;
                self.procs[pid.index()].state = ProcState::Scheduled;
                self.push_event(t, pid);
                false
            }
            Effect::Suspend => {
                self.procs[pid.index()].state = ProcState::Suspended;
                false
            }
            Effect::Get { container, amount } => {
                self.submit_request(pid, ReqDir::Get, PartsList::one(container, amount), 0)
            }
            Effect::Put { container, amount } => {
                self.submit_request(pid, ReqDir::Put, PartsList::one(container, amount), 0)
            }
            Effect::GetAll(parts) => {
                self.submit_request(pid, ReqDir::Get, PartsList::from_vec(parts), 0)
            }
            Effect::PutAll(parts) => {
                self.submit_request(pid, ReqDir::Put, PartsList::from_vec(parts), 0)
            }
            Effect::GetPri {
                container,
                amount,
                priority,
            } => self.submit_request(
                pid,
                ReqDir::Get,
                PartsList::one(container, amount),
                priority,
            ),
            Effect::GetAllPri { parts, priority } => {
                self.submit_request(pid, ReqDir::Get, PartsList::from_vec(parts), priority)
            }
        }
    }

    /// The `(priority, order)` service key of a queued request.
    fn req_key(&self, rid: ReqId) -> (i32, u64) {
        let req = self.reqs[rid.0 as usize]
            .as_ref()
            .expect("queued request missing (kernel bug)");
        (req.priority, req.order)
    }

    /// Normalises a request, grants it immediately when possible (only if
    /// no request with a smaller `(priority, order)` key is queued on any
    /// involved container — strict FIFO within a priority, overtaking
    /// across priorities), otherwise enqueues it in key order.
    fn submit_request(
        &mut self,
        pid: ProcessId,
        dir: ReqDir,
        mut parts: PartsList,
        priority: i32,
    ) -> bool {
        parts.normalize();
        for &(c, amt) in parts.as_slice() {
            assert!(
                c.index() < self.containers.len(),
                "request names unknown container {c:?}"
            );
            // A single request larger than the capacity can never be granted;
            // fail fast instead of blocking forever.
            assert!(
                amt <= self.containers[c.index()].capacity(),
                "request of {amt} units exceeds capacity {} of container {:?} — never satisfiable",
                self.containers[c.index()].capacity(),
                c
            );
        }
        if parts.is_empty() {
            return true; // trivially satisfied
        }

        let order = self.req_order;
        self.req_order += 1;
        let key = (priority, order);

        // Unobstructed: at the head position of every involved queue, i.e.
        // no queued request there has a smaller key. (A fresh request
        // always has the largest `order`, so within a priority this means
        // "queue empty of same-or-higher-priority requests" — strict FIFO.)
        let mut unobstructed = true;
        for &(c, _) in parts.as_slice() {
            let q = match dir {
                ReqDir::Get => &self.get_queues[c.index()],
                ReqDir::Put => &self.put_queues[c.index()],
            };
            if let Some(&front) = q.front() {
                if self.req_key(front) < key {
                    unobstructed = false;
                    break;
                }
            }
        }
        let satisfiable = parts.as_slice().iter().all(|&(c, amt)| match dir {
            ReqDir::Get => self.containers[c.index()].can_get(amt),
            ReqDir::Put => self.containers[c.index()].can_put(amt),
        });

        if unobstructed && satisfiable {
            let now = self.now();
            for &(c, amt) in parts.as_slice() {
                let delta = match dir {
                    ReqDir::Get => -(amt as i64),
                    ReqDir::Put => amt as i64,
                };
                self.containers[c.index()].apply(now, delta);
                self.dirty_scratch.push(c);
            }
            // A get may free queue capacity for puts (and vice versa).
            self.drain_queues();
            return true;
        }

        // Enqueue in (priority, order) position — no overtaking within a
        // priority even if satisfiable.
        let n_parts = parts.len();
        let rid = self.alloc_req(PendingReq {
            pid,
            dir,
            parts,
            priority,
            order,
        });
        for pi in 0..n_parts {
            // Re-borrow the request per part instead of collecting its
            // container ids into a temporary Vec — enqueueing is on the
            // blocking path and must not allocate when tracing is off.
            let c = self.reqs[rid.0 as usize].as_ref().unwrap().parts.as_slice()[pi].0;
            // Queues stay sorted by key; scan for the insertion point (the
            // queues are short — bounded by blocked processes).
            let pos = {
                let q = match dir {
                    ReqDir::Get => &self.get_queues[c.index()],
                    ReqDir::Put => &self.put_queues[c.index()],
                };
                let mut pos = q.len();
                for (i, &r) in q.iter().enumerate() {
                    if key < self.req_key(r) {
                        pos = i;
                        break;
                    }
                }
                pos
            };
            match dir {
                ReqDir::Get => self.get_queues[c.index()].insert(pos, rid),
                ReqDir::Put => self.put_queues[c.index()].insert(pos, rid),
            }
        }
        self.procs[pid.index()].state = ProcState::WaitingReq(rid);
        if self.trace.enabled() {
            let time = self.now();
            let containers = self.reqs[rid.0 as usize]
                .as_ref()
                .unwrap()
                .parts
                .as_slice()
                .iter()
                .map(|&(c, _)| c)
                .collect();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Queued { containers },
            });
        }
        false
    }

    fn alloc_req(&mut self, req: PendingReq) -> ReqId {
        if let Some(idx) = self.req_free.pop() {
            self.reqs[idx as usize] = Some(req);
            ReqId(idx)
        } else {
            self.reqs.push(Some(req));
            ReqId((self.reqs.len() - 1) as u32)
        }
    }

    /// Propagates grants after container levels changed. Processes the
    /// worklist in `dirty_scratch`; for each container, repeatedly tries to
    /// grant the head of its put queue then its get queue. A multi-container
    /// request is granted only when it heads *every* involved queue and all
    /// parts are satisfiable.
    fn drain_queues(&mut self) {
        while let Some(c) = self.dirty_scratch.pop() {
            loop {
                let granted =
                    self.try_grant_head(c, ReqDir::Put) || self.try_grant_head(c, ReqDir::Get);
                if !granted {
                    break;
                }
            }
        }
    }

    fn try_grant_head(&mut self, c: ContainerId, dir: ReqDir) -> bool {
        let queue = match dir {
            ReqDir::Get => &self.get_queues[c.index()],
            ReqDir::Put => &self.put_queues[c.index()],
        };
        let Some(&rid) = queue.front() else {
            return false;
        };
        let req = self.reqs[rid.0 as usize]
            .as_ref()
            .expect("queued request missing (kernel bug)");
        debug_assert_eq!(req.dir, dir);

        // Head of every involved queue?
        let all_heads = req.parts.as_slice().iter().all(|&(rc, _)| {
            let q = match dir {
                ReqDir::Get => &self.get_queues[rc.index()],
                ReqDir::Put => &self.put_queues[rc.index()],
            };
            q.front() == Some(&rid)
        });
        if !all_heads {
            return false;
        }
        // Satisfiable everywhere?
        let ok = req.parts.as_slice().iter().all(|&(rc, amt)| match dir {
            ReqDir::Get => self.containers[rc.index()].can_get(amt),
            ReqDir::Put => self.containers[rc.index()].can_put(amt),
        });
        if !ok {
            return false;
        }

        // Grant: apply deltas, dequeue everywhere, schedule the process.
        // Take the request out of its slot (it is freed either way) so its
        // parts are used by move — no clone on the grant hot path.
        let req = self.reqs[rid.0 as usize]
            .take()
            .expect("queued request missing (kernel bug)");
        self.req_free.push(rid.0);
        let pid = req.pid;
        let parts = req.parts;
        let now = self.now();
        for &(rc, amt) in parts.as_slice() {
            let delta = match dir {
                ReqDir::Get => -(amt as i64),
                ReqDir::Put => amt as i64,
            };
            self.containers[rc.index()].apply(now, delta);
        }
        for &(rc, _) in parts.as_slice() {
            let q = match dir {
                ReqDir::Get => &mut self.get_queues[rc.index()],
                ReqDir::Put => &mut self.put_queues[rc.index()],
            };
            let popped = q.pop_front();
            debug_assert_eq!(popped, Some(rid));
            self.dirty_scratch.push(rc);
        }
        self.procs[pid.index()].state = ProcState::Scheduled;
        let t = self.now;
        self.push_event(t, pid);
        if self.trace.enabled() {
            let time = self.now();
            let containers = parts.as_slice().iter().map(|&(rc, _)| rc).collect();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Granted { containers },
            });
        }
        true
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .field("live_processes", &self.live_processes)
            .field("process_slots", &self.procs.len())
            .field("containers", &self.containers.len())
            .field("heap_len", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that repeats `Timeout(dt)` n times.
    struct Ticker {
        dt: f64,
        n: u32,
        fired: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }
    impl Coroutine for Ticker {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            if self.n == 0 {
                return Step::Done;
            }
            self.n -= 1;
            self.fired
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Step::Wait(Effect::Timeout(self.dt))
        }
    }

    #[test]
    fn timeouts_advance_clock() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(1);
        sim.spawn(Box::new(Ticker {
            dt: 2.0,
            n: 5,
            fired: fired.clone(),
        }));
        let end = sim.run();
        assert_eq!(end, 10.0);
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 5);
        assert_eq!(sim.live_processes(), 0);
        sim.assert_quiescent();
    }

    /// Two-phase process used for container tests: get -> hold -> put.
    struct HoldAndRelease {
        container: ContainerId,
        amount: u64,
        hold: f64,
        phase: u8,
        log: HoldLog,
    }

    type HoldLog = std::sync::Arc<parking_lot_stub::Mutex<Vec<(f64, &'static str, u64)>>>;

    // tiny local mutex to avoid a dev-dependency in unit tests
    mod parking_lot_stub {
        pub use std::sync::Mutex;
        pub trait LockExt<T> {
            fn lock_unwrap(&self) -> std::sync::MutexGuard<'_, T>;
        }
        impl<T> LockExt<T> for Mutex<T> {
            fn lock_unwrap(&self) -> std::sync::MutexGuard<'_, T> {
                self.lock().unwrap()
            }
        }
    }
    use parking_lot_stub::LockExt;

    impl Coroutine for HoldAndRelease {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(Effect::Get {
                        container: self.container,
                        amount: self.amount,
                    })
                }
                1 => {
                    self.log.lock_unwrap().push((cx.now(), "got", self.amount));
                    self.phase = 2;
                    Step::Wait(Effect::Timeout(self.hold))
                }
                2 => {
                    self.phase = 3;
                    Step::Wait(Effect::Put {
                        container: self.container,
                        amount: self.amount,
                    })
                }
                _ => {
                    self.log.lock_unwrap().push((cx.now(), "put", self.amount));
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn container_blocks_and_grants_fifo() {
        let mut sim = Simulation::new(2);
        let c = sim.add_container("qpu", 100, 100);
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        // First job takes 80 for 10s; second needs 50 and must wait.
        sim.spawn(Box::new(HoldAndRelease {
            container: c,
            amount: 80,
            hold: 10.0,
            phase: 0,
            log: log.clone(),
        }));
        sim.spawn(Box::new(HoldAndRelease {
            container: c,
            amount: 50,
            hold: 5.0,
            phase: 0,
            log: log.clone(),
        }));
        sim.run();
        sim.assert_quiescent();
        let log = log.lock().unwrap();
        // job1 gets at t=0, puts at t=10; job2 gets at t=10, puts at t=15.
        assert_eq!(log[0], (0.0, "got", 80));
        assert_eq!(log[1], (10.0, "put", 80));
        assert_eq!(log[2], (10.0, "got", 50));
        assert_eq!(log[3], (15.0, "put", 50));
        assert_eq!(sim.container(c).level(), 100);
    }

    struct MultiGetter {
        parts: Vec<(ContainerId, u64)>,
        hold: f64,
        phase: u8,
        events: std::sync::Arc<std::sync::Mutex<Vec<(f64, &'static str)>>>,
        tag: &'static str,
    }
    impl Coroutine for MultiGetter {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(Effect::GetAll(self.parts.clone()))
                }
                1 => {
                    self.events.lock().unwrap().push((cx.now(), self.tag));
                    self.phase = 2;
                    Step::Wait(Effect::Timeout(self.hold))
                }
                2 => {
                    self.phase = 3;
                    Step::Wait(Effect::PutAll(self.parts.clone()))
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn multiget_is_atomic_and_deadlock_free() {
        // Classic crossing pattern: A wants (c1:80, c2:80), B wants
        // (c2:80, c1:80). With partial holds this deadlocks; atomic GetAll
        // must serialize them.
        let mut sim = Simulation::new(3);
        let c1 = sim.add_container("d1", 100, 100);
        let c2 = sim.add_container("d2", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c1, 80), (c2, 80)],
            hold: 3.0,
            phase: 0,
            events: events.clone(),
            tag: "A",
        }));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c2, 80), (c1, 80)],
            hold: 3.0,
            phase: 0,
            events: events.clone(),
            tag: "B",
        }));
        sim.run();
        sim.assert_quiescent();
        let ev = events.lock().unwrap();
        assert_eq!(ev.as_slice(), &[(0.0, "A"), (3.0, "B")]);
        assert_eq!(sim.container(c1).level(), 100);
        assert_eq!(sim.container(c2).level(), 100);
    }

    #[test]
    fn fifo_no_overtaking_even_if_satisfiable() {
        // Big request queues first; a small request that *could* be served
        // must wait behind it (strict FIFO, like SimPy).
        let mut sim = Simulation::new(4);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        // Holder takes 60 at t=0 for 10s.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 60)],
            hold: 10.0,
            phase: 0,
            events: events.clone(),
            tag: "holder",
        }));
        // Big wants 80 -> must queue.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 80)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "big",
        }));
        // Small wants 30 -> satisfiable immediately (level is 40), but
        // strict FIFO queues it behind big, and after big's grant only 20
        // remain, so small must wait for big's release at t=11.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 30)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "small",
        }));
        sim.run();
        sim.assert_quiescent();
        let ev = events.lock().unwrap();
        assert_eq!(
            ev.as_slice(),
            &[(0.0, "holder"), (10.0, "big"), (11.0, "small")]
        );
    }

    #[test]
    fn zero_amount_requests_complete_synchronously() {
        let mut sim = Simulation::new(5);
        let c = sim.add_container("qpu", 10, 0);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 0)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "noop",
        }));
        sim.run();
        assert_eq!(events.lock().unwrap().as_slice(), &[(0.0, "noop")]);
    }

    #[test]
    fn duplicate_containers_in_request_are_merged() {
        let mut sim = Simulation::new(6);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 30), (c, 30)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "dup",
        }));
        sim.run_until(0.5);
        assert_eq!(sim.container(c).level(), 40); // 100 - 60
        sim.run();
        assert_eq!(sim.container(c).level(), 100);
    }

    #[test]
    fn deposit_and_withdraw_wake_waiters() {
        let mut sim = Simulation::new(7);
        let c = sim.add_container("qpu", 100, 0);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 50)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "waiter",
        }));
        sim.run(); // waiter blocks, heap empties
        assert_eq!(sim.blocked_processes(), 1);
        sim.deposit(c, 50);
        sim.run();
        sim.assert_quiescent();
        assert_eq!(events.lock().unwrap().as_slice(), &[(0.0, "waiter")]);
    }

    struct Sleeper;
    impl Coroutine for Sleeper {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            Step::Wait(Effect::Suspend)
        }
    }

    #[test]
    fn suspend_then_wake() {
        let mut sim = Simulation::new(8);
        let pid = sim.spawn(Box::new(Sleeper));
        sim.run();
        assert!(!sim.is_done(pid));
        assert!(sim.wake(pid));
        sim.run();
        // Sleeper suspends forever each resume; wake it once more and it
        // suspends again — state machine remains consistent.
        assert!(!sim.is_done(pid));
        assert!(sim.wake(pid));
        assert!(!sim.wake(pid)); // already scheduled, wake is a no-op
    }

    #[test]
    fn kill_terminates_in_every_wait_state() {
        // Sleeping (Scheduled with a pending timeout event).
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(21);
        let pid = sim.spawn(Box::new(Ticker {
            dt: 5.0,
            n: 10,
            fired: fired.clone(),
        }));
        sim.run_until(7.0); // fired at t=0 and t=5
        assert!(sim.kill(pid));
        assert!(sim.is_done(pid));
        assert!(!sim.kill(pid)); // already done: no-op
        sim.run();
        // The pending t=10 event is stale; no further fires.
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(sim.live_processes(), 0);

        // Suspended.
        let mut sim = Simulation::new(22);
        let pid = sim.spawn(Box::new(Sleeper));
        sim.run();
        assert!(sim.kill(pid));
        assert!(!sim.wake(pid)); // retired slot cannot be woken
        assert_eq!(sim.live_processes(), 0);
    }

    #[test]
    fn kill_cancels_queued_request_and_unblocks_successor() {
        let mut sim = Simulation::new(23);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        // Holder takes 80 for 10s; "big" queues for 90 and blocks "small"
        // (30) behind it under strict FIFO.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 80)],
            hold: 10.0,
            phase: 0,
            events: events.clone(),
            tag: "holder",
        }));
        let big = sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 90)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "big",
        }));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 30)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "small",
        }));
        sim.run_until(1.0);
        assert_eq!(sim.blocked_processes(), 2);
        // Killing the queued head cancels its request; "small" (level 20…
        // no: 100-80=20 < 30) still waits for the holder's release, but is
        // now the queue head and runs at t=10 instead of never.
        assert!(sim.kill(big));
        assert_eq!(sim.blocked_processes(), 1);
        sim.run();
        sim.assert_quiescent();
        let ev = events.lock().unwrap();
        assert_eq!(ev.as_slice(), &[(0.0, "holder"), (10.0, "small")]);
        assert_eq!(sim.container(c).level(), 100);
    }

    #[test]
    fn killed_holder_leaks_units_until_killer_deposits() {
        // kill() does not return held units — that is the killer's job.
        let mut sim = Simulation::new(24);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let holder = sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 60)],
            hold: 100.0,
            phase: 0,
            events: events.clone(),
            tag: "holder",
        }));
        sim.run_until(1.0);
        assert_eq!(sim.container(c).level(), 40);
        assert!(sim.kill(holder));
        assert_eq!(sim.container(c).level(), 40); // still held
        sim.deposit(c, 60); // killer's cleanup
        assert_eq!(sim.container(c).level(), 100);
    }

    #[test]
    fn slots_are_reused_and_stale_handles_stay_safe() {
        // Spawn-finish-spawn: the second process reuses the first's slot
        // under a bumped generation; the first handle must stay inert.
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(25);
        let a = sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 1,
            fired: fired.clone(),
        }));
        sim.run();
        assert!(sim.is_done(a));
        let b = sim.spawn(Box::new(Sleeper));
        // Same slot, different generation: distinct handles.
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
        sim.run();
        // Operations through the stale handle must not reach `b`.
        assert!(sim.is_done(a));
        assert!(!sim.wake(a));
        assert!(!sim.interrupt(a));
        assert!(!sim.kill(a));
        assert!(!sim.is_done(b));
        assert!(sim.wake(b));
        assert_eq!(sim.process_slots(), 1, "one pooled slot serves both");
    }

    #[test]
    fn event_slab_reuses_slots() {
        // A long ticker run schedules thousands of events but only ever has
        // one in flight — the slab must stay at a single slot.
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(26);
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 1000,
            fired,
        }));
        sim.run();
        assert_eq!(sim.events.len(), 1, "event slots must be pooled");
    }

    #[test]
    fn raw_pid_roundtrip_preserves_generation() {
        let mut sim = Simulation::new(27);
        let a = sim.spawn(Box::new(Sleeper));
        sim.run();
        sim.kill(a);
        let b = sim.spawn(Box::new(Sleeper));
        let restored = ProcessId::from_raw(b.as_raw());
        assert_eq!(restored, b);
        // The stale handle round-trips too, and stays stale.
        let stale = ProcessId::from_raw(a.as_raw());
        assert!(sim.is_done(stale));
        assert!(!sim.wake(stale));
    }

    #[test]
    fn run_until_stops_at_bound() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(9);
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 100,
            fired: fired.clone(),
        }));
        sim.run_until(10.5);
        assert_eq!(sim.now(), 10.5);
        // Ticks at t=0..=10 → 11 resumes... ticker fires on each resume
        // until n exhausted; fired counts resumes where n>0: t=0,1,..,10.
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 11);
        sim.run();
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn run_epoch_pins_clock_when_heap_drains() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(9);
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 3,
            fired: fired.clone(),
        }));
        // Last event fires at t=2; run_until would leave the clock there,
        // run_epoch pins it to the barrier time.
        sim.run_epoch(10.0);
        assert_eq!(sim.now(), 10.0);
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn run_epoch_is_inclusive_and_monotone() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(9);
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 100,
            fired: fired.clone(),
        }));
        sim.run_epoch(5.0);
        assert_eq!(sim.now(), 5.0);
        // Ticks at t=0..=5 inclusive.
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 6);
        // A barrier in the past never moves the clock backwards.
        sim.run_epoch(1.0);
        assert_eq!(sim.now(), 5.0);
        sim.run_epoch(6.0);
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 7);
        assert_eq!(sim.now(), 6.0);
    }

    #[test]
    fn run_epoch_injected_events_stamp_at_barrier() {
        // A suspended process woken at a drained-heap barrier resumes at
        // exactly the barrier time — the contract the parallel service
        // coordinator relies on.
        let mut sim = Simulation::new(9);
        let pid = sim.spawn(Box::new(Sleeper));
        sim.run_epoch(7.5);
        assert_eq!(sim.now(), 7.5);
        assert!(sim.wake(pid));
        sim.run();
        // The wake resumed the sleeper at exactly the pinned instant.
        assert_eq!(sim.now(), 7.5);
    }

    #[test]
    fn deterministic_event_interleaving() {
        // Two identical runs must produce identical traces.
        let run = || {
            let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut sim = Simulation::new(42);
            let c1 = sim.add_container("a", 50, 50);
            let c2 = sim.add_container("b", 50, 50);
            for i in 0..10u64 {
                sim.spawn(Box::new(MultiGetter {
                    parts: vec![(c1, 20 + (i % 3) * 10), (c2, 10 + (i % 4) * 10)],
                    hold: 1.0 + i as f64 * 0.25,
                    phase: 0,
                    events: events.clone(),
                    tag: "job",
                }));
            }
            sim.run();
            sim.assert_quiescent();
            let v = events.lock().unwrap().clone();
            (v, sim.now(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn max_events_guard_fires() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::with_config(
            1,
            SimConfig {
                trace_capacity: 0,
                max_events: 10,
            },
        );
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 1000,
            fired,
        }));
        sim.run();
    }

    /// A producer that puts `amount` into a container `n` times with no
    /// delay; blocks whenever the container is full.
    struct BlindProducer {
        container: ContainerId,
        amount: u64,
        n: u32,
        puts_done: std::sync::Arc<std::sync::Mutex<Vec<f64>>>,
        phase: u8,
    }
    impl Coroutine for BlindProducer {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            if self.phase == 1 {
                self.puts_done.lock().unwrap().push(cx.now());
                self.n -= 1;
                self.phase = 0;
            }
            if self.n == 0 {
                return Step::Done;
            }
            self.phase = 1;
            Step::Wait(Effect::Put {
                container: self.container,
                amount: self.amount,
            })
        }
    }

    /// A consumer that drains `amount` every `period` seconds.
    struct SlowConsumer {
        container: ContainerId,
        amount: u64,
        period: f64,
        n: u32,
        phase: u8,
    }
    impl Coroutine for SlowConsumer {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    if self.n == 0 {
                        return Step::Done;
                    }
                    self.n -= 1;
                    self.phase = 1;
                    Step::Wait(Effect::Timeout(self.period))
                }
                _ => {
                    self.phase = 0;
                    Step::Wait(Effect::Get {
                        container: self.container,
                        amount: self.amount,
                    })
                }
            }
        }
    }

    #[test]
    fn puts_block_on_full_container() {
        // Bounded-buffer: capacity 10, producer pushes 5×5 instantly but
        // must wait for the consumer to drain.
        let mut sim = Simulation::new(12);
        let c = sim.add_container("buf", 10, 0);
        let puts = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(BlindProducer {
            container: c,
            amount: 5,
            n: 5,
            puts_done: puts.clone(),
            phase: 0,
        }));
        sim.spawn(Box::new(SlowConsumer {
            container: c,
            amount: 5,
            period: 10.0,
            n: 5,
            phase: 0,
        }));
        sim.run();
        sim.assert_quiescent();
        let puts = puts.lock().unwrap();
        // First two puts fit immediately (level 0→5→10); each further put
        // waits for a drain at t = 10, 20, 30.
        assert_eq!(puts.as_slice(), &[0.0, 0.0, 10.0, 20.0, 30.0]);
        assert_eq!(sim.container(c).level(), 0); // 25 in, 25 out
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn external_withdraw_checks_level() {
        let mut sim = Simulation::new(13);
        let c = sim.add_container("x", 10, 5);
        sim.withdraw(c, 6);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn external_deposit_checks_capacity() {
        let mut sim = Simulation::new(14);
        let c = sim.add_container("x", 10, 5);
        sim.deposit(c, 6);
    }

    #[test]
    #[should_panic(expected = "never satisfiable")]
    fn over_capacity_request_rejected_eagerly() {
        struct Greedy {
            c: ContainerId,
        }
        impl Coroutine for Greedy {
            fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
                Step::Wait(Effect::Get {
                    container: self.c,
                    amount: 11,
                })
            }
        }
        let mut sim = Simulation::new(15);
        let c = sim.add_container("x", 10, 10);
        sim.spawn(Box::new(Greedy { c }));
        sim.run();
    }

    #[test]
    fn tracing_records_lifecycle() {
        let mut sim = Simulation::with_config(
            11,
            SimConfig {
                trace_capacity: 100,
                max_events: u64::MAX,
            },
        );
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 1,
            fired,
        }));
        sim.run();
        let kinds: Vec<_> = sim.trace().iter().map(|r| &r.kind).collect();
        assert!(matches!(kinds[0], TraceKind::Spawn));
        assert!(matches!(kinds.last().unwrap(), TraceKind::Finish));
    }

    #[test]
    fn self_kill_during_resume_is_safe() {
        // A process that kills itself mid-resume: the kernel must not write
        // the stale body back into the (possibly reused) slot.
        struct SelfKiller {
            spawned: std::sync::Arc<std::sync::atomic::AtomicU32>,
        }
        impl Coroutine for SelfKiller {
            fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
                let me = cx.pid();
                cx.kill(me);
                // Immediately reuse the freed slot.
                cx.spawn(Box::new(Ticker {
                    dt: 1.0,
                    n: 1,
                    fired: self.spawned.clone(),
                }));
                Step::Done // ignored: the slot is already retired
            }
        }
        let spawned = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(28);
        sim.spawn(Box::new(SelfKiller {
            spawned: spawned.clone(),
        }));
        sim.run();
        assert_eq!(spawned.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(sim.live_processes(), 0);
        sim.assert_quiescent();
    }
}
