//! The simulation kernel: event heap, process scheduling and the FIFO grant
//! machinery for (multi-)container requests.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::container::{Container, ContainerId};
use crate::process::{Coroutine, Ctx, Effect, ProcessId, Step};
use crate::rng::Xoshiro256StarStar;
use crate::time::SimTime;
use crate::trace::{TraceBuffer, TraceKind, TraceRecord};

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Trace buffer capacity in records; 0 disables tracing.
    pub trace_capacity: usize,
    /// Hard cap on processed events, to catch accidental infinite loops.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace_capacity: 0,
            max_events: u64::MAX,
        }
    }
}

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has a resume event in the heap.
    Scheduled,
    /// Blocked on a queued container request.
    WaitingReq(ReqId),
    /// Parked on [`Effect::Suspend`] until woken.
    Suspended,
    /// Finished; the slot is retired.
    Done,
}

struct ProcSlot {
    co: Option<Box<dyn Coroutine>>,
    state: ProcState,
    /// Wait generation. Bumped when a pending resume event is cancelled
    /// (interrupt of a sleeping process); events carry the epoch they were
    /// pushed under and are skipped as stale when the epochs disagree.
    epoch: u32,
    /// Set by [`Simulation::interrupt`]; cleared by `take_interrupted`.
    interrupted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReqId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqDir {
    Get,
    Put,
}

#[derive(Debug)]
struct PendingReq {
    pid: ProcessId,
    dir: ReqDir,
    /// Sorted by container id, amounts > 0, no duplicates.
    parts: Vec<(ContainerId, u64)>,
    /// Queue priority: lower is served first; FIFO within a priority via
    /// `order`. The comparison key `(priority, order)` is *global*, so a
    /// multi-container request that is minimal overall is at the head of
    /// every queue it joined — the same progress argument as pure FIFO.
    priority: i32,
    /// Global submission counter (FIFO tiebreak).
    order: u64,
}

/// A scheduled resume event. Ordered by `(time, seq)` so simultaneous events
/// fire in insertion order (deterministic). `epoch` detects cancellation.
#[derive(Debug, PartialEq, Eq)]
struct EventEntry {
    time: SimTime,
    seq: u64,
    pid: ProcessId,
    epoch: u32,
}

impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic process-interaction discrete-event simulation.
///
/// See the [crate docs](crate) for the programming model.
pub struct Simulation {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<EventEntry>>,
    procs: Vec<ProcSlot>,
    containers: Vec<Container>,
    reqs: Vec<Option<PendingReq>>,
    req_free: Vec<u32>,
    get_queues: Vec<VecDeque<ReqId>>,
    put_queues: Vec<VecDeque<ReqId>>,
    rng: Xoshiro256StarStar,
    trace: TraceBuffer,
    events_processed: u64,
    live_processes: usize,
    config: SimConfig,
    /// Scratch worklist for grant propagation (reused across calls).
    dirty_scratch: Vec<ContainerId>,
    /// Global request submission counter (FIFO tiebreak within a priority).
    req_order: u64,
}

impl Simulation {
    /// Creates an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, SimConfig::default())
    }

    /// Creates an empty simulation with explicit configuration.
    pub fn with_config(seed: u64, config: SimConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::with_capacity(1024),
            procs: Vec::with_capacity(256),
            containers: Vec::new(),
            reqs: Vec::new(),
            req_free: Vec::new(),
            get_queues: Vec::new(),
            put_queues: Vec::new(),
            rng: Xoshiro256StarStar::new(seed),
            trace: TraceBuffer::new(config.trace_capacity),
            events_processed: 0,
            live_processes: 0,
            config,
            dirty_scratch: Vec::new(),
            req_order: 0,
        }
    }

    /// Current simulation time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now.seconds()
    }

    /// Number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of processes that have been spawned and not yet finished.
    #[inline]
    pub fn live_processes(&self) -> usize {
        self.live_processes
    }

    /// The kernel RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    /// Collected trace records (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceRecord] {
        self.trace.records()
    }

    pub(crate) fn push_trace(&mut self, rec: TraceRecord) {
        self.trace.push(rec);
    }

    // ------------------------------------------------------------------
    // Containers
    // ------------------------------------------------------------------

    /// Registers a container and returns its id.
    pub fn add_container(
        &mut self,
        label: impl Into<String>,
        capacity: u64,
        initial_level: u64,
    ) -> ContainerId {
        let id = ContainerId(self.containers.len() as u32);
        self.containers
            .push(Container::new(label, capacity, initial_level));
        self.get_queues.push(VecDeque::new());
        self.put_queues.push(VecDeque::new());
        id
    }

    /// Read access to a container.
    #[inline]
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.index()]
    }

    /// Number of registered containers.
    #[inline]
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Instantly deposits units into a container from outside any process
    /// (e.g. initial provisioning), then propagates grants.
    pub fn deposit(&mut self, id: ContainerId, amount: u64) {
        let now = self.now();
        self.containers[id.index()].apply(now, amount as i64);
        self.dirty_scratch.push(id);
        self.drain_queues();
    }

    /// Instantly withdraws units (panics if unavailable — external
    /// withdrawal never blocks).
    pub fn withdraw(&mut self, id: ContainerId, amount: u64) {
        let now = self.now();
        self.containers[id.index()].apply(now, -(amount as i64));
        self.dirty_scratch.push(id);
        self.drain_queues();
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Spawns a process, scheduled to run at the current time (after any
    /// events already queued for this instant).
    pub fn spawn(&mut self, co: Box<dyn Coroutine>) -> ProcessId {
        self.spawn_after(0.0, co)
    }

    /// Spawns a process that first runs `delay` seconds from now.
    pub fn spawn_after(&mut self, delay: f64, co: Box<dyn Coroutine>) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(ProcSlot {
            co: Some(co),
            state: ProcState::Scheduled,
            epoch: 0,
            interrupted: false,
        });
        self.live_processes += 1;
        let t = self.now.after(delay);
        self.push_event(t, pid);
        if self.trace.enabled() {
            let time = self.now();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Spawn,
            });
        }
        pid
    }

    /// Wakes a process parked on [`Effect::Suspend`]. Returns `true` if the
    /// process was suspended and is now scheduled.
    pub fn wake(&mut self, pid: ProcessId) -> bool {
        let slot = &mut self.procs[pid.index()];
        if slot.state == ProcState::Suspended {
            slot.state = ProcState::Scheduled;
            let t = self.now;
            self.push_event(t, pid);
            true
        } else {
            false
        }
    }

    /// Whether the given process has finished.
    pub fn is_done(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].state == ProcState::Done
    }

    /// Interrupts a process: cancels whatever it is currently waiting on
    /// and reschedules it at the current time with its interrupted flag
    /// set. The process observes the cut-short wait via
    /// [`Ctx::take_interrupted`](crate::process::Ctx::take_interrupted):
    ///
    /// * blocked on [`Effect::Timeout`] — the sleep ends now;
    /// * blocked on a container request — the request is cancelled (nothing
    ///   was acquired) and removed from all queues;
    /// * parked on [`Effect::Suspend`] — equivalent to [`wake`](Self::wake)
    ///   plus the flag.
    ///
    /// Returns `false` (no-op) if the process has already finished.
    /// Interrupting a process that is *scheduled but not waiting* (e.g. its
    /// grant already fired this instant) still sets the flag — interrupters
    /// should target processes whose waiting state they control, as in the
    /// watchdog/reneging pattern.
    pub fn interrupt(&mut self, pid: ProcessId) -> bool {
        match self.procs[pid.index()].state {
            ProcState::Done => false,
            ProcState::Scheduled => {
                // Cancel the pending resume event by bumping the epoch, then
                // reschedule immediately.
                let slot = &mut self.procs[pid.index()];
                slot.epoch = slot.epoch.wrapping_add(1);
                slot.interrupted = true;
                let t = self.now;
                self.push_event(t, pid);
                true
            }
            ProcState::Suspended => {
                let slot = &mut self.procs[pid.index()];
                slot.interrupted = true;
                slot.state = ProcState::Scheduled;
                let t = self.now;
                self.push_event(t, pid);
                true
            }
            ProcState::WaitingReq(rid) => {
                self.cancel_request(rid);
                let slot = &mut self.procs[pid.index()];
                slot.interrupted = true;
                slot.state = ProcState::Scheduled;
                let t = self.now;
                self.push_event(t, pid);
                true
            }
        }
    }

    /// Terminates a process immediately, whatever it is doing. The body is
    /// dropped (releasing any shared state it held), a queued container
    /// request is cancelled (nothing was acquired), and any pending resume
    /// event becomes stale. Units the process already withdrew are **not**
    /// returned — the killer owns that cleanup (deposit them back
    /// explicitly), exactly as with an OS-level `kill -9`.
    ///
    /// Returns `false` (no-op) if the process had already finished.
    pub fn kill(&mut self, pid: ProcessId) -> bool {
        match self.procs[pid.index()].state {
            ProcState::Done => false,
            ProcState::WaitingReq(rid) => {
                self.cancel_request(rid);
                self.retire(pid);
                true
            }
            ProcState::Scheduled | ProcState::Suspended => {
                self.retire(pid);
                true
            }
        }
    }

    /// Marks a live process slot Done and drops its body (kill path).
    fn retire(&mut self, pid: ProcessId) {
        let slot = &mut self.procs[pid.index()];
        // Belt and braces: stale-event detection already keys on `state !=
        // Scheduled`, but bumping the epoch keeps the invariant that a
        // cancelled resume event never matches its slot.
        slot.epoch = slot.epoch.wrapping_add(1);
        slot.state = ProcState::Done;
        slot.co = None;
        self.live_processes -= 1;
        if self.trace.enabled() {
            let time = self.now();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Finish,
            });
        }
    }

    /// Whether `pid`'s interrupted flag is set (does not clear it).
    #[inline]
    pub fn interrupted(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].interrupted
    }

    /// Reads and clears `pid`'s interrupted flag.
    #[inline]
    pub fn take_interrupted(&mut self, pid: ProcessId) -> bool {
        std::mem::take(&mut self.procs[pid.index()].interrupted)
    }

    /// Removes a queued request from every queue it joined and releases its
    /// slot. Successors may become grantable (the cancelled request might
    /// have been a blocked head), so grants are re-propagated.
    fn cancel_request(&mut self, rid: ReqId) {
        let req = self.reqs[rid.0 as usize]
            .take()
            .expect("cancelled request missing (kernel bug)");
        self.req_free.push(rid.0);
        for &(c, _) in &req.parts {
            let q = match req.dir {
                ReqDir::Get => &mut self.get_queues[c.index()],
                ReqDir::Put => &mut self.put_queues[c.index()],
            };
            let pos = q
                .iter()
                .position(|&r| r == rid)
                .expect("request not in queue (kernel bug)");
            q.remove(pos);
            self.dirty_scratch.push(c);
        }
        self.drain_queues();
    }

    fn push_event(&mut self, time: SimTime, pid: ProcessId) {
        let seq = self.seq;
        self.seq += 1;
        let epoch = self.procs[pid.index()].epoch;
        self.heap.push(Reverse(EventEntry {
            time,
            seq,
            pid,
            epoch,
        }));
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Processes a single event. Returns `false` when the heap is empty.
    /// Stale events (cancelled by an interrupt's epoch bump) are discarded
    /// without advancing the clock; the call still returns `true`.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(entry)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "event heap not monotone");
        let slot = &self.procs[entry.pid.index()];
        if slot.epoch != entry.epoch || slot.state != ProcState::Scheduled {
            // Cancelled wait: the interrupt already queued a replacement.
            return true;
        }
        self.now = entry.time;
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.config.max_events,
            "exceeded max_events = {} — runaway simulation?",
            self.config.max_events
        );
        self.run_process(entry.pid);
        true
    }

    /// Runs until no events remain. Returns the final simulation time.
    pub fn run(&mut self) -> f64 {
        while self.step() {}
        self.now()
    }

    /// Runs until the next event would be after `t_end` (or the heap
    /// empties), then sets the clock to `t_end` if it was reached.
    pub fn run_until(&mut self, t_end: f64) -> f64 {
        let end = SimTime::new(t_end);
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time > end {
                self.now = end;
                break;
            }
            self.step();
        }
        if self.now < end && self.heap.is_empty() {
            // No more events; clock stays at last event time, which is the
            // conventional DES behaviour. Callers who want wall-alignment can
            // read the return value.
        }
        self.now()
    }

    /// Panics if any process is still blocked on a request or suspended.
    /// Call after [`run`](Self::run) to catch models that starve jobs.
    pub fn assert_quiescent(&self) {
        for (i, p) in self.procs.iter().enumerate() {
            match p.state {
                ProcState::WaitingReq(_) => {
                    panic!("process {i} still blocked on a container request at end of run")
                }
                ProcState::Suspended => {
                    panic!("process {i} still suspended at end of run")
                }
                _ => {}
            }
        }
    }

    /// Number of processes currently blocked on container requests.
    pub fn blocked_processes(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| matches!(p.state, ProcState::WaitingReq(_)))
            .count()
    }

    // ------------------------------------------------------------------
    // Process execution + effect handling
    // ------------------------------------------------------------------

    fn run_process(&mut self, pid: ProcessId) {
        loop {
            let mut co = self.procs[pid.index()]
                .co
                .take()
                .expect("process body missing (kernel bug)");
            let step = co.resume(&mut Ctx { sim: self, pid });
            self.procs[pid.index()].co = Some(co);

            match step {
                Step::Done => {
                    let slot = &mut self.procs[pid.index()];
                    slot.state = ProcState::Done;
                    slot.co = None;
                    self.live_processes -= 1;
                    if self.trace.enabled() {
                        let time = self.now();
                        self.push_trace(TraceRecord {
                            time,
                            pid: Some(pid),
                            kind: TraceKind::Finish,
                        });
                    }
                    return;
                }
                Step::Wait(effect) => {
                    if !self.handle_effect(pid, effect) {
                        // Blocked (or scheduled) — stop driving this process.
                        return;
                    }
                    // Effect completed synchronously: resume immediately.
                }
            }
        }
    }

    /// Applies an effect. Returns `true` if it completed synchronously and
    /// the process should be resumed immediately.
    fn handle_effect(&mut self, pid: ProcessId, effect: Effect) -> bool {
        match effect {
            Effect::Timeout(dt) => {
                let t = self.now.after(dt);
                self.procs[pid.index()].state = ProcState::Scheduled;
                self.push_event(t, pid);
                false
            }
            Effect::Yield => {
                let t = self.now;
                self.procs[pid.index()].state = ProcState::Scheduled;
                self.push_event(t, pid);
                false
            }
            Effect::Suspend => {
                self.procs[pid.index()].state = ProcState::Suspended;
                false
            }
            Effect::Get { container, amount } => {
                self.submit_request(pid, ReqDir::Get, vec![(container, amount)], 0)
            }
            Effect::Put { container, amount } => {
                self.submit_request(pid, ReqDir::Put, vec![(container, amount)], 0)
            }
            Effect::GetAll(parts) => self.submit_request(pid, ReqDir::Get, parts, 0),
            Effect::PutAll(parts) => self.submit_request(pid, ReqDir::Put, parts, 0),
            Effect::GetPri {
                container,
                amount,
                priority,
            } => self.submit_request(pid, ReqDir::Get, vec![(container, amount)], priority),
            Effect::GetAllPri { parts, priority } => {
                self.submit_request(pid, ReqDir::Get, parts, priority)
            }
        }
    }

    /// The `(priority, order)` service key of a queued request.
    fn req_key(&self, rid: ReqId) -> (i32, u64) {
        let req = self.reqs[rid.0 as usize]
            .as_ref()
            .expect("queued request missing (kernel bug)");
        (req.priority, req.order)
    }

    /// Normalises a request, grants it immediately when possible (only if
    /// no request with a smaller `(priority, order)` key is queued on any
    /// involved container — strict FIFO within a priority, overtaking
    /// across priorities), otherwise enqueues it in key order.
    fn submit_request(
        &mut self,
        pid: ProcessId,
        dir: ReqDir,
        mut parts: Vec<(ContainerId, u64)>,
        priority: i32,
    ) -> bool {
        // Normalise: drop zero amounts, merge duplicates, sort by id.
        parts.retain(|&(_, amt)| amt > 0);
        parts.sort_by_key(|&(c, _)| c);
        parts.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        for &(c, amt) in &parts {
            assert!(
                c.index() < self.containers.len(),
                "request names unknown container {c:?}"
            );
            // A single request larger than the capacity can never be granted;
            // fail fast instead of blocking forever.
            assert!(
                amt <= self.containers[c.index()].capacity(),
                "request of {amt} units exceeds capacity {} of container {:?} — never satisfiable",
                self.containers[c.index()].capacity(),
                c
            );
        }
        if parts.is_empty() {
            return true; // trivially satisfied
        }

        let order = self.req_order;
        self.req_order += 1;
        let key = (priority, order);

        // Unobstructed: at the head position of every involved queue, i.e.
        // no queued request there has a smaller key. (A fresh request
        // always has the largest `order`, so within a priority this means
        // "queue empty of same-or-higher-priority requests" — strict FIFO.)
        let mut unobstructed = true;
        for &(c, _) in &parts {
            let q = match dir {
                ReqDir::Get => &self.get_queues[c.index()],
                ReqDir::Put => &self.put_queues[c.index()],
            };
            if let Some(&front) = q.front() {
                if self.req_key(front) < key {
                    unobstructed = false;
                    break;
                }
            }
        }
        let satisfiable = parts.iter().all(|&(c, amt)| match dir {
            ReqDir::Get => self.containers[c.index()].can_get(amt),
            ReqDir::Put => self.containers[c.index()].can_put(amt),
        });

        if unobstructed && satisfiable {
            let now = self.now();
            for &(c, amt) in &parts {
                let delta = match dir {
                    ReqDir::Get => -(amt as i64),
                    ReqDir::Put => amt as i64,
                };
                self.containers[c.index()].apply(now, delta);
                self.dirty_scratch.push(c);
            }
            // A get may free queue capacity for puts (and vice versa).
            self.drain_queues();
            return true;
        }

        // Enqueue in (priority, order) position — no overtaking within a
        // priority even if satisfiable.
        let n_parts = parts.len();
        let rid = self.alloc_req(PendingReq {
            pid,
            dir,
            parts,
            priority,
            order,
        });
        for pi in 0..n_parts {
            // Re-borrow the request per part instead of collecting its
            // container ids into a temporary Vec — enqueueing is on the
            // blocking path and must not allocate when tracing is off.
            let c = self.reqs[rid.0 as usize].as_ref().unwrap().parts[pi].0;
            // Queues stay sorted by key; scan for the insertion point (the
            // queues are short — bounded by blocked processes).
            let pos = {
                let q = match dir {
                    ReqDir::Get => &self.get_queues[c.index()],
                    ReqDir::Put => &self.put_queues[c.index()],
                };
                let mut pos = q.len();
                for (i, &r) in q.iter().enumerate() {
                    if key < self.req_key(r) {
                        pos = i;
                        break;
                    }
                }
                pos
            };
            match dir {
                ReqDir::Get => self.get_queues[c.index()].insert(pos, rid),
                ReqDir::Put => self.put_queues[c.index()].insert(pos, rid),
            }
        }
        self.procs[pid.index()].state = ProcState::WaitingReq(rid);
        if self.trace.enabled() {
            let time = self.now();
            let containers = self.reqs[rid.0 as usize]
                .as_ref()
                .unwrap()
                .parts
                .iter()
                .map(|&(c, _)| c)
                .collect();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Queued { containers },
            });
        }
        false
    }

    fn alloc_req(&mut self, req: PendingReq) -> ReqId {
        if let Some(idx) = self.req_free.pop() {
            self.reqs[idx as usize] = Some(req);
            ReqId(idx)
        } else {
            self.reqs.push(Some(req));
            ReqId((self.reqs.len() - 1) as u32)
        }
    }

    /// Propagates grants after container levels changed. Processes the
    /// worklist in `dirty_scratch`; for each container, repeatedly tries to
    /// grant the head of its put queue then its get queue. A multi-container
    /// request is granted only when it heads *every* involved queue and all
    /// parts are satisfiable.
    fn drain_queues(&mut self) {
        while let Some(c) = self.dirty_scratch.pop() {
            loop {
                let granted =
                    self.try_grant_head(c, ReqDir::Put) || self.try_grant_head(c, ReqDir::Get);
                if !granted {
                    break;
                }
            }
        }
    }

    fn try_grant_head(&mut self, c: ContainerId, dir: ReqDir) -> bool {
        let queue = match dir {
            ReqDir::Get => &self.get_queues[c.index()],
            ReqDir::Put => &self.put_queues[c.index()],
        };
        let Some(&rid) = queue.front() else {
            return false;
        };
        let req = self.reqs[rid.0 as usize]
            .as_ref()
            .expect("queued request missing (kernel bug)");
        debug_assert_eq!(req.dir, dir);

        // Head of every involved queue?
        let all_heads = req.parts.iter().all(|&(rc, _)| {
            let q = match dir {
                ReqDir::Get => &self.get_queues[rc.index()],
                ReqDir::Put => &self.put_queues[rc.index()],
            };
            q.front() == Some(&rid)
        });
        if !all_heads {
            return false;
        }
        // Satisfiable everywhere?
        let ok = req.parts.iter().all(|&(rc, amt)| match dir {
            ReqDir::Get => self.containers[rc.index()].can_get(amt),
            ReqDir::Put => self.containers[rc.index()].can_put(amt),
        });
        if !ok {
            return false;
        }

        // Grant: apply deltas, dequeue everywhere, schedule the process.
        // Take the request out of its slot (it is freed either way) so its
        // parts are used by move — no clone on the grant hot path.
        let req = self.reqs[rid.0 as usize]
            .take()
            .expect("queued request missing (kernel bug)");
        self.req_free.push(rid.0);
        let pid = req.pid;
        let parts = req.parts;
        let now = self.now();
        for &(rc, amt) in &parts {
            let delta = match dir {
                ReqDir::Get => -(amt as i64),
                ReqDir::Put => amt as i64,
            };
            self.containers[rc.index()].apply(now, delta);
        }
        for &(rc, _) in &parts {
            let q = match dir {
                ReqDir::Get => &mut self.get_queues[rc.index()],
                ReqDir::Put => &mut self.put_queues[rc.index()],
            };
            let popped = q.pop_front();
            debug_assert_eq!(popped, Some(rid));
            self.dirty_scratch.push(rc);
        }
        self.procs[pid.index()].state = ProcState::Scheduled;
        let t = self.now;
        self.push_event(t, pid);
        if self.trace.enabled() {
            let time = self.now();
            let containers = parts.iter().map(|&(rc, _)| rc).collect();
            self.push_trace(TraceRecord {
                time,
                pid: Some(pid),
                kind: TraceKind::Granted { containers },
            });
        }
        true
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .field("live_processes", &self.live_processes)
            .field("containers", &self.containers.len())
            .field("heap_len", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that repeats `Timeout(dt)` n times.
    struct Ticker {
        dt: f64,
        n: u32,
        fired: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }
    impl Coroutine for Ticker {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            if self.n == 0 {
                return Step::Done;
            }
            self.n -= 1;
            self.fired
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Step::Wait(Effect::Timeout(self.dt))
        }
    }

    #[test]
    fn timeouts_advance_clock() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(1);
        sim.spawn(Box::new(Ticker {
            dt: 2.0,
            n: 5,
            fired: fired.clone(),
        }));
        let end = sim.run();
        assert_eq!(end, 10.0);
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 5);
        assert_eq!(sim.live_processes(), 0);
        sim.assert_quiescent();
    }

    /// Two-phase process used for container tests: get -> hold -> put.
    struct HoldAndRelease {
        container: ContainerId,
        amount: u64,
        hold: f64,
        phase: u8,
        log: HoldLog,
    }

    type HoldLog = std::sync::Arc<parking_lot_stub::Mutex<Vec<(f64, &'static str, u64)>>>;

    // tiny local mutex to avoid a dev-dependency in unit tests
    mod parking_lot_stub {
        pub use std::sync::Mutex;
        pub trait LockExt<T> {
            fn lock_unwrap(&self) -> std::sync::MutexGuard<'_, T>;
        }
        impl<T> LockExt<T> for Mutex<T> {
            fn lock_unwrap(&self) -> std::sync::MutexGuard<'_, T> {
                self.lock().unwrap()
            }
        }
    }
    use parking_lot_stub::LockExt;

    impl Coroutine for HoldAndRelease {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(Effect::Get {
                        container: self.container,
                        amount: self.amount,
                    })
                }
                1 => {
                    self.log.lock_unwrap().push((cx.now(), "got", self.amount));
                    self.phase = 2;
                    Step::Wait(Effect::Timeout(self.hold))
                }
                2 => {
                    self.phase = 3;
                    Step::Wait(Effect::Put {
                        container: self.container,
                        amount: self.amount,
                    })
                }
                _ => {
                    self.log.lock_unwrap().push((cx.now(), "put", self.amount));
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn container_blocks_and_grants_fifo() {
        let mut sim = Simulation::new(2);
        let c = sim.add_container("qpu", 100, 100);
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        // First job takes 80 for 10s; second needs 50 and must wait.
        sim.spawn(Box::new(HoldAndRelease {
            container: c,
            amount: 80,
            hold: 10.0,
            phase: 0,
            log: log.clone(),
        }));
        sim.spawn(Box::new(HoldAndRelease {
            container: c,
            amount: 50,
            hold: 5.0,
            phase: 0,
            log: log.clone(),
        }));
        sim.run();
        sim.assert_quiescent();
        let log = log.lock().unwrap();
        // job1 gets at t=0, puts at t=10; job2 gets at t=10, puts at t=15.
        assert_eq!(log[0], (0.0, "got", 80));
        assert_eq!(log[1], (10.0, "put", 80));
        assert_eq!(log[2], (10.0, "got", 50));
        assert_eq!(log[3], (15.0, "put", 50));
        assert_eq!(sim.container(c).level(), 100);
    }

    struct MultiGetter {
        parts: Vec<(ContainerId, u64)>,
        hold: f64,
        phase: u8,
        events: std::sync::Arc<std::sync::Mutex<Vec<(f64, &'static str)>>>,
        tag: &'static str,
    }
    impl Coroutine for MultiGetter {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(Effect::GetAll(self.parts.clone()))
                }
                1 => {
                    self.events.lock().unwrap().push((cx.now(), self.tag));
                    self.phase = 2;
                    Step::Wait(Effect::Timeout(self.hold))
                }
                2 => {
                    self.phase = 3;
                    Step::Wait(Effect::PutAll(self.parts.clone()))
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn multiget_is_atomic_and_deadlock_free() {
        // Classic crossing pattern: A wants (c1:80, c2:80), B wants
        // (c2:80, c1:80). With partial holds this deadlocks; atomic GetAll
        // must serialize them.
        let mut sim = Simulation::new(3);
        let c1 = sim.add_container("d1", 100, 100);
        let c2 = sim.add_container("d2", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c1, 80), (c2, 80)],
            hold: 3.0,
            phase: 0,
            events: events.clone(),
            tag: "A",
        }));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c2, 80), (c1, 80)],
            hold: 3.0,
            phase: 0,
            events: events.clone(),
            tag: "B",
        }));
        sim.run();
        sim.assert_quiescent();
        let ev = events.lock().unwrap();
        assert_eq!(ev.as_slice(), &[(0.0, "A"), (3.0, "B")]);
        assert_eq!(sim.container(c1).level(), 100);
        assert_eq!(sim.container(c2).level(), 100);
    }

    #[test]
    fn fifo_no_overtaking_even_if_satisfiable() {
        // Big request queues first; a small request that *could* be served
        // must wait behind it (strict FIFO, like SimPy).
        let mut sim = Simulation::new(4);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        // Holder takes 60 at t=0 for 10s.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 60)],
            hold: 10.0,
            phase: 0,
            events: events.clone(),
            tag: "holder",
        }));
        // Big wants 80 -> must queue.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 80)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "big",
        }));
        // Small wants 30 -> satisfiable immediately (level is 40), but
        // strict FIFO queues it behind big, and after big's grant only 20
        // remain, so small must wait for big's release at t=11.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 30)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "small",
        }));
        sim.run();
        sim.assert_quiescent();
        let ev = events.lock().unwrap();
        assert_eq!(
            ev.as_slice(),
            &[(0.0, "holder"), (10.0, "big"), (11.0, "small")]
        );
    }

    #[test]
    fn zero_amount_requests_complete_synchronously() {
        let mut sim = Simulation::new(5);
        let c = sim.add_container("qpu", 10, 0);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 0)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "noop",
        }));
        sim.run();
        assert_eq!(events.lock().unwrap().as_slice(), &[(0.0, "noop")]);
    }

    #[test]
    fn duplicate_containers_in_request_are_merged() {
        let mut sim = Simulation::new(6);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 30), (c, 30)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "dup",
        }));
        sim.run_until(0.5);
        assert_eq!(sim.container(c).level(), 40); // 100 - 60
        sim.run();
        assert_eq!(sim.container(c).level(), 100);
    }

    #[test]
    fn deposit_and_withdraw_wake_waiters() {
        let mut sim = Simulation::new(7);
        let c = sim.add_container("qpu", 100, 0);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 50)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "waiter",
        }));
        sim.run(); // waiter blocks, heap empties
        assert_eq!(sim.blocked_processes(), 1);
        sim.deposit(c, 50);
        sim.run();
        sim.assert_quiescent();
        assert_eq!(events.lock().unwrap().as_slice(), &[(0.0, "waiter")]);
    }

    struct Sleeper;
    impl Coroutine for Sleeper {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            Step::Wait(Effect::Suspend)
        }
    }

    #[test]
    fn suspend_then_wake() {
        let mut sim = Simulation::new(8);
        let pid = sim.spawn(Box::new(Sleeper));
        sim.run();
        assert!(!sim.is_done(pid));
        assert!(sim.wake(pid));
        sim.run();
        // Sleeper suspends forever each resume; wake it once more and it
        // suspends again — state machine remains consistent.
        assert!(!sim.is_done(pid));
        assert!(sim.wake(pid));
        assert!(!sim.wake(pid)); // already scheduled, wake is a no-op
    }

    #[test]
    fn kill_terminates_in_every_wait_state() {
        // Sleeping (Scheduled with a pending timeout event).
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(21);
        let pid = sim.spawn(Box::new(Ticker {
            dt: 5.0,
            n: 10,
            fired: fired.clone(),
        }));
        sim.run_until(7.0); // fired at t=0 and t=5
        assert!(sim.kill(pid));
        assert!(sim.is_done(pid));
        assert!(!sim.kill(pid)); // already done: no-op
        sim.run();
        // The pending t=10 event is stale; no further fires.
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(sim.live_processes(), 0);

        // Suspended.
        let mut sim = Simulation::new(22);
        let pid = sim.spawn(Box::new(Sleeper));
        sim.run();
        assert!(sim.kill(pid));
        assert!(!sim.wake(pid)); // retired slot cannot be woken
        assert_eq!(sim.live_processes(), 0);
    }

    #[test]
    fn kill_cancels_queued_request_and_unblocks_successor() {
        let mut sim = Simulation::new(23);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        // Holder takes 80 for 10s; "big" queues for 90 and blocks "small"
        // (30) behind it under strict FIFO.
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 80)],
            hold: 10.0,
            phase: 0,
            events: events.clone(),
            tag: "holder",
        }));
        let big = sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 90)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "big",
        }));
        sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 30)],
            hold: 1.0,
            phase: 0,
            events: events.clone(),
            tag: "small",
        }));
        sim.run_until(1.0);
        assert_eq!(sim.blocked_processes(), 2);
        // Killing the queued head cancels its request; "small" (level 20…
        // no: 100-80=20 < 30) still waits for the holder's release, but is
        // now the queue head and runs at t=10 instead of never.
        assert!(sim.kill(big));
        assert_eq!(sim.blocked_processes(), 1);
        sim.run();
        sim.assert_quiescent();
        let ev = events.lock().unwrap();
        assert_eq!(ev.as_slice(), &[(0.0, "holder"), (10.0, "small")]);
        assert_eq!(sim.container(c).level(), 100);
    }

    #[test]
    fn killed_holder_leaks_units_until_killer_deposits() {
        // kill() does not return held units — that is the killer's job.
        let mut sim = Simulation::new(24);
        let c = sim.add_container("qpu", 100, 100);
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let holder = sim.spawn(Box::new(MultiGetter {
            parts: vec![(c, 60)],
            hold: 100.0,
            phase: 0,
            events: events.clone(),
            tag: "holder",
        }));
        sim.run_until(1.0);
        assert_eq!(sim.container(c).level(), 40);
        assert!(sim.kill(holder));
        assert_eq!(sim.container(c).level(), 40); // still held
        sim.deposit(c, 60); // killer's cleanup
        assert_eq!(sim.container(c).level(), 100);
    }

    #[test]
    fn run_until_stops_at_bound() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::new(9);
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 100,
            fired: fired.clone(),
        }));
        sim.run_until(10.5);
        assert_eq!(sim.now(), 10.5);
        // Ticks at t=0..=10 → 11 resumes... ticker fires on each resume
        // until n exhausted; fired counts resumes where n>0: t=0,1,..,10.
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 11);
        sim.run();
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn deterministic_event_interleaving() {
        // Two identical runs must produce identical traces.
        let run = || {
            let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut sim = Simulation::new(42);
            let c1 = sim.add_container("a", 50, 50);
            let c2 = sim.add_container("b", 50, 50);
            for i in 0..10u64 {
                sim.spawn(Box::new(MultiGetter {
                    parts: vec![(c1, 20 + (i % 3) * 10), (c2, 10 + (i % 4) * 10)],
                    hold: 1.0 + i as f64 * 0.25,
                    phase: 0,
                    events: events.clone(),
                    tag: "job",
                }));
            }
            sim.run();
            sim.assert_quiescent();
            let v = events.lock().unwrap().clone();
            (v, sim.now(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn max_events_guard_fires() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut sim = Simulation::with_config(
            1,
            SimConfig {
                trace_capacity: 0,
                max_events: 10,
            },
        );
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 1000,
            fired,
        }));
        sim.run();
    }

    /// A producer that puts `amount` into a container `n` times with no
    /// delay; blocks whenever the container is full.
    struct BlindProducer {
        container: ContainerId,
        amount: u64,
        n: u32,
        puts_done: std::sync::Arc<std::sync::Mutex<Vec<f64>>>,
        phase: u8,
    }
    impl Coroutine for BlindProducer {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            if self.phase == 1 {
                self.puts_done.lock().unwrap().push(cx.now());
                self.n -= 1;
                self.phase = 0;
            }
            if self.n == 0 {
                return Step::Done;
            }
            self.phase = 1;
            Step::Wait(Effect::Put {
                container: self.container,
                amount: self.amount,
            })
        }
    }

    /// A consumer that drains `amount` every `period` seconds.
    struct SlowConsumer {
        container: ContainerId,
        amount: u64,
        period: f64,
        n: u32,
        phase: u8,
    }
    impl Coroutine for SlowConsumer {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    if self.n == 0 {
                        return Step::Done;
                    }
                    self.n -= 1;
                    self.phase = 1;
                    Step::Wait(Effect::Timeout(self.period))
                }
                _ => {
                    self.phase = 0;
                    Step::Wait(Effect::Get {
                        container: self.container,
                        amount: self.amount,
                    })
                }
            }
        }
    }

    #[test]
    fn puts_block_on_full_container() {
        // Bounded-buffer: capacity 10, producer pushes 5×5 instantly but
        // must wait for the consumer to drain.
        let mut sim = Simulation::new(12);
        let c = sim.add_container("buf", 10, 0);
        let puts = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.spawn(Box::new(BlindProducer {
            container: c,
            amount: 5,
            n: 5,
            puts_done: puts.clone(),
            phase: 0,
        }));
        sim.spawn(Box::new(SlowConsumer {
            container: c,
            amount: 5,
            period: 10.0,
            n: 5,
            phase: 0,
        }));
        sim.run();
        sim.assert_quiescent();
        let puts = puts.lock().unwrap();
        // First two puts fit immediately (level 0→5→10); each further put
        // waits for a drain at t = 10, 20, 30.
        assert_eq!(puts.as_slice(), &[0.0, 0.0, 10.0, 20.0, 30.0]);
        assert_eq!(sim.container(c).level(), 0); // 25 in, 25 out
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn external_withdraw_checks_level() {
        let mut sim = Simulation::new(13);
        let c = sim.add_container("x", 10, 5);
        sim.withdraw(c, 6);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn external_deposit_checks_capacity() {
        let mut sim = Simulation::new(14);
        let c = sim.add_container("x", 10, 5);
        sim.deposit(c, 6);
    }

    #[test]
    #[should_panic(expected = "never satisfiable")]
    fn over_capacity_request_rejected_eagerly() {
        struct Greedy {
            c: ContainerId,
        }
        impl Coroutine for Greedy {
            fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
                Step::Wait(Effect::Get {
                    container: self.c,
                    amount: 11,
                })
            }
        }
        let mut sim = Simulation::new(15);
        let c = sim.add_container("x", 10, 10);
        sim.spawn(Box::new(Greedy { c }));
        sim.run();
    }

    #[test]
    fn tracing_records_lifecycle() {
        let mut sim = Simulation::with_config(
            11,
            SimConfig {
                trace_capacity: 100,
                max_events: u64::MAX,
            },
        );
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        sim.spawn(Box::new(Ticker {
            dt: 1.0,
            n: 1,
            fired,
        }));
        sim.run();
        let kinds: Vec<_> = sim.trace().iter().map(|r| &r.kind).collect();
        assert!(matches!(kinds[0], TraceKind::Spawn));
        assert!(matches!(kinds.last().unwrap(), TraceKind::Finish));
    }
}
