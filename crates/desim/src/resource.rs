//! Counting resources: a thin, self-documenting wrapper over
//! [`Container`](crate::Container)
//! for the common "N identical servers" pattern (SimPy's `Resource`).

use crate::container::ContainerId;
use crate::kernel::Simulation;
use crate::process::Effect;

/// A pool of `n` interchangeable servers. Acquire takes one unit, release
/// returns it. Built on a [`crate::Container`] whose *level* counts free
/// servers.
#[derive(Debug, Clone, Copy)]
pub struct Resource {
    container: ContainerId,
}

impl Resource {
    /// Registers a resource with `slots` servers.
    pub fn new(sim: &mut Simulation, label: impl Into<String>, slots: u64) -> Self {
        let container = sim.add_container(label, slots, slots);
        Resource { container }
    }

    /// The backing container id (for queries).
    #[inline]
    pub fn container(&self) -> ContainerId {
        self.container
    }

    /// Effect that acquires one server (yield this from a coroutine).
    #[inline]
    pub fn acquire(&self) -> Effect {
        Effect::Get {
            container: self.container,
            amount: 1,
        }
    }

    /// Effect that acquires `n` servers at once.
    #[inline]
    pub fn acquire_n(&self, n: u64) -> Effect {
        Effect::Get {
            container: self.container,
            amount: n,
        }
    }

    /// Effect that releases one server.
    #[inline]
    pub fn release(&self) -> Effect {
        Effect::Put {
            container: self.container,
            amount: 1,
        }
    }

    /// Effect that releases `n` servers.
    #[inline]
    pub fn release_n(&self, n: u64) -> Effect {
        Effect::Put {
            container: self.container,
            amount: n,
        }
    }

    /// Free servers right now.
    #[inline]
    pub fn available(&self, sim: &Simulation) -> u64 {
        sim.container(self.container).level()
    }

    /// Servers currently held.
    #[inline]
    pub fn in_use(&self, sim: &Simulation) -> u64 {
        sim.container(self.container).in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Coroutine, Ctx, Step};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Acquire -> work -> release, tracking peak concurrency.
    struct Worker {
        res: Resource,
        work: f64,
        phase: u8,
        active: Arc<AtomicU64>,
        peak: Arc<AtomicU64>,
    }
    impl Coroutine for Worker {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(self.res.acquire())
                }
                1 => {
                    let a = self.active.fetch_add(1, Ordering::Relaxed) + 1;
                    self.peak.fetch_max(a, Ordering::Relaxed);
                    self.phase = 2;
                    Step::Wait(Effect::Timeout(self.work))
                }
                2 => {
                    self.active.fetch_sub(1, Ordering::Relaxed);
                    self.phase = 3;
                    Step::Wait(self.res.release())
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn concurrency_capped_by_slots() {
        let mut sim = Simulation::new(1);
        let res = Resource::new(&mut sim, "servers", 3);
        let active = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            sim.spawn(Box::new(Worker {
                res,
                work: 5.0,
                phase: 0,
                active: active.clone(),
                peak: peak.clone(),
            }));
        }
        sim.run();
        sim.assert_quiescent();
        assert_eq!(peak.load(Ordering::Relaxed), 3);
        // 10 jobs, 3 servers, 5s each → ceil(10/3)*5 = 20s makespan.
        assert_eq!(sim.now(), 20.0);
        assert_eq!(res.available(&sim), 3);
    }

    #[test]
    fn acquire_n_takes_multiple_slots() {
        let mut sim = Simulation::new(2);
        let res = Resource::new(&mut sim, "servers", 4);
        let active = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        // A job needing all 4 slots excludes everything else.
        struct Greedy {
            res: Resource,
            phase: u8,
        }
        impl Coroutine for Greedy {
            fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Step::Wait(self.res.acquire_n(4))
                    }
                    1 => {
                        self.phase = 2;
                        Step::Wait(Effect::Timeout(10.0))
                    }
                    2 => {
                        self.phase = 3;
                        Step::Wait(self.res.release_n(4))
                    }
                    _ => Step::Done,
                }
            }
        }
        sim.spawn(Box::new(Greedy { res, phase: 0 }));
        sim.spawn(Box::new(Worker {
            res,
            work: 1.0,
            phase: 0,
            active,
            peak,
        }));
        sim.run();
        // Worker starts only after greedy releases at t=10.
        assert_eq!(sim.now(), 11.0);
    }
}
