//! Deterministic pseudo-random number generators.
//!
//! The simulator carries its own small PRNGs (`splitmix64` for seeding and
//! `xoshiro256**` for the main stream) instead of relying on `rand`'s
//! algorithm choices, so that simulation results are bit-reproducible across
//! `rand` versions and platforms. The generators still implement
//! [`rand::RngCore`] so the full `rand` distribution machinery can be layered
//! on top when convenient.

use rand::{Error, RngCore};

/// SplitMix64: a tiny, fast generator used to expand one 64-bit seed into
/// independent sub-seeds (per component / per replication).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator. Fast, high quality, 2^256-1 period.
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators" (2019).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the state via SplitMix64, as recommended by the authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; splitmix cannot produce
        // four consecutive zeros in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Derives an independent child generator. Streams derived with distinct
    /// labels are statistically independent.
    pub fn derive(&self, label: u64) -> Self {
        let mut sm = SplitMix64::new(self.s[0] ^ label.wrapping_mul(0xA24B_AED4_963E_E407));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        Xoshiro256StarStar { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method
    /// (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element index from a non-empty slice.
    pub fn choose_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot choose from an empty slice");
        self.next_below(len as u64) as usize
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (Xoshiro256StarStar::next_u64(self) >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&Xoshiro256StarStar::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = Xoshiro256StarStar::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical C impl.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = Xoshiro256StarStar::new(7);
        let mut c = Xoshiro256StarStar::new(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = Xoshiro256StarStar::new(99);
        let mut d1 = root.derive(1);
        let mut d2 = root.derive(2);
        assert_ne!(d1.next_u64(), d2.next_u64());
        // Deriving again with same label reproduces the stream.
        let mut d1b = root.derive(1);
        let mut d1c = root.derive(1);
        assert_eq!(d1b.next_u64(), d1c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_covers_bounds() {
        let mut r = Xoshiro256StarStar::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "bounds should be reachable");
    }

    #[test]
    fn next_below_unbiased_smoke() {
        let mut r = Xoshiro256StarStar::new(11);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 5.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256StarStar::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        let mut r = Xoshiro256StarStar::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
