//! A typed FIFO store (SimPy's `Store`): blocking hand-off of items between
//! processes.
//!
//! The blocking is implemented with a token [`crate::Container`] counting the
//! items, while the items themselves live in a shared `VecDeque` behind a
//! mutex (processes may run from different threads in parallel replications,
//! so the payload store is `Send + Sync`).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::container::ContainerId;
use crate::kernel::Simulation;
use crate::process::Effect;

/// A FIFO channel of `T` items with SimPy `Store` semantics.
///
/// Protocol for a consumer coroutine:
/// 1. yield [`Store::get_effect`] (blocks until an item token is available);
/// 2. on resume, call [`Store::take`] to pop the item.
///
/// Producers push with [`Store::put`] (never blocks if the store is
/// unbounded) followed by yielding [`Store::put_effect`].
pub struct Store<T> {
    items: Arc<Mutex<VecDeque<T>>>,
    tokens: ContainerId,
}

impl<T> Clone for Store<T> {
    fn clone(&self) -> Self {
        Store {
            items: Arc::clone(&self.items),
            tokens: self.tokens,
        }
    }
}

impl<T: Send + 'static> Store<T> {
    /// Creates a store holding at most `capacity` items.
    pub fn new(sim: &mut Simulation, label: impl Into<String>, capacity: u64) -> Self {
        let tokens = sim.add_container(label, capacity, 0);
        Store {
            items: Arc::new(Mutex::new(VecDeque::new())),
            tokens,
        }
    }

    /// Deposits an item payload. Call *before* yielding
    /// [`Store::put_effect`]; the effect blocks while the store is full.
    pub fn put(&self, item: T) {
        self.items.lock().unwrap().push_back(item);
    }

    /// Effect signalling one deposited item (may block when full).
    pub fn put_effect(&self) -> Effect {
        Effect::Put {
            container: self.tokens,
            amount: 1,
        }
    }

    /// Effect that blocks until an item is available.
    pub fn get_effect(&self) -> Effect {
        Effect::Get {
            container: self.tokens,
            amount: 1,
        }
    }

    /// Pops the item corresponding to a granted [`Store::get_effect`].
    pub fn take(&self) -> T {
        self.items
            .lock()
            .unwrap()
            .pop_front()
            .expect("Store::take without a granted get (protocol bug)")
    }

    /// Items currently queued.
    pub fn len(&self, sim: &Simulation) -> u64 {
        sim.container(self.tokens).level()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self, sim: &Simulation) -> bool {
        self.len(sim) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Coroutine, Ctx, Step};

    struct Producer {
        store: Store<u32>,
        next: u32,
        count: u32,
        phase: u8,
    }
    impl Coroutine for Producer {
        fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    if self.count == 0 {
                        return Step::Done;
                    }
                    self.count -= 1;
                    self.store.put(self.next);
                    self.next += 1;
                    self.phase = 1;
                    Step::Wait(self.store.put_effect())
                }
                _ => {
                    self.phase = 0;
                    Step::Wait(Effect::Timeout(1.0))
                }
            }
        }
    }

    struct Consumer {
        store: Store<u32>,
        got: std::sync::Arc<Mutex<Vec<(f64, u32)>>>,
        phase: u8,
        remaining: u32,
    }
    impl Coroutine for Consumer {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    if self.remaining == 0 {
                        return Step::Done;
                    }
                    self.phase = 1;
                    Step::Wait(self.store.get_effect())
                }
                _ => {
                    self.remaining -= 1;
                    let item = self.store.take();
                    self.got.lock().unwrap().push((cx.now(), item));
                    self.phase = 0;
                    Step::Wait(Effect::Timeout(0.0))
                }
            }
        }
    }

    #[test]
    fn producer_consumer_fifo() {
        let mut sim = Simulation::new(1);
        let store: Store<u32> = Store::new(&mut sim, "jobs", 100);
        let got = std::sync::Arc::new(Mutex::new(Vec::new()));
        sim.spawn(Box::new(Producer {
            store: store.clone(),
            next: 0,
            count: 5,
            phase: 0,
        }));
        sim.spawn(Box::new(Consumer {
            store: store.clone(),
            got: got.clone(),
            phase: 0,
            remaining: 5,
        }));
        sim.run();
        sim.assert_quiescent();
        let got = got.lock().unwrap();
        let items: Vec<u32> = got.iter().map(|&(_, i)| i).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
        assert!(store.is_empty(&sim));
    }

    #[test]
    fn consumer_blocks_until_producer_arrives() {
        let mut sim = Simulation::new(2);
        let store: Store<u32> = Store::new(&mut sim, "jobs", 10);
        let got = std::sync::Arc::new(Mutex::new(Vec::new()));
        sim.spawn(Box::new(Consumer {
            store: store.clone(),
            got: got.clone(),
            phase: 0,
            remaining: 1,
        }));
        // Producer starts at t=5.
        sim.spawn_after(
            5.0,
            Box::new(Producer {
                store: store.clone(),
                next: 42,
                count: 1,
                phase: 0,
            }),
        );
        sim.run();
        let got = got.lock().unwrap();
        assert_eq!(got.as_slice(), &[(5.0, 42)]);
    }
}
