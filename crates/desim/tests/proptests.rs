//! Property-based tests for the DES kernel: unit conservation, FIFO grant
//! order, determinism, and statistics invariants under randomized workloads.

use proptest::prelude::*;
use qcs_desim::{Coroutine, Ctx, Effect, Simulation, Step};
use std::sync::{Arc, Mutex};

/// A generic job: atomically grabs `parts` across containers, holds for
/// `hold`, releases, and logs its grant order.
struct Job {
    parts: Vec<(usize, u64)>, // (container index, amount)
    hold: f64,
    phase: u8,
    id: usize,
    containers: Arc<Vec<qcs_desim::ContainerId>>,
    log: Arc<Mutex<Vec<(usize, f64)>>>,
}

impl Coroutine for Job {
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                let parts = self
                    .parts
                    .iter()
                    .map(|&(c, a)| (self.containers[c], a))
                    .collect();
                Step::Wait(Effect::GetAll(parts))
            }
            1 => {
                self.log.lock().unwrap().push((self.id, cx.now()));
                self.phase = 2;
                Step::Wait(Effect::Timeout(self.hold))
            }
            2 => {
                self.phase = 3;
                let parts = self
                    .parts
                    .iter()
                    .map(|&(c, a)| (self.containers[c], a))
                    .collect();
                Step::Wait(Effect::PutAll(parts))
            }
            _ => Step::Done,
        }
    }
}

#[derive(Debug, Clone)]
struct JobSpec {
    parts: Vec<(usize, u64)>,
    hold: f64,
    delay: f64,
}

fn job_spec(n_containers: usize, cap: u64) -> impl Strategy<Value = JobSpec> {
    let part = (0..n_containers, 1..=cap);
    (
        proptest::collection::vec(part, 1..=n_containers.min(3)),
        0.0f64..10.0,
        0.0f64..5.0,
    )
        .prop_map(move |(mut parts, hold, delay)| {
            // The kernel merges duplicate containers; keep merged demand
            // feasible (≤ cap) — an over-capacity request is rejected
            // eagerly by the kernel as never satisfiable.
            parts.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, u64)> = Vec::new();
            for (c, a) in parts {
                match merged.last_mut() {
                    Some((lc, la)) if *lc == c => *la = (*la + a).min(cap),
                    _ => merged.push((c, a)),
                }
            }
            JobSpec {
                parts: merged,
                hold,
                delay,
            }
        })
}

fn run_workload(specs: &[JobSpec], n_containers: usize, cap: u64) -> (Vec<(usize, f64)>, f64, u64) {
    let mut sim = Simulation::new(7);
    let ids: Vec<_> = (0..n_containers)
        .map(|i| sim.add_container(format!("c{i}"), cap, cap))
        .collect();
    let ids = Arc::new(ids);
    let log = Arc::new(Mutex::new(Vec::new()));
    for (i, spec) in specs.iter().enumerate() {
        sim.spawn_after(
            spec.delay,
            Box::new(Job {
                parts: spec.parts.clone(),
                hold: spec.hold,
                phase: 0,
                id: i,
                containers: ids.clone(),
                log: log.clone(),
            }),
        );
    }
    sim.run();
    sim.assert_quiescent();
    // Conservation: every container must be back to full capacity.
    for &c in ids.iter() {
        assert_eq!(sim.container(c).level(), cap, "container leaked units");
    }
    let l = log.lock().unwrap().clone();
    (l, sim.now(), sim.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job (all are feasible by construction) eventually runs, and all
    /// units are returned (conservation is asserted inside `run_workload`).
    #[test]
    fn all_feasible_jobs_complete(specs in proptest::collection::vec(job_spec(4, 100), 1..40)) {
        let (log, _, _) = run_workload(&specs, 4, 100);
        prop_assert_eq!(log.len(), specs.len());
    }

    /// Identical workloads produce bit-identical schedules (determinism).
    #[test]
    fn deterministic_replay(specs in proptest::collection::vec(job_spec(3, 50), 1..25)) {
        let a = run_workload(&specs, 3, 50);
        let b = run_workload(&specs, 3, 50);
        prop_assert_eq!(a, b);
    }

    /// Jobs submitted at the same instant with a total demand below capacity
    /// are all granted at that instant (no spurious blocking).
    #[test]
    fn no_spurious_blocking(amounts in proptest::collection::vec(1u64..10, 1..10)) {
        let total: u64 = amounts.iter().sum();
        let specs: Vec<JobSpec> = amounts
            .iter()
            .map(|&a| JobSpec { parts: vec![(0, a)], hold: 1.0, delay: 0.0 })
            .collect();
        let (log, _, _) = run_workload(&specs, 1, total.max(1));
        for &(_, t) in &log {
            prop_assert_eq!(t, 0.0);
        }
    }

    /// FIFO: for jobs contending on a single container with equal arrival
    /// time, grants happen in spawn order.
    #[test]
    fn fifo_grant_order(amounts in proptest::collection::vec(30u64..80, 2..12)) {
        let specs: Vec<JobSpec> = amounts
            .iter()
            .map(|&a| JobSpec { parts: vec![(0, a)], hold: 2.0, delay: 0.0 })
            .collect();
        let (log, _, _) = run_workload(&specs, 1, 100);
        // Grant times must be non-decreasing in job id (spawn order).
        for w in log.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "grant order violated: {:?}", log);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Simulation time never regresses and final time bounds every grant.
    #[test]
    fn time_monotone(specs in proptest::collection::vec(job_spec(2, 60), 1..30)) {
        let (log, t_end, _) = run_workload(&specs, 2, 60);
        for &(_, t) in &log {
            prop_assert!(t <= t_end);
            prop_assert!(t >= 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn welford_merge_associative(xs in proptest::collection::vec(-1e3f64..1e3, 1..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut left = qcs_desim::Welford::new();
        let mut right = qcs_desim::Welford::new();
        let mut whole = qcs_desim::Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < split { left.push(x) } else { right.push(x) }
            whole.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4);
    }

    /// Histogram never loses observations.
    #[test]
    fn histogram_conserves_count(xs in proptest::collection::vec(-2.0f64..3.0, 0..500)) {
        let mut h = qcs_desim::Histogram::new(0.0, 1.0, 17);
        for &x in &xs { h.push(x); }
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }
}
