//! Integration tests for the priority-request and interrupt extensions.

use std::sync::{Arc, Mutex};

use qcs_desim::process::{Coroutine, Ctx, Effect, ProcessId, Step};
use qcs_desim::{ContainerId, Simulation};

type Log = Arc<Mutex<Vec<(f64, &'static str)>>>;

/// get(prio) → hold → put, logging the grant instant.
struct PriJob {
    container: ContainerId,
    amount: u64,
    priority: i32,
    hold: f64,
    phase: u8,
    log: Log,
    tag: &'static str,
}

impl Coroutine for PriJob {
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Wait(Effect::GetPri {
                    container: self.container,
                    amount: self.amount,
                    priority: self.priority,
                })
            }
            1 => {
                self.log.lock().unwrap().push((cx.now(), self.tag));
                self.phase = 2;
                Step::Wait(Effect::Timeout(self.hold))
            }
            2 => {
                self.phase = 3;
                Step::Wait(Effect::Put {
                    container: self.container,
                    amount: self.amount,
                })
            }
            _ => Step::Done,
        }
    }
}

/// Spawns a PriJob after a start delay (so queue arrival order is explicit).
#[allow(clippy::too_many_arguments)]
fn spawn_pri(
    sim: &mut Simulation,
    delay: f64,
    container: ContainerId,
    amount: u64,
    priority: i32,
    hold: f64,
    log: &Log,
    tag: &'static str,
) -> ProcessId {
    sim.spawn_after(
        delay,
        Box::new(PriJob {
            container,
            amount,
            priority,
            hold,
            phase: 0,
            log: log.clone(),
            tag,
        }),
    )
}

#[test]
fn high_priority_overtakes_queued_low_priority() {
    let mut sim = Simulation::new(1);
    let c = sim.add_container("qpu", 100, 100);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    // Holder occupies everything until t = 10.
    spawn_pri(&mut sim, 0.0, c, 100, 0, 10.0, &log, "holder");
    // Low-priority waiter queues at t = 1.
    spawn_pri(&mut sim, 1.0, c, 60, 5, 1.0, &log, "low");
    // High-priority (lower value) waiter queues at t = 2 — later arrival,
    // but must be served first.
    spawn_pri(&mut sim, 2.0, c, 60, -5, 1.0, &log, "high");
    sim.run();
    sim.assert_quiescent();
    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        &[(0.0, "holder"), (10.0, "high"), (11.0, "low")]
    );
}

#[test]
fn equal_priority_stays_fifo() {
    let mut sim = Simulation::new(2);
    let c = sim.add_container("qpu", 100, 100);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    spawn_pri(&mut sim, 0.0, c, 100, 0, 5.0, &log, "holder");
    spawn_pri(&mut sim, 1.0, c, 80, 3, 1.0, &log, "first");
    spawn_pri(&mut sim, 2.0, c, 80, 3, 1.0, &log, "second");
    sim.run();
    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        &[(0.0, "holder"), (5.0, "first"), (6.0, "second")]
    );
}

#[test]
fn priority_get_overtakes_at_submission_time() {
    // A queued low-priority request must not block an immediately
    // satisfiable high-priority one: level is 40, "low" wants 60 (queued),
    // "high" wants 30 and can be served at once.
    let mut sim = Simulation::new(3);
    let c = sim.add_container("qpu", 100, 100);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    spawn_pri(&mut sim, 0.0, c, 60, 0, 10.0, &log, "holder"); // leaves 40
    spawn_pri(&mut sim, 1.0, c, 60, 2, 1.0, &log, "low"); // blocks
    spawn_pri(&mut sim, 2.0, c, 30, -1, 1.0, &log, "high"); // fits now
    sim.run();
    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        &[(0.0, "holder"), (2.0, "high"), (10.0, "low")]
    );
}

#[test]
fn plain_get_cannot_overtake_same_priority_queue() {
    // Control for the test above: with equal priorities the satisfiable
    // late request must wait behind the queued head (strict FIFO).
    let mut sim = Simulation::new(4);
    let c = sim.add_container("qpu", 100, 100);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    spawn_pri(&mut sim, 0.0, c, 60, 0, 10.0, &log, "holder");
    spawn_pri(&mut sim, 1.0, c, 80, 0, 1.0, &log, "big");
    spawn_pri(&mut sim, 2.0, c, 30, 0, 1.0, &log, "small");
    sim.run();
    let log = log.lock().unwrap();
    assert_eq!(log[1], (10.0, "big"));
    assert_eq!(log[2], (11.0, "small"));
}

/// Multi-container priority request (GetAllPri) + PutAll release.
struct MultiPriJob {
    parts: Vec<(ContainerId, u64)>,
    priority: i32,
    hold: f64,
    phase: u8,
    log: Log,
    tag: &'static str,
}

impl Coroutine for MultiPriJob {
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Wait(Effect::GetAllPri {
                    parts: self.parts.clone(),
                    priority: self.priority,
                })
            }
            1 => {
                self.log.lock().unwrap().push((cx.now(), self.tag));
                self.phase = 2;
                Step::Wait(Effect::Timeout(self.hold))
            }
            2 => {
                self.phase = 3;
                Step::Wait(Effect::PutAll(self.parts.clone()))
            }
            _ => Step::Done,
        }
    }
}

#[test]
fn multiget_priority_is_deadlock_free_and_ordered() {
    let mut sim = Simulation::new(5);
    let c1 = sim.add_container("d1", 100, 100);
    let c2 = sim.add_container("d2", 100, 100);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    sim.spawn(Box::new(MultiPriJob {
        parts: vec![(c1, 90), (c2, 90)],
        priority: 0,
        hold: 5.0,
        phase: 0,
        log: log.clone(),
        tag: "holder",
    }));
    sim.spawn_after(
        1.0,
        Box::new(MultiPriJob {
            parts: vec![(c1, 60), (c2, 60)],
            priority: 1,
            hold: 1.0,
            phase: 0,
            log: log.clone(),
            tag: "low",
        }),
    );
    sim.spawn_after(
        2.0,
        Box::new(MultiPriJob {
            parts: vec![(c2, 60), (c1, 60)],
            priority: -1,
            hold: 1.0,
            phase: 0,
            log: log.clone(),
            tag: "high",
        }),
    );
    sim.run();
    sim.assert_quiescent();
    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        &[(0.0, "holder"), (5.0, "high"), (6.0, "low")]
    );
    assert_eq!(sim.container(c1).level(), 100);
    assert_eq!(sim.container(c2).level(), 100);
}

/// Sleeps `dt`, then records whether the sleep was interrupted.
struct Sleeper {
    dt: f64,
    phase: u8,
    log: Log,
}

impl Coroutine for Sleeper {
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Wait(Effect::Timeout(self.dt))
            }
            _ => {
                let tag = if cx.take_interrupted() {
                    "interrupted"
                } else {
                    "completed"
                };
                self.log.lock().unwrap().push((cx.now(), tag));
                Step::Done
            }
        }
    }
}

/// Interrupts a target pid after a delay.
struct Interrupter {
    delay: f64,
    target: ProcessId,
    phase: u8,
}

impl Coroutine for Interrupter {
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Wait(Effect::Timeout(self.delay))
            }
            _ => {
                cx.interrupt(self.target);
                Step::Done
            }
        }
    }
}

#[test]
fn interrupt_cuts_timeout_short() {
    let mut sim = Simulation::new(6);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let sleeper = sim.spawn(Box::new(Sleeper {
        dt: 100.0,
        phase: 0,
        log: log.clone(),
    }));
    sim.spawn(Box::new(Interrupter {
        delay: 5.0,
        target: sleeper,
        phase: 0,
    }));
    let end = sim.run();
    assert_eq!(log.lock().unwrap().as_slice(), &[(5.0, "interrupted")]);
    // The stale t=100 event must not extend the run.
    assert_eq!(end, 5.0);
    assert!(sim.is_done(sleeper));
}

#[test]
fn uninterrupted_sleep_completes_normally() {
    let mut sim = Simulation::new(7);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    sim.spawn(Box::new(Sleeper {
        dt: 3.0,
        phase: 0,
        log: log.clone(),
    }));
    sim.run();
    assert_eq!(log.lock().unwrap().as_slice(), &[(3.0, "completed")]);
}

/// Blocks on a Get and reports whether the wait was interrupted; on a
/// normal grant it releases the units again.
struct Waiter {
    container: ContainerId,
    amount: u64,
    phase: u8,
    log: Log,
}

impl Coroutine for Waiter {
    fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Wait(Effect::Get {
                    container: self.container,
                    amount: self.amount,
                })
            }
            1 => {
                if cx.take_interrupted() {
                    self.log.lock().unwrap().push((cx.now(), "gave-up"));
                    return Step::Done;
                }
                self.log.lock().unwrap().push((cx.now(), "acquired"));
                self.phase = 2;
                Step::Wait(Effect::Put {
                    container: self.container,
                    amount: self.amount,
                })
            }
            _ => Step::Done,
        }
    }
}

#[test]
fn interrupt_cancels_queued_request_and_unblocks_successors() {
    let mut sim = Simulation::new(8);
    let c = sim.add_container("qpu", 100, 0);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    // Two waiters on an empty container: w1 wants 80, w2 wants 40.
    let w1 = sim.spawn(Box::new(Waiter {
        container: c,
        amount: 80,
        phase: 0,
        log: log.clone(),
    }));
    sim.spawn_after(
        1.0,
        Box::new(Waiter {
            container: c,
            amount: 40,
            phase: 0,
            log: log.clone(),
        }),
    );
    // Interrupt w1 at t=2 (reneging).
    sim.spawn(Box::new(Interrupter {
        delay: 2.0,
        target: w1,
        phase: 0,
    }));
    sim.run();
    // Deposit only 40: enough for w2 but not for w1 had it stayed queued.
    sim.deposit(c, 40);
    sim.run();
    sim.assert_quiescent();
    let log = log.lock().unwrap();
    assert_eq!(log.as_slice(), &[(2.0, "gave-up"), (2.0, "acquired")]);
    assert_eq!(sim.container(c).level(), 40, "w2 released its grant");
    assert_eq!(sim.blocked_processes(), 0);
}

#[test]
fn interrupt_cancellation_promotes_queue_head_immediately() {
    // Holder drains the container; w1 (head) and w2 queue behind. When w1
    // reneges, w2 becomes head; on release w2 — not w1 — is served.
    let mut sim = Simulation::new(9);
    let c = sim.add_container("qpu", 100, 100);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    spawn_pri(&mut sim, 0.0, c, 100, 0, 10.0, &log, "holder");
    let w1 = sim.spawn_after(
        1.0,
        Box::new(Waiter {
            container: c,
            amount: 100,
            phase: 0,
            log: log.clone(),
        }),
    );
    sim.spawn_after(
        2.0,
        Box::new(Waiter {
            container: c,
            amount: 100,
            phase: 0,
            log: log.clone(),
        }),
    );
    sim.spawn(Box::new(Interrupter {
        delay: 5.0,
        target: w1,
        phase: 0,
    }));
    sim.run();
    sim.assert_quiescent();
    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        &[(0.0, "holder"), (5.0, "gave-up"), (10.0, "acquired"),]
    );
}

#[test]
fn interrupt_wakes_suspended_with_flag() {
    struct Parked {
        phase: u8,
        log: Log,
    }
    impl Coroutine for Parked {
        fn resume(&mut self, cx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(Effect::Suspend)
                }
                _ => {
                    let tag = if cx.take_interrupted() {
                        "interrupted"
                    } else {
                        "woken"
                    };
                    self.log.lock().unwrap().push((cx.now(), tag));
                    Step::Done
                }
            }
        }
    }
    let mut sim = Simulation::new(10);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let p = sim.spawn(Box::new(Parked {
        phase: 0,
        log: log.clone(),
    }));
    sim.run();
    assert!(sim.interrupt(p));
    sim.run();
    assert_eq!(log.lock().unwrap().as_slice(), &[(0.0, "interrupted")]);
}

#[test]
fn interrupt_finished_process_is_noop() {
    let mut sim = Simulation::new(11);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let p = sim.spawn(Box::new(Sleeper {
        dt: 1.0,
        phase: 0,
        log: log.clone(),
    }));
    sim.run();
    assert!(sim.is_done(p));
    assert!(!sim.interrupt(p));
    assert!(!sim.interrupted(p));
}

#[test]
fn double_interrupt_is_stable() {
    let mut sim = Simulation::new(12);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let sleeper = sim.spawn(Box::new(Sleeper {
        dt: 50.0,
        phase: 0,
        log: log.clone(),
    }));
    sim.spawn(Box::new(Interrupter {
        delay: 3.0,
        target: sleeper,
        phase: 0,
    }));
    sim.spawn(Box::new(Interrupter {
        delay: 3.0,
        target: sleeper,
        phase: 0,
    }));
    sim.run();
    // Exactly one resume with the flag; the second interrupt hit an
    // already-rescheduled process and merely re-set the flag.
    assert_eq!(log.lock().unwrap().as_slice(), &[(3.0, "interrupted")]);
    assert!(sim.is_done(sleeper));
}

#[test]
fn determinism_with_priorities_and_interrupts() {
    let run = || {
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new(99);
        let c = sim.add_container("qpu", 80, 80);
        for i in 0..12u64 {
            let prio = (i % 4) as i32 - 2;
            spawn_pri(
                &mut sim,
                (i % 3) as f64,
                c,
                30 + (i % 3) * 15,
                prio,
                2.0 + (i % 5) as f64,
                &log,
                "job",
            );
        }
        sim.run();
        sim.assert_quiescent();
        let v = log.lock().unwrap().clone();
        (v, sim.now(), sim.events_processed())
    };
    assert_eq!(run(), run());
}

#[test]
fn stale_events_do_not_advance_run_until_clock() {
    // Sleeper parks an event at t = 100; the interrupt at t = 5 makes it
    // stale. run_until(50) must stop at 50, and draining the stale event
    // afterwards must not move the clock to 100.
    let mut sim = Simulation::new(13);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let sleeper = sim.spawn(Box::new(Sleeper {
        dt: 100.0,
        phase: 0,
        log: log.clone(),
    }));
    sim.spawn(Box::new(Interrupter {
        delay: 5.0,
        target: sleeper,
        phase: 0,
    }));
    let t = sim.run_until(50.0);
    assert_eq!(t, 50.0);
    assert!(sim.is_done(sleeper));
    let end = sim.run();
    assert_eq!(end, 50.0, "stale event must not advance the clock");
    assert_eq!(log.lock().unwrap().as_slice(), &[(5.0, "interrupted")]);
}

#[test]
fn reneging_watchdog_pattern() {
    // The documented reneging recipe: a watchdog interrupts a waiter that
    // has not been served within its patience. The premium resource is
    // held until t = 30; a waiter with patience 10 gives up at t = 10,
    // and a patient waiter (patience 100) is served at t = 30.
    let mut sim = Simulation::new(14);
    let c = sim.add_container("qpu", 100, 0);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let impatient = sim.spawn(Box::new(Waiter {
        container: c,
        amount: 100,
        phase: 0,
        log: log.clone(),
    }));
    sim.spawn_after(
        1.0,
        Box::new(Waiter {
            container: c,
            amount: 100,
            phase: 0,
            log: log.clone(),
        }),
    );
    sim.spawn(Box::new(Interrupter {
        delay: 10.0,
        target: impatient,
        phase: 0,
    }));
    sim.run();
    // Resource becomes available at t = 30.
    sim.spawn_after(
        30.0 - sim.now().max(0.0),
        Box::new(Sleeper {
            dt: 0.0,
            phase: 0,
            log: Arc::new(Mutex::new(Vec::new())),
        }),
    );
    sim.run();
    sim.deposit(c, 100);
    sim.run();
    let log = log.lock().unwrap();
    assert_eq!(log[0], (10.0, "gave-up"));
    assert_eq!(log[1].1, "acquired");
}

#[test]
fn priority_requests_interleave_with_plain_requests() {
    // Mixed traffic: plain Get (priority 0) and urgent GetPri(-1) against
    // the same container must serve urgents first but preserve FIFO among
    // plain requests.
    let mut sim = Simulation::new(15);
    let c = sim.add_container("qpu", 10, 10);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    spawn_pri(&mut sim, 0.0, c, 10, 0, 4.0, &log, "holder");
    spawn_pri(&mut sim, 1.0, c, 10, 0, 1.0, &log, "plain-1");
    spawn_pri(&mut sim, 2.0, c, 10, 0, 1.0, &log, "plain-2");
    spawn_pri(&mut sim, 3.0, c, 10, -1, 1.0, &log, "urgent");
    sim.run();
    sim.assert_quiescent();
    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        &[
            (0.0, "holder"),
            (4.0, "urgent"),
            (5.0, "plain-1"),
            (6.0, "plain-2"),
        ]
    );
}
