//! Strategy execution helpers shared by the harness binaries.

use qcs_calibration::ibm_fleet;
use qcs_qcloud::policies::{by_name, FairBroker, FidelityBroker, RlBroker, SpeedBroker};
use qcs_qcloud::simenv::RunResult;
use qcs_qcloud::{Broker, GymConfig, QCloudSimEnv, QJob, SimParams};

/// How to instantiate a strategy for a run.
#[derive(Debug, Clone)]
pub enum StrategySpec {
    /// One of the built-in policies by name (`speed`, `fidelity`, `fair`,
    /// `roundrobin`, `random`).
    Named(String),
    /// The RL policy, from a serialised [`qcs_rl::ActorCritic`] JSON.
    Rl {
        /// Policy JSON (from [`qcs_rl::ActorCritic::to_json`]).
        policy_json: String,
        /// The observation/normalisation config used in training.
        gym: GymConfig,
    },
}

impl StrategySpec {
    /// Strategy display name.
    pub fn name(&self) -> &str {
        match self {
            StrategySpec::Named(n) => n,
            StrategySpec::Rl { .. } => "rlbase",
        }
    }

    /// Builds the broker.
    pub fn broker(&self, seed: u64) -> Box<dyn Broker> {
        match self {
            StrategySpec::Named(n) => {
                by_name(n, seed).unwrap_or_else(|| panic!("unknown strategy '{n}'"))
            }
            StrategySpec::Rl { policy_json, gym } => Box::new(
                RlBroker::from_json(policy_json, gym.clone()).expect("invalid RL policy JSON"),
            ),
        }
    }
}

/// Runs one strategy over a job trace on the five-device paper fleet.
pub fn run_strategy(
    spec: &StrategySpec,
    jobs: Vec<QJob>,
    params: &SimParams,
    seed: u64,
) -> RunResult {
    let env = QCloudSimEnv::new(
        ibm_fleet(seed),
        spec.broker(seed),
        jobs,
        params.clone(),
        seed,
    );
    env.run()
}

/// Runs several strategies over the *same* job trace, in parallel across
/// OS threads (each strategy's simulation is independent).
pub fn run_strategies(
    specs: &[StrategySpec],
    jobs: &[QJob],
    params: &SimParams,
    seed: u64,
) -> Vec<RunResult> {
    let items: Vec<(StrategySpec, Vec<QJob>)> =
        specs.iter().map(|s| (s.clone(), jobs.to_vec())).collect();
    qcs_desim::parallel::par_map(items, specs.len(), |(spec, jobs)| {
        run_strategy(&spec, jobs, params, seed)
    })
}

/// The paper's four Table 2 strategies; the RL row requires a trained
/// policy JSON.
pub fn table2_strategies(rl_policy_json: String, gym: GymConfig) -> Vec<StrategySpec> {
    vec![
        StrategySpec::Named("speed".into()),
        StrategySpec::Named("fidelity".into()),
        StrategySpec::Named("fair".into()),
        StrategySpec::Rl {
            policy_json: rl_policy_json,
            gym,
        },
    ]
}

/// Convenience: builds plain brokers for tests.
pub fn builtin_brokers() -> Vec<Box<dyn Broker>> {
    vec![
        Box::new(SpeedBroker::new()),
        Box::new(FidelityBroker::new()),
        Box::new(FairBroker::new()),
    ]
}

/// Ensures the `results/` directory exists and returns its path.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("QCS_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    );
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_workload::smoke;

    #[test]
    fn named_strategies_run_and_agree_with_direct_construction() {
        let jobs = smoke(15, 3).jobs;
        let params = SimParams::default();
        let spec = StrategySpec::Named("speed".into());
        let a = run_strategy(&spec, jobs.clone(), &params, 3);
        let env = QCloudSimEnv::new(ibm_fleet(3), Box::new(SpeedBroker::new()), jobs, params, 3);
        let b = env.run();
        assert_eq!(a.summary.t_sim, b.summary.t_sim);
        assert_eq!(a.summary.mean_fidelity, b.summary.mean_fidelity);
    }

    #[test]
    fn parallel_strategy_runs_match_sequential() {
        let jobs = smoke(12, 5).jobs;
        let params = SimParams::default();
        let specs = vec![
            StrategySpec::Named("speed".into()),
            StrategySpec::Named("fidelity".into()),
            StrategySpec::Named("fair".into()),
        ];
        let par = run_strategies(&specs, &jobs, &params, 5);
        for (spec, p) in specs.iter().zip(&par) {
            let s = run_strategy(spec, jobs.clone(), &params, 5);
            assert_eq!(p.summary.t_sim, s.summary.t_sim, "{}", spec.name());
            assert_eq!(p.summary.mean_fidelity, s.summary.mean_fidelity);
        }
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_strategy_panics() {
        StrategySpec::Named("warp".into()).broker(0);
    }
}
