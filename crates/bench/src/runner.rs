//! Strategy execution helpers shared by the harness binaries.

use qcs_calibration::ibm_fleet;
use qcs_qcloud::policies::{scheduler_by_name, FairBroker, FidelityBroker, RlBroker, SpeedBroker};
use qcs_qcloud::simenv::RunResult;
use qcs_qcloud::{
    Broker, FaultScript, FifoAdapter, GymConfig, QCloudSimEnv, QJob, RetryPolicy, Scheduler,
    SimParams,
};

/// How to instantiate a strategy for a run.
#[derive(Debug, Clone)]
pub enum StrategySpec {
    /// A policy or composed scheduler spec resolved through
    /// [`scheduler_by_name`]: a bare policy (`speed`, `fidelity`, `fair`,
    /// `roundrobin`, `random`, `minfrag`, `hybrid`, `rl:<path>`) runs
    /// under the paper's FIFO discipline; `<discipline>+<policy>` composes
    /// a queue-aware discipline with it (`backfill+speed`,
    /// `priority:edf+fair`, …).
    Named(String),
    /// The RL policy, from a serialised [`qcs_rl::ActorCritic`] JSON.
    Rl {
        /// Policy JSON (from [`qcs_rl::ActorCritic::to_json`]).
        policy_json: String,
        /// The observation/normalisation config used in training.
        gym: GymConfig,
    },
}

impl StrategySpec {
    /// Strategy display name.
    pub fn name(&self) -> &str {
        match self {
            StrategySpec::Named(n) => n,
            StrategySpec::Rl { .. } => "rlbase",
        }
    }

    /// Builds the queue-aware scheduler; `window` is the FIFO scan window
    /// (`params.backfill_depth + 1` for parity with [`QCloudSimEnv::new`]).
    pub fn scheduler(&self, seed: u64, window: usize) -> Box<dyn Scheduler> {
        match self {
            StrategySpec::Named(n) => scheduler_by_name(n, seed, window)
                .unwrap_or_else(|| panic!("unknown strategy '{n}'")),
            StrategySpec::Rl { policy_json, gym } => {
                let broker =
                    RlBroker::from_json(policy_json, gym.clone()).expect("invalid RL policy JSON");
                Box::new(FifoAdapter::new(Box::new(broker), window))
            }
        }
    }
}

/// Runs one strategy over a job trace on the five-device paper fleet.
pub fn run_strategy(
    spec: &StrategySpec,
    jobs: Vec<QJob>,
    params: &SimParams,
    seed: u64,
) -> RunResult {
    run_strategy_with_faults(spec, jobs, params, seed, None)
}

/// [`run_strategy`] with an optional fault script + retry policy (from
/// `FaultScript::parse` of a `--faults` CLI spec) installed before the
/// run. Every strategy sees the *same* script; the fault seed lives in
/// the script, so injection is identical across strategies.
pub fn run_strategy_with_faults(
    spec: &StrategySpec,
    jobs: Vec<QJob>,
    params: &SimParams,
    seed: u64,
    faults: Option<&(FaultScript, RetryPolicy)>,
) -> RunResult {
    let mut env = QCloudSimEnv::with_scheduler(
        ibm_fleet(seed),
        spec.scheduler(seed, params.backfill_depth + 1),
        jobs,
        params.clone(),
        seed,
    );
    if let Some((script, retry)) = faults {
        env.install_faults(script.clone(), *retry, None);
    }
    env.run()
}

/// Runs several strategies over the *same* job trace, in parallel across
/// OS threads (each strategy's simulation is independent).
pub fn run_strategies(
    specs: &[StrategySpec],
    jobs: &[QJob],
    params: &SimParams,
    seed: u64,
) -> Vec<RunResult> {
    run_strategies_with_faults(specs, jobs, params, seed, None)
}

/// [`run_strategies`] under an optional shared fault script.
pub fn run_strategies_with_faults(
    specs: &[StrategySpec],
    jobs: &[QJob],
    params: &SimParams,
    seed: u64,
    faults: Option<&(FaultScript, RetryPolicy)>,
) -> Vec<RunResult> {
    let items: Vec<(StrategySpec, Vec<QJob>)> =
        specs.iter().map(|s| (s.clone(), jobs.to_vec())).collect();
    qcs_desim::parallel::par_map(items, specs.len(), |(spec, jobs)| {
        run_strategy_with_faults(&spec, jobs, params, seed, faults)
    })
}

impl StrategySpec {
    /// Whether any entry in a comma-separated `--strategies` list names the
    /// trained-RL row (`rl` / `rlbase`), i.e. whether the caller must
    /// supply a policy JSON to [`StrategySpec::parse_list`].
    pub fn list_wants_rl(list: &str) -> bool {
        list.split(',').any(|s| matches!(s.trim(), "rl" | "rlbase"))
    }

    /// Parses a comma-separated `--strategies` list into specs: `rl` /
    /// `rlbase` become the trained-RL row (deployed from `policy_json`
    /// under `gym`), everything else is a [`StrategySpec::Named`] scheduler
    /// spec resolved at run time. Empty entries are skipped.
    pub fn parse_list(list: &str, policy_json: &str, gym: &GymConfig) -> Vec<StrategySpec> {
        list.split(',')
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .map(|s| {
                if matches!(s, "rl" | "rlbase") {
                    StrategySpec::Rl {
                        policy_json: policy_json.to_string(),
                        gym: gym.clone(),
                    }
                } else {
                    StrategySpec::Named(s.to_string())
                }
            })
            .collect()
    }
}

/// The paper's four Table 2 strategies; the RL row requires a trained
/// policy JSON.
pub fn table2_strategies(rl_policy_json: String, gym: GymConfig) -> Vec<StrategySpec> {
    vec![
        StrategySpec::Named("speed".into()),
        StrategySpec::Named("fidelity".into()),
        StrategySpec::Named("fair".into()),
        StrategySpec::Rl {
            policy_json: rl_policy_json,
            gym,
        },
    ]
}

/// Convenience: builds plain brokers for tests.
pub fn builtin_brokers() -> Vec<Box<dyn Broker>> {
    vec![
        Box::new(SpeedBroker::new()),
        Box::new(FidelityBroker::new()),
        Box::new(FairBroker::new()),
    ]
}

/// Ensures the `results/` directory exists and returns its path.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("QCS_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    );
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_workload::smoke;

    #[test]
    fn named_strategies_run_and_agree_with_direct_construction() {
        let jobs = smoke(15, 3).jobs;
        let params = SimParams::default();
        let spec = StrategySpec::Named("speed".into());
        let a = run_strategy(&spec, jobs.clone(), &params, 3);
        let env = QCloudSimEnv::new(ibm_fleet(3), Box::new(SpeedBroker::new()), jobs, params, 3);
        let b = env.run();
        assert_eq!(a.summary.t_sim, b.summary.t_sim);
        assert_eq!(a.summary.mean_fidelity, b.summary.mean_fidelity);
    }

    #[test]
    fn parallel_strategy_runs_match_sequential() {
        let jobs = smoke(12, 5).jobs;
        let params = SimParams::default();
        let specs = vec![
            StrategySpec::Named("speed".into()),
            StrategySpec::Named("fidelity".into()),
            StrategySpec::Named("fair".into()),
        ];
        let par = run_strategies(&specs, &jobs, &params, 5);
        for (spec, p) in specs.iter().zip(&par) {
            let s = run_strategy(spec, jobs.clone(), &params, 5);
            assert_eq!(p.summary.t_sim, s.summary.t_sim, "{}", spec.name());
            assert_eq!(p.summary.mean_fidelity, s.summary.mean_fidelity);
        }
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_strategy_panics() {
        StrategySpec::Named("warp".into()).scheduler(0, 1);
    }

    #[test]
    fn strategy_list_parsing_handles_rl_aliases() {
        assert!(StrategySpec::list_wants_rl("speed,rl"));
        assert!(StrategySpec::list_wants_rl("speed, rlbase ,fair"));
        assert!(!StrategySpec::list_wants_rl("speed,rl:path.json"));
        let gym = GymConfig::default();
        let specs = StrategySpec::parse_list("speed,,rlbase, backfill+fair ", "{}", &gym);
        assert_eq!(specs.len(), 3);
        assert!(matches!(&specs[0], StrategySpec::Named(n) if n == "speed"));
        assert!(matches!(&specs[1], StrategySpec::Rl { policy_json, .. } if policy_json == "{}"));
        assert!(matches!(&specs[2], StrategySpec::Named(n) if n == "backfill+fair"));
    }

    #[test]
    fn composed_discipline_specs_run() {
        let jobs = smoke(15, 9).jobs;
        let params = SimParams::default();
        for spec in [
            "backfill+speed",
            "priority:sjf+fair",
            "priority:edf+minfrag",
        ] {
            let res = run_strategy(&StrategySpec::Named(spec.into()), jobs.clone(), &params, 9);
            assert_eq!(res.summary.jobs_unfinished, 0, "{spec}");
        }
    }
}
