//! PPO training of the allocation policy (paper §6.6, Fig. 5).

use qcs_calibration::ibm_fleet;
use qcs_qcloud::{GymConfig, JobDistribution, QCloudGymEnv, SimParams};
use qcs_rl::env::Env;
use qcs_rl::{Ppo, PpoConfig, TrainLog, VecEnv};

/// Result of a training run.
pub struct TrainOutcome {
    /// The trained trainer (owns the actor-critic).
    pub ppo: Ppo,
    /// Gym configuration used (needed to deploy the policy).
    pub gym: GymConfig,
}

impl TrainOutcome {
    /// The training log (reward & entropy curves of Fig. 5).
    pub fn log(&self) -> &TrainLog {
        self.ppo.log()
    }

    /// Serialises the trained policy.
    pub fn policy_json(&self) -> String {
        self.ppo.ac.to_json()
    }
}

/// Tunables of a training run. `n_update_workers` is pure throughput:
/// training is bit-identical at any value (see `qcs_rl::update`). `n_envs`
/// is NOT — it changes the per-iteration rollout shape (`n_steps` is
/// derived from it) and therefore the collected data and the trained
/// policy; keep it fixed when comparing against recorded results.
#[derive(Debug, Clone)]
pub struct TrainOpts {
    /// Environment steps to train for.
    pub total_timesteps: u64,
    /// Vectorised rollout environments (worker threads).
    pub n_envs: usize,
    /// Master seed.
    pub seed: u64,
    /// Threads for the PPO optimisation phase (`0`/`1` = single-threaded).
    pub n_update_workers: usize,
}

impl Default for TrainOpts {
    fn default() -> Self {
        TrainOpts {
            total_timesteps: 100_000,
            n_envs: 4,
            seed: 42,
            n_update_workers: 1,
        }
    }
}

/// Trains the §4.1 allocation policy for `total_timesteps` environment
/// steps on `n_envs` vectorised copies of [`QCloudGymEnv`] (worker threads).
///
/// `comm_aware` enables the reward-shaping extension (§6.6 future work).
pub fn train_allocation_policy(
    total_timesteps: u64,
    n_envs: usize,
    seed: u64,
    comm_aware: bool,
) -> TrainOutcome {
    let gym = GymConfig {
        comm_aware_reward: comm_aware,
        ..GymConfig::default()
    };
    train_allocation_policy_with(gym, total_timesteps, n_envs, seed)
}

/// [`train_allocation_policy`] with an explicit [`GymConfig`] — e.g. to
/// train on the queue-aware observation extension
/// ([`GymConfig::queue_aware`], `fig5 --queue-aware`).
pub fn train_allocation_policy_with(
    gym: GymConfig,
    total_timesteps: u64,
    n_envs: usize,
    seed: u64,
) -> TrainOutcome {
    train_allocation_policy_opts(
        gym,
        TrainOpts {
            total_timesteps,
            n_envs,
            seed,
            n_update_workers: 1,
        },
    )
}

/// The full-control entry point: [`GymConfig`] plus [`TrainOpts`]
/// (including the `n_update_workers` knob surfaced by the training CLIs as
/// `--update-workers`).
pub fn train_allocation_policy_opts(gym: GymConfig, opts: TrainOpts) -> TrainOutcome {
    let TrainOpts {
        total_timesteps,
        n_envs,
        seed,
        n_update_workers,
    } = opts;
    let mk_env = |fleet_seed: u64, gym: GymConfig| -> Box<dyn Env> {
        Box::new(QCloudGymEnv::new(
            &ibm_fleet(fleet_seed),
            JobDistribution::default(),
            SimParams::default(),
            gym,
        ))
    };

    let factories: Vec<Box<dyn FnOnce() -> Box<dyn Env> + Send>> = (0..n_envs.max(1))
        .map(|_| {
            let gym = gym.clone();
            Box::new(move || mk_env(seed, gym)) as Box<dyn FnOnce() -> Box<dyn Env> + Send>
        })
        .collect();
    let mut envs = VecEnv::parallel(factories);

    let cfg = PpoConfig {
        seed,
        // The paper trains single-step episodes with SB3 defaults; a
        // smaller n_steps keeps logging granularity useful for Fig. 5.
        n_steps: 2048 / n_envs.max(1),
        n_update_workers,
        ..PpoConfig::default()
    };
    let mut ppo = Ppo::new(gym.obs_dim(), gym.max_devices, cfg);
    ppo.learn(&mut envs, total_timesteps);
    TrainOutcome { ppo, gym }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_training_improves_reward() {
        let out = train_allocation_policy(6_000, 2, 11, false);
        let log = out.ppo.log();
        assert!(log.entries.len() >= 2);
        let first = log.entries.first().unwrap();
        let last = log.entries.last().unwrap();
        // Entropy must be shrinking (entropy_loss rising toward 0) and the
        // reward at least not collapsing.
        assert!(
            last.entropy_loss >= first.entropy_loss - 0.2,
            "entropy loss went backwards: {} -> {}",
            first.entropy_loss,
            last.entropy_loss
        );
        assert!(
            last.ep_rew_mean > 0.3,
            "reward collapsed: {}",
            last.ep_rew_mean
        );
        // Initial entropy of a 5-dim unit Gaussian ≈ 7.09 → loss ≈ −7.
        assert!(
            (first.entropy_loss + 7.09).abs() < 0.8,
            "initial entropy loss {} far from −7.09 (Fig. 5)",
            first.entropy_loss
        );
    }

    #[test]
    fn queue_aware_training_runs_on_wider_observations() {
        let gym = GymConfig {
            queue_aware: true,
            ..GymConfig::default()
        };
        let out = train_allocation_policy_with(gym, 2_000, 2, 17);
        assert_eq!(out.gym.obs_dim(), 19);
        assert_eq!(out.ppo.ac.obs_dim(), 19);
        assert!(out.ppo.log().final_reward() > 0.0);
    }

    #[test]
    fn update_workers_knob_is_bit_exact() {
        let opts = |workers| TrainOpts {
            total_timesteps: 2_000,
            n_envs: 2,
            seed: 19,
            n_update_workers: workers,
        };
        let a = train_allocation_policy_opts(GymConfig::default(), opts(1));
        let b = train_allocation_policy_opts(GymConfig::default(), opts(3));
        assert_eq!(
            a.policy_json(),
            b.policy_json(),
            "update workers changed the trained policy"
        );
    }

    #[test]
    fn policy_json_deploys() {
        use qcs_qcloud::Broker;
        let out = train_allocation_policy(2_000, 2, 13, false);
        let json = out.policy_json();
        let broker = qcs_qcloud::policies::RlBroker::from_json(&json, out.gym.clone()).unwrap();
        assert_eq!(broker.name(), "rlbase");
    }
}
