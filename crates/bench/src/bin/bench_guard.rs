//! CI bench-regression guard: checks the perf numbers *committed* in
//! `BENCH_rollout.json` / `BENCH_sched.json` against hard floors, failing
//! the build when a recorded speedup regresses below its floor.
//!
//! The JSONs are (re)written by release `cargo bench` runs and committed,
//! so this guard is deterministic in CI — it vets the recorded perf
//! trajectory, not the (noisy, shared) CI runner. Run it from the
//! repository root (or pass the two file paths as arguments):
//!
//! ```text
//! cargo run -p qcs-bench --release --bin bench_guard [-- BENCH_rollout.json BENCH_sched.json]
//! ```
//!
//! Floors (see `FLOORS` below):
//! * batched rollout speedup over the seed per-env path ≥ 3.5×;
//! * EASY-backfill makespan improvement on the bimodal scenario ≥ 1.03×;
//! * conservative-backfill fairness on the bimodal scenario: mean-slowdown
//!   improvement over EASY ≥ 1.4× and wait-p99 (starvation-tail) ratio
//!   ≥ 1.0× — per-job reservations must keep the tail no worse while
//!   serving the queue faster. (The Jain index is recorded for tracking
//!   but not floored: conservative *lowers* it on this trace by serving
//!   small jobs far better, which widens the slowdown spread — a
//!   uniformly-miserable queue scores "fairer".) The maintenance-heavy
//!   scenario must be recorded with a finite Jain index (availability-
//!   aware reservations exercised);
//! * failure-heavy scenario (`faulty_1k`, two unplanned crashes + 5%
//!   execution failures on the bimodal trace): conservative goodput ≥ 0.75
//!   (recorded ≈ 0.87 — recovery must not burn more than a quarter of the
//!   delivered qubit-seconds on wasted attempts) and retry rate ≥ 0.01
//!   (the scenario must actually exercise the retry path);
//! * service-mode front end (`service_1k` / `sharded_4x`): recorded
//!   decision-latency p99 ≤ 50 µs (a ceiling, not a floor), sustained
//!   service rate ≥ 5k jobs/s, the armed intake must have throttled at
//!   least once, the sharded run must be complete and qubit-conserving,
//!   and the 4-region decide-cost scaling over the monolithic scheduler
//!   ≥ 1.5× (recorded ≈ 7.2×), plus the parallel backend's wall-clock
//!   speedup at 4 worker threads ≥ 1.5× — only enforced when the
//!   recording machine had ≥ 4 cores (`sharded_4x.host_cores`);
//! * pending-10k incremental/snapshot parity ≥ 0.85 — on the default
//!   5-device fleet the per-consult rebuild is nearly free, so the
//!   recorded "speedup" pins parity (≈ 1.0), not a win; the incremental
//!   core's advantage is floored in `fleet_scale.deep_10k`;
//! * fleet-scale section (`fleet_scale`: a 100k-job bimodal stream over
//!   120 devices plus a 10k-deep backlogged queue): conservative/EASY
//!   decide-throughput ratio at 10k depth ≥ 0.2× (the incremental
//!   profile/ledger must keep per-job reservations within 5× of EASY;
//!   recorded ≈ 0.24× vs ≈ 0.03× before the incremental split),
//!   100k-stream EASY throughput ≥ 10k jobs/s, and an
//!   allocations-per-job ceiling of 100 on both measured disciplines
//!   (recorded ≈ 33);
//! * queue-deep RL scheduler (`rl_sched`, trained in-bench on the real
//!   scheduler loop and deployed through `rl:<path>`): every job must
//!   complete on both traces, bimodal mean-slowdown ratio ≥ 1.0× vs both
//!   FIFO and EASY (recorded ≈ 1.08× / ≈ 1.33×), and the conservative
//!   head-to-heads must be recorded as finite ratios (conservative still
//!   wins them — tracked honestly, not floored);
//! * wide-GEMM-tile speedup over the 4×8 baseline ≥ 1.05× — only enforced
//!   when the recording machine actually selected a wide kernel;
//! * update-phase speedup at 4 workers ≥ 1.5× — only enforced when the
//!   recording machine had ≥ 4 cores (a 1-core recorder cannot show
//!   wall-clock parallel speedup; `host_cores` is recorded alongside).

use serde::Value;

/// Floor for the batched-rollout speedup recorded in `BENCH_rollout.json`.
const ROLLOUT_SPEEDUP_FLOOR: f64 = 3.5;
/// Floor for `fragmented_1k.makespan_improvement` in `BENCH_sched.json`.
const MAKESPAN_IMPROVEMENT_FLOOR: f64 = 1.03;
/// Floor for `fragmented_1k.conservative_vs_easy.slowdown_ratio`: the
/// conservative discipline's mean-slowdown improvement over EASY on the
/// bimodal scenario (recorded ≈ 1.85×; floored below for headroom).
const CONSERVATIVE_SLOWDOWN_RATIO_FLOOR: f64 = 1.4;
/// Floor for `fragmented_1k.conservative_vs_easy.wait_p99_ratio`: the
/// starvation tail must not regress vs EASY (recorded ≈ 1.03×).
const CONSERVATIVE_TAIL_RATIO_FLOOR: f64 = 1.0;
/// Floor for `faulty_1k.conservative_speed.goodput`: useful qubit-seconds
/// over total under the failure-heavy scenario (recorded ≈ 0.87).
const FAULTY_GOODPUT_FLOOR: f64 = 0.75;
/// Floor for `faulty_1k.conservative_speed.retry_rate`: the scenario must
/// actually kill and resubmit jobs (recorded ≈ 0.11).
const FAULTY_RETRY_RATE_FLOOR: f64 = 0.01;
/// Ceiling for `service_1k.decide_p99_us`: the worst recorded per-call
/// scheduler decision latency through the service front end (recorded
/// ≈ 6.7 µs; ceiled with generous headroom for noisier recording hosts).
const SERVICE_DECIDE_P99_CEILING_US: f64 = 50.0;
/// Floor for `service_1k.sustained_jobs_per_sec`: terminal jobs per
/// wall-clock second through the full service loop (recorded ≈ 2.5e5; the
/// floor only rules out a collapse, not host-to-host variance).
const SERVICE_SUSTAINED_FLOOR: f64 = 5_000.0;
/// Floor for `sharded_4x.decide_cost_scaling`: mean decide cost on the
/// monolithic 20-device scheduler over the 4-region sharded one
/// (recorded ≈ 7.2×; sharding must keep individual decisions cheaper).
const SHARDED_DECIDE_SCALING_FLOOR: f64 = 1.5;
/// Floor for `sharded_4x.wall_clock_speedup`: the parallel sharded
/// backend (one kernel per region on 4 worker threads, free-running hash
/// routing) vs the sequential harness on the same trace, bit-identical
/// records. Only enforced when the recording machine had ≥ 4 cores
/// (`sharded_4x.host_cores` is recorded alongside, same gating as the
/// rollout update-phase floor).
const WALL_CLOCK_SPEEDUP_FLOOR: f64 = 1.5;
/// Cores the recording machine needs before the wall-clock floor applies.
const WALL_CLOCK_FLOOR_MIN_CORES: u64 = 4;
/// Parity band for `pending_10k.speedup` (incremental `speed` vs the
/// seed-mechanics `snapshot+speed` on the default 5-device fleet). A
/// five-device snapshot rebuild is a five-element copy, so this section
/// *cannot* show an incremental win — it pins parity: the incremental
/// path must never be meaningfully slower than the rebuild-per-consult
/// baseline (recorded ≈ 1.0; deviations of a few percent are run-to-run
/// noise). The incremental core's real advantage is floored where state
/// maintenance dominates: `fleet_scale.deep_10k` on 120 devices.
const PENDING_10K_PARITY_FLOOR: f64 = 0.85;
/// Floor for `fleet_scale.deep_10k.conservative_vs_easy`: conservative's
/// decide throughput over EASY's on a 10k-deep backlogged queue across a
/// 120-device fleet. The incremental availability profile + persistent
/// booking ledger must keep per-job reservations within 5× of EASY's
/// head-only protection (the per-consult full rebuild held this near
/// 0.03×).
const FLEET_DEEP_RATIO_FLOOR: f64 = 0.2;
/// Floor for `fleet_scale.backfill_speed.jobs_per_sec`: sustained
/// scheduler-loop throughput for the 100k-job bimodal stream over 120
/// devices must not collapse (rules out an accidental O(n²) reintroduction,
/// not host-to-host variance).
const FLEET_THROUGHPUT_FLOOR: f64 = 10_000.0;
/// Ceiling for `fleet_scale.backfill_speed.allocs_per_job` (and the FIFO
/// variant): heap allocations per job across the whole 100k-job run,
/// counted by the bench binary's global allocator. The slab-stored desim
/// core and the incremental profile keep the steady-state loop
/// allocation-lean (recorded ≈ 33 for both disciplines); the ceiling
/// catches a regression that starts boxing or cloning per decide.
const FLEET_ALLOCS_PER_JOB_CEILING: f64 = 100.0;
/// Floor for `rl_sched.bimodal_vs_fifo.slowdown_ratio`: the bench-budget
/// queue-deep RL scheduler must at least match plain FIFO on mean
/// slowdown (recorded ≈ 1.08). Training is seeded and the whole stack is
/// deterministic, so the recorded number is stable across re-records.
const RL_SCHED_VS_FIFO_SLOWDOWN_FLOOR: f64 = 1.0;
/// Floor for `rl_sched.bimodal_vs_easy.slowdown_ratio`: the RL scheduler
/// must also beat EASY backfilling on mean slowdown (recorded ≈ 1.33).
/// Conservative still wins this trace (≈ 0.72 against it) — that ratio is
/// recorded honestly but not floored; it is the open head-to-head the
/// training budget has not closed.
const RL_SCHED_VS_EASY_SLOWDOWN_FLOOR: f64 = 1.0;
/// Floor for `gemm.tile_speedup` (wide tile vs 4×8 baseline).
const TILE_SPEEDUP_FLOOR: f64 = 1.05;
/// Floor for `update_phase.speedup_4_workers`.
const UPDATE_SPEEDUP_4W_FLOOR: f64 = 1.5;
/// Cores the recording machine needs before the update-phase floor applies.
const UPDATE_FLOOR_MIN_CORES: u64 = 4;

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn field_f64(v: &Value, path: &[&str]) -> Result<f64, String> {
    let mut cur = v;
    for p in path {
        cur = cur
            .get_field(p)
            .ok_or_else(|| format!("missing field `{}`", path.join(".")))?;
    }
    as_f64(cur).ok_or_else(|| format!("field `{}` is not a number", path.join(".")))
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::parse_value(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

struct Guard {
    failures: Vec<String>,
}

impl Guard {
    fn check(&mut self, what: &str, value: Result<f64, String>, floor: f64) {
        match value {
            Ok(v) if v >= floor => println!("  ok   {what}: {v:.2} (floor {floor})"),
            Ok(v) => {
                println!("  FAIL {what}: {v:.2} below floor {floor}");
                self.failures.push(format!("{what}: {v:.2} < {floor}"));
            }
            Err(e) => {
                println!("  FAIL {what}: {e}");
                self.failures.push(format!("{what}: {e}"));
            }
        }
    }

    fn check_ceiling(&mut self, what: &str, value: Result<f64, String>, ceiling: f64) {
        match value {
            Ok(v) if v <= ceiling => println!("  ok   {what}: {v:.2} (ceiling {ceiling})"),
            Ok(v) => {
                println!("  FAIL {what}: {v:.2} above ceiling {ceiling}");
                self.failures.push(format!("{what}: {v:.2} > {ceiling}"));
            }
            Err(e) => {
                println!("  FAIL {what}: {e}");
                self.failures.push(format!("{what}: {e}"));
            }
        }
    }

    fn check_true(&mut self, what: &str, root: &Value, path: &[&str]) {
        let mut cur = Some(root);
        for p in path {
            cur = cur.and_then(|v| v.get_field(p));
        }
        match cur {
            Some(Value::Bool(true)) => println!("  ok   {what}: true"),
            Some(Value::Bool(false)) => {
                println!("  FAIL {what}: false");
                self.failures.push(format!("{what}: false"));
            }
            _ => {
                let msg = format!("missing field `{}`", path.join("."));
                println!("  FAIL {what}: {msg}");
                self.failures.push(format!("{what}: {msg}"));
            }
        }
    }

    fn skip(&self, what: &str, why: &str) {
        println!("  skip {what}: {why}");
    }

    fn fail(&mut self, what: &str, why: String) {
        println!("  FAIL {what}: {why}");
        self.failures.push(format!("{what}: {why}"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rollout_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_rollout.json");
    let sched_path = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("BENCH_sched.json");
    let mut guard = Guard {
        failures: Vec::new(),
    };

    println!("[bench_guard] {rollout_path}");
    match load(rollout_path) {
        Ok(rollout) => {
            guard.check(
                "batched rollout speedup",
                field_f64(&rollout, &["speedup"]),
                ROLLOUT_SPEEDUP_FLOOR,
            );

            // The gemm section and both kernel names are required; the
            // floor is waived only on the recorded fact that the recorder
            // had no wide kernel to select. A missing section is a loud
            // failure — silent drift is exactly what this guard exists for.
            let baseline = rollout
                .get_field("gemm")
                .and_then(|g| g.get_field("baseline_kernel"))
                .and_then(Value::as_str);
            let selected = rollout
                .get_field("gemm")
                .and_then(|g| g.get_field("selected_kernel"))
                .and_then(Value::as_str);
            match (baseline, selected) {
                (Some(b), Some(s)) if b == s => guard.skip(
                    "gemm tile speedup",
                    "recorder selected the baseline kernel (no wide tiles available)",
                ),
                (Some(_), Some(_)) => guard.check(
                    "gemm tile speedup",
                    field_f64(&rollout, &["gemm", "tile_speedup"]),
                    TILE_SPEEDUP_FLOOR,
                ),
                _ => guard.fail(
                    "gemm section",
                    "missing gemm.baseline_kernel/gemm.selected_kernel".to_string(),
                ),
            }

            // host_cores is required too: it gates the multi-worker floor.
            // The floor keys on the *recording* host (the committed fact),
            // not the checking host — but when this machine is big enough
            // to re-record, say so instead of skipping silently forever.
            match field_f64(&rollout, &["host_cores"]) {
                Err(e) => guard.fail("host_cores", e),
                Ok(cores) if (cores as u64) < UPDATE_FLOOR_MIN_CORES => {
                    let here = qcs_bench::cli::host_cores();
                    let nag = if here as u64 >= UPDATE_FLOOR_MIN_CORES {
                        format!(
                            "; this host has {here} — re-run `cargo bench -p qcs-bench --bench rl` to record the speedup"
                        )
                    } else {
                        String::new()
                    };
                    guard.skip(
                        "update-phase speedup at 4 workers",
                        &format!(
                            "recorded on a {cores:.0}-core machine (need ≥ {UPDATE_FLOOR_MIN_CORES}){nag}"
                        ),
                    );
                    // The section must still exist and be well-formed.
                    guard.check(
                        "update-phase throughput recorded",
                        field_f64(&rollout, &["update_phase", "speedup_4_workers"]).map(|_| 1.0),
                        0.0,
                    );
                }
                Ok(_) => guard.check(
                    "update-phase speedup at 4 workers",
                    field_f64(&rollout, &["update_phase", "speedup_4_workers"]),
                    UPDATE_SPEEDUP_4W_FLOOR,
                ),
            }
        }
        Err(e) => guard.failures.push(e),
    }

    println!("[bench_guard] {sched_path}");
    match load(sched_path) {
        Ok(sched) => {
            guard.check(
                "backfill makespan improvement",
                field_f64(&sched, &["fragmented_1k", "makespan_improvement"]),
                MAKESPAN_IMPROVEMENT_FLOOR,
            );
            guard.check(
                "conservative slowdown improvement vs EASY (bimodal)",
                field_f64(
                    &sched,
                    &["fragmented_1k", "conservative_vs_easy", "slowdown_ratio"],
                ),
                CONSERVATIVE_SLOWDOWN_RATIO_FLOOR,
            );
            guard.check(
                "conservative wait-p99 tail ratio vs EASY (bimodal)",
                field_f64(
                    &sched,
                    &["fragmented_1k", "conservative_vs_easy", "wait_p99_ratio"],
                ),
                CONSERVATIVE_TAIL_RATIO_FLOOR,
            );
            // The maintenance-heavy scenario must be recorded and
            // well-formed (a finite fairness index proves the
            // availability-aware reservations actually ran); its ratios
            // are tracked, not floored — scheduled windows shift the
            // EASY/conservative trade-off with the window layout.
            guard.check(
                "maintenance-heavy scenario recorded",
                field_f64(
                    &sched,
                    &["maintenance_1k", "conservative_speed", "jain_fairness"],
                )
                .and_then(|v| {
                    if v.is_finite() && v > 0.0 {
                        Ok(1.0)
                    } else {
                        Err(format!("jain_fairness not finite/positive: {v}"))
                    }
                }),
                0.0,
            );
            // The failure-heavy scenario: fault recovery must be recorded
            // and keep goodput above its floor, and the script must
            // actually have exercised the retry path (a zero retry rate
            // means the injection silently stopped firing).
            guard.check(
                "faulty-scenario conservative goodput",
                field_f64(&sched, &["faulty_1k", "conservative_speed", "goodput"]),
                FAULTY_GOODPUT_FLOOR,
            );
            guard.check(
                "faulty-scenario retry rate",
                field_f64(&sched, &["faulty_1k", "conservative_speed", "retry_rate"]),
                FAULTY_RETRY_RATE_FLOOR,
            );
            guard.check(
                "faulty-scenario recovery overhead recorded",
                field_f64(&sched, &["faulty_1k", "recovery_makespan_overhead"]).and_then(|v| {
                    if v.is_finite() && v > 0.0 {
                        Ok(1.0)
                    } else {
                        Err(format!(
                            "recovery_makespan_overhead not finite/positive: {v}"
                        ))
                    }
                }),
                0.0,
            );
            // The queue-deep RL scheduler: the trained checkpoint must have
            // completed every job through the `rl:<path>` surface on both
            // traces, beat FIFO and EASY on bimodal mean slowdown, and the
            // conservative head-to-heads (which conservative currently
            // wins) must be recorded as finite ratios.
            guard.check_true(
                "rl_sched runs completed every job",
                &sched,
                &["rl_sched", "completed"],
            );
            guard.check(
                "rl_sched slowdown vs FIFO (bimodal)",
                field_f64(&sched, &["rl_sched", "bimodal_vs_fifo", "slowdown_ratio"]),
                RL_SCHED_VS_FIFO_SLOWDOWN_FLOOR,
            );
            guard.check(
                "rl_sched slowdown vs EASY (bimodal)",
                field_f64(&sched, &["rl_sched", "bimodal_vs_easy", "slowdown_ratio"]),
                RL_SCHED_VS_EASY_SLOWDOWN_FLOOR,
            );
            for (what, path) in [
                (
                    "rl_sched conservative head-to-head recorded (bimodal)",
                    ["rl_sched", "bimodal_vs_conservative", "slowdown_ratio"],
                ),
                (
                    "rl_sched conservative head-to-head recorded (maintenance)",
                    ["rl_sched", "maintenance_vs_conservative", "slowdown_ratio"],
                ),
            ] {
                guard.check(
                    what,
                    field_f64(&sched, &path).and_then(|v| {
                        if v.is_finite() && v > 0.0 {
                            Ok(1.0)
                        } else {
                            Err(format!("slowdown_ratio not finite/positive: {v}"))
                        }
                    }),
                    0.0,
                );
            }
            // Service-mode front end: decision latency must stay bounded,
            // the sustained service rate must not collapse, the armed
            // intake must have actually throttled, and the sharded fleet
            // must stay complete, conservation-respecting and cheaper per
            // decide than the monolithic scheduler.
            guard.check_ceiling(
                "service decide p99 (µs)",
                field_f64(&sched, &["service_1k", "decide_p99_us"]),
                SERVICE_DECIDE_P99_CEILING_US,
            );
            guard.check(
                "service sustained jobs/s",
                field_f64(&sched, &["service_1k", "sustained_jobs_per_sec"]),
                SERVICE_SUSTAINED_FLOOR,
            );
            guard.check(
                "service intake exercised (throttle events)",
                field_f64(&sched, &["service_1k", "throttle_events"]),
                1.0,
            );
            guard.check_true("service run complete", &sched, &["service_1k", "complete"]);
            guard.check_true("sharded run complete", &sched, &["sharded_4x", "complete"]);
            guard.check_true(
                "sharded run qubit-conserving",
                &sched,
                &["sharded_4x", "conserved"],
            );
            guard.check(
                "sharded decide-cost scaling vs monolithic",
                field_f64(&sched, &["sharded_4x", "decide_cost_scaling"]),
                SHARDED_DECIDE_SCALING_FLOOR,
            );
            // Incremental-vs-snapshot parity on the default fleet: the
            // 5-device snapshot rebuild is nearly free, so the honest
            // expectation is ≈ 1.0, guarded as a band, not a speedup.
            guard.check(
                "pending-10k incremental/snapshot parity",
                field_f64(&sched, &["pending_10k", "speedup"]),
                PENDING_10K_PARITY_FLOOR,
            );
            // Parallel-backend wall-clock scaling: keyed on the cores of
            // the *recording* host (the committed fact), mirroring the
            // rollout update-phase gating — a small recorder cannot show
            // thread-level speedup, but the section must still exist.
            match field_f64(&sched, &["sharded_4x", "host_cores"]) {
                Err(e) => guard.fail("sharded_4x.host_cores", e),
                Ok(cores) if (cores as u64) < WALL_CLOCK_FLOOR_MIN_CORES => {
                    let here = qcs_bench::cli::host_cores();
                    let nag = if here as u64 >= WALL_CLOCK_FLOOR_MIN_CORES {
                        format!(
                            "; this host has {here} — re-run `cargo bench -p qcs-bench --bench sched` to record the speedup"
                        )
                    } else {
                        String::new()
                    };
                    guard.skip(
                        "sharded wall-clock speedup at 4 threads",
                        &format!(
                            "recorded on a {cores:.0}-core machine (need ≥ {WALL_CLOCK_FLOOR_MIN_CORES}){nag}"
                        ),
                    );
                    guard.check(
                        "sharded wall-clock speedup recorded",
                        field_f64(&sched, &["sharded_4x", "wall_clock_speedup"]).map(|_| 1.0),
                        0.0,
                    );
                }
                Ok(_) => guard.check(
                    "sharded wall-clock speedup at 4 threads",
                    field_f64(&sched, &["sharded_4x", "wall_clock_speedup"]),
                    WALL_CLOCK_SPEEDUP_FLOOR,
                ),
            }
            // Fleet-scale section: the deep-queue conservative/EASY decide
            // throughput ratio (the incremental-core headline number), a
            // collapse floor on the 100k-job stream, and the
            // allocations-per-job ceilings from the counting allocator.
            guard.check(
                "fleet-scale deep-queue conservative/EASY throughput",
                field_f64(&sched, &["fleet_scale", "deep_10k", "conservative_vs_easy"]),
                FLEET_DEEP_RATIO_FLOOR,
            );
            guard.check(
                "fleet-scale 100k-stream EASY jobs/s",
                field_f64(&sched, &["fleet_scale", "backfill_speed", "jobs_per_sec"]),
                FLEET_THROUGHPUT_FLOOR,
            );
            guard.check_ceiling(
                "fleet-scale EASY allocs/job",
                field_f64(&sched, &["fleet_scale", "backfill_speed", "allocs_per_job"]),
                FLEET_ALLOCS_PER_JOB_CEILING,
            );
            guard.check_ceiling(
                "fleet-scale FIFO allocs/job",
                field_f64(&sched, &["fleet_scale", "fifo_speed", "allocs_per_job"]),
                FLEET_ALLOCS_PER_JOB_CEILING,
            );
        }
        Err(e) => guard.failures.push(e),
    }

    if guard.failures.is_empty() {
        println!("[bench_guard] all recorded speedups at or above their floors");
    } else {
        eprintln!(
            "[bench_guard] {} regression(s): {}",
            guard.failures.len(),
            guard.failures.join("; ")
        );
        std::process::exit(1);
    }
}
