//! **Open-system queueing sweep** (extension): the paper's case study is a
//! closed backlog (all jobs at `t = 0`); this harness drives the cloud with
//! Poisson arrivals at increasing offered load and reports wait-time tails
//! and slowdown per policy — where head-of-line blocking and the
//! fidelity policy's quality-strictness actually bite.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin queueing [-- --jobs 200 --seed 42]
//! ```
//!
//! `--faults <spec>` injects unplanned outages and execution failures
//! into every run (same script for every policy), e.g.
//! `--faults 'crash:0@500+300;pfail:0.05;retries:4'` — see
//! [`FaultScript::parse`] for the grammar. The goodput/retry columns
//! then separate disciplines by how much work the failures wasted.
//!
//! Output: `results/queueing.csv` + ASCII tables per arrival rate.

use qcs_bench::cli::arg;
use qcs_bench::runner::results_dir;
use qcs_bench::table::AsciiTable;
use qcs_calibration::ibm_fleet;
use qcs_qcloud::policies::scheduler_by_name;
use qcs_qcloud::{DeadlinePolicy, QCloudSimEnv, QosReport, SimParams};
use qcs_qcloud::{FaultScript, JobDistribution};
use qcs_workload::arrival::{jobs_with_arrivals, poisson_process};

fn main() {
    let n_jobs: usize = arg("--jobs", 200);
    let seed: u64 = arg("--seed", 42);
    let faults = arg("--faults", String::new());
    let faults = (!faults.is_empty())
        .then(|| FaultScript::parse(&faults).unwrap_or_else(|e| panic!("bad --faults spec: {e}")));
    let params = SimParams::default();
    // Policies under FIFO, plus the queue-aware disciplines the redesign
    // added — exactly where wait-time tails separate them.
    let policies = [
        "speed",
        "fidelity",
        "fair",
        "minfrag",
        "backfill+speed",
        "conservative+speed",
        "conservative+fair",
        "priority:sjf+speed",
        "priority:edf+speed",
        "priority:aging+speed",
    ];
    // Paper-scale service times are ~100 s on premium devices; sweep the
    // arrival rate from light to saturating load.
    let rates = [0.002, 0.005, 0.01, 0.02];

    let mut csv = String::from(
        "rate,policy,wait_p50,wait_p95,wait_p99,mean_slowdown,mean_bsld,deadline_miss,\
         fairness_jain,bypass_max,goodput,retry_rate,jobs_exhausted,\
         waits_queue_drained,waits_insufficient_capacity,waits_policy_hold,\
         waits_backfill_hold,waits_device_offline,waits_admission_throttled\n",
    );
    for &rate in &rates {
        let arrivals = poisson_process(n_jobs, rate, seed);
        let jobs = jobs_with_arrivals(&arrivals, &JobDistribution::default(), 0, seed ^ 0xA5);
        println!(
            "\nArrival rate {rate} jobs/s ({n_jobs} jobs over {:.0} s)\n",
            arrivals.last().copied().unwrap_or(0.0)
        );
        let mut table = AsciiTable::new(&[
            "policy",
            "wait p50 (s)",
            "wait p95 (s)",
            "wait p99 (s)",
            "slowdown",
            "BSLD",
            "miss rate",
            "jain",
            "byp max",
            "goodput",
            "retries",
        ]);
        for pol in policies {
            let sched = scheduler_by_name(pol, seed, 1).expect("known scheduler spec");
            let mut env = QCloudSimEnv::with_scheduler(
                ibm_fleet(seed),
                sched,
                jobs.clone(),
                params.clone(),
                seed,
            );
            if let Some((script, retry)) = &faults {
                env.install_faults(script.clone(), *retry, None);
            }
            let result = env.run();
            let qos = QosReport::from_records(&result.records, DeadlinePolicy::default());
            table.row(vec![
                pol.into(),
                format!("{:.1}", qos.wait_p50),
                format!("{:.1}", qos.wait_p95),
                format!("{:.1}", qos.wait_p99),
                format!("{:.2}", qos.mean_slowdown),
                format!("{:.2}", qos.mean_bounded_slowdown),
                format!("{:.3}", qos.deadline_miss_rate),
                format!("{:.3}", qos.fairness_jain),
                format!("{}", qos.bypass_max),
                format!("{:.3}", qos.goodput),
                format!("{:.3}", qos.retry_rate),
            ]);
            // Per-`WaitReason` scheduler-idle attribution: separates "the
            // queue drained" from "work was held back" at a glance.
            let t = &result.telemetry;
            csv.push_str(&format!(
                "{rate},{pol},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4},{:.4},{},{:.4},{:.4},{},\
                 {},{},{},{},{},{}\n",
                qos.wait_p50,
                qos.wait_p95,
                qos.wait_p99,
                qos.mean_slowdown,
                qos.mean_bounded_slowdown,
                qos.deadline_miss_rate,
                qos.fairness_jain,
                qos.bypass_max,
                qos.goodput,
                qos.retry_rate,
                qos.jobs_exhausted,
                t.waits_queue_drained,
                t.waits_insufficient_capacity,
                t.waits_policy_hold,
                t.waits_backfill_hold,
                t.waits_device_offline,
                t.waits_admission_throttled
            ));
        }
        println!("{}", table.render());
    }
    let out = results_dir().join("queueing.csv");
    std::fs::write(&out, csv).expect("cannot write queueing.csv");
    println!("\nwrote {}", out.display());
}
