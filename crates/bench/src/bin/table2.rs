//! Reproduces **Table 2**: performance of the four allocation strategies on
//! 1'000 large circuits — total simulation time `T_sim`, mean fidelity
//! `μ_F ± σ_F`, and total communication time `T_comm`.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin table2 [-- --jobs 1000 --seed 42 --timesteps 100000]
//! ```
//!
//! `--strategies a,b,c` swaps the paper's four rows for any list of
//! scheduler specs: bare policies (`speed`, `minfrag`, `rl:<path>`),
//! composed disciplines (`backfill+speed`, `conservative+fair`,
//! `priority:edf+fair`), or `rl` for the trained-and-cached RL row.
//! `--help` lists the vocabulary.
//!
//! The RL row requires a trained policy; the binary trains one (caching it
//! in `results/rl_policy.json`) unless `--no-cache` is passed.

use qcs_bench::cli::arg;
use qcs_bench::cli::flag;
use qcs_bench::runner::{results_dir, run_strategies_with_faults, table2_strategies, StrategySpec};
use qcs_bench::table::AsciiTable;
use qcs_bench::train::train_allocation_policy;
use qcs_qcloud::{FaultScript, GymConfig, SimParams};
use qcs_workload::suite::paper_case_study;

fn print_help() {
    println!("table2 — strategy comparison on the paper's case-study workload");
    println!("  --jobs N --seed S --timesteps T --no-cache");
    println!("  --strategies a,b,c   scheduler specs to compare (default: paper's four)");
    println!("  --faults SPEC        inject faults, e.g. 'crash:0@500+300;pfail:0.05;retries:4'");
    println!("policies: {}", qcs_qcloud::policies::names().join(", "));
    println!(
        "disciplines (compose as <discipline>+<policy>): {}",
        qcs_qcloud::policies::discipline_names().join(", ")
    );
    println!("plus `rl`: the trained-and-cached RL row");
}

fn main() {
    if flag("--help") {
        print_help();
        return;
    }
    let n_jobs: usize = arg("--jobs", 1_000);
    let seed: u64 = arg("--seed", 42);
    let timesteps: u64 = arg("--timesteps", 100_000);
    let no_cache = flag("--no-cache");
    let strategies: String = arg("--strategies", "speed,fidelity,fair,rl".to_string());
    let faults = arg("--faults", String::new());
    let faults = (!faults.is_empty())
        .then(|| FaultScript::parse(&faults).unwrap_or_else(|e| panic!("bad --faults spec: {e}")));
    let wants_rl = StrategySpec::list_wants_rl(&strategies);

    let dir = results_dir();
    let policy_path = dir.join("rl_policy.json");

    // --- RL policy: load cache or train (paper §6.6: 100k timesteps). ---
    let policy_json = if !wants_rl {
        String::new()
    } else if policy_path.exists() && !no_cache {
        eprintln!("[table2] using cached RL policy {}", policy_path.display());
        std::fs::read_to_string(&policy_path).expect("cannot read cached policy")
    } else {
        eprintln!("[table2] training RL policy for {timesteps} timesteps...");
        let t0 = std::time::Instant::now();
        let out = train_allocation_policy(timesteps, 4, seed, false);
        eprintln!(
            "[table2] training done in {:.1}s (final reward {:.4})",
            t0.elapsed().as_secs_f64(),
            out.ppo.log().final_reward()
        );
        let json = out.policy_json();
        std::fs::write(&policy_path, &json).expect("cannot cache policy");
        std::fs::write(dir.join("rl_training_log.csv"), out.ppo.log().to_csv())
            .expect("cannot write training log");
        json
    };

    // --- The case-study workload and the requested strategies. ---
    let mut suite = paper_case_study(seed);
    suite.jobs.truncate(n_jobs);
    let params = SimParams::default();
    let specs: Vec<StrategySpec> = if strategies == "speed,fidelity,fair,rl" {
        table2_strategies(policy_json, GymConfig::default())
    } else {
        StrategySpec::parse_list(&strategies, &policy_json, &GymConfig::default())
    };

    eprintln!(
        "[table2] running {} strategies × {} jobs in parallel...",
        specs.len(),
        suite.jobs.len()
    );
    let t0 = std::time::Instant::now();
    let results = run_strategies_with_faults(&specs, &suite.jobs, &params, seed, faults.as_ref());
    eprintln!(
        "[table2] simulations done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    // --- Render. ---
    let mut table = AsciiTable::new(&[
        "Mode",
        "T_sim (s)",
        "mu_F",
        "sigma_F",
        "T_comm (s)",
        "k_mean",
        "mean_wait (s)",
    ]);
    for r in &results {
        let s = &r.summary;
        if faults.is_some() {
            // Under fault injection a job may honestly exhaust its retries
            // (counted as unfinished); only a *pending* record is a bug.
            assert!(
                r.records.iter().all(|rec| rec.terminal()),
                "{}: non-terminal job survived the run",
                s.strategy
            );
        } else {
            assert_eq!(
                s.jobs_unfinished, 0,
                "{}: {} jobs starved",
                s.strategy, s.jobs_unfinished
            );
        }
        table.row(vec![
            s.strategy.clone(),
            format!("{:.2}", s.t_sim),
            format!("{:.5}", s.mean_fidelity),
            format!("{:.5}", s.std_fidelity),
            format!("{:.2}", s.total_comm),
            format!("{:.2}", s.mean_devices_per_job),
            format!("{:.2}", s.mean_wait),
        ]);
    }
    println!("Table 2 — Performance of allocation strategies on {n_jobs} large circuits");
    println!("{}", table.render());
    println!("Paper reference (1'000 jobs):");
    println!("  speed    T_sim 108775.38  mu_F 0.65332 ± 0.01438  T_comm 5707.80");
    println!("  fidelity T_sim 209873.02  mu_F 0.68781 ± 0.02605  T_comm 3822.74");
    println!("  fair     T_sim 108778.16  mu_F 0.64373 ± 0.01478  T_comm 5707.80");
    println!("  rlbase   T_sim 106206.21  mu_F 0.62087 ± 0.01301  T_comm 6105.52");

    let csv_path = dir.join("table2.csv");
    std::fs::write(&csv_path, table.to_csv()).expect("cannot write table2.csv");
    eprintln!("[table2] wrote {}", csv_path.display());
}
