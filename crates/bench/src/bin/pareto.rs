//! **Pareto sweep** (extension): traces the speed–fidelity trade-off
//! frontier by sweeping the [`HybridBroker`] weight from 0 (pure speed
//! ordering) to 1 (pure error-score ordering), in both its
//! availability-greedy and quality-strict variants, with the paper's named
//! strategies as reference points.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin pareto [-- --jobs 300 --seed 42 --steps 11]
//! ```
//!
//! The designed finding: the *ordering* knob barely moves fidelity while
//! the *waiting discipline* does — greedy points cluster at the speed
//! corner for any `w`, while strict points trade makespan for fidelity,
//! reproducing Table 2's speed/fidelity gap as a continuum. Output:
//! `results/pareto.csv` + an ASCII table.

use qcs_bench::cli::arg;
use qcs_bench::runner::results_dir;
use qcs_bench::table::AsciiTable;
use qcs_calibration::ibm_fleet;
use qcs_qcloud::policies::{by_name, HybridBroker};
use qcs_qcloud::{Broker, QCloudSimEnv, SimParams};
use qcs_workload::suite::smoke;

fn main() {
    let n_jobs: usize = arg("--jobs", 300);
    let seed: u64 = arg("--seed", 42);
    let steps: usize = arg("--steps", 11);

    let params = SimParams::default();
    let jobs = smoke(n_jobs, seed).jobs;
    eprintln!("[pareto] {n_jobs} jobs, {steps} weight steps, seed {seed}");

    let mut table = AsciiTable::new(&[
        "policy",
        "T_sim (s)",
        "mu_F",
        "sigma_F",
        "T_comm (s)",
        "k_bar",
        "mean_wait (s)",
    ]);
    let mut csv = String::from("policy,w,strict,t_sim,mu_f,sigma_f,t_comm,k_bar,mean_wait\n");

    let mut run = |label: String, w: f64, strict: bool, broker: Box<dyn Broker>| {
        let env = QCloudSimEnv::new(ibm_fleet(seed), broker, jobs.clone(), params.clone(), seed);
        let result = env.run();
        let s = &result.summary;
        table.row(vec![
            label.clone(),
            format!("{:.0}", s.t_sim),
            format!("{:.5}", s.mean_fidelity),
            format!("{:.5}", s.std_fidelity),
            format!("{:.1}", s.total_comm),
            format!("{:.2}", s.mean_devices_per_job),
            format!("{:.1}", s.mean_wait),
        ]);
        csv.push_str(&format!(
            "{label},{w:.2},{strict},{:.2},{:.6},{:.6},{:.2},{:.3},{:.2}\n",
            s.t_sim,
            s.mean_fidelity,
            s.std_fidelity,
            s.total_comm,
            s.mean_devices_per_job,
            s.mean_wait
        ));
        eprintln!(
            "[pareto] {label}: T_sim={:.0}s muF={:.4} Tcomm={:.0}s",
            s.t_sim, s.mean_fidelity, s.total_comm
        );
    };

    // Reference corners: the paper's named policies.
    for pol in ["speed", "fidelity", "fair", "minfrag"] {
        run(
            format!("[{pol}]"),
            f64::NAN,
            false,
            by_name(pol, seed).expect("known policy"),
        );
    }
    // The two hybrid families.
    for i in 0..steps {
        let w = i as f64 / (steps - 1).max(1) as f64;
        run(
            format!("hybrid({w:.2})"),
            w,
            false,
            Box::new(HybridBroker::new(w)),
        );
    }
    for i in 0..steps {
        let w = i as f64 / (steps - 1).max(1) as f64;
        run(
            format!("strict({w:.2})"),
            w,
            true,
            Box::new(HybridBroker::strict(w)),
        );
    }

    println!("\nPareto sweep: ordering weight vs waiting discipline ({n_jobs} jobs)\n");
    println!("{}", table.render());
    let out = results_dir().join("pareto.csv");
    std::fs::write(&out, csv).expect("cannot write pareto.csv");
    println!("wrote {}", out.display());
}
