//! **Service-mode driver** (extension): runs the scheduler disciplines as
//! a long-running open system behind the [`qcs_qcloud::service`] front end
//! — admission-controlled intake, region-sharded fleets, a routing layer,
//! and wall-clock decision-latency / sustained-throughput metrics.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin serve [-- --jobs 1000 --regions 4 \
//!     --spec backfill+speed --routing least-loaded --rate 0.05 \
//!     --watermark 24 --capacity 96 --throttle-delay 60 --attempts 3 \
//!     --threads 4]
//! ```
//!
//! Traffic is the diurnal open-arrival mix (`--amplitude 0` flattens it to
//! plain Poisson); `--open` disarms admission entirely. `--threads N`
//! (N > 1) runs the parallel sharded backend — one kernel per region on a
//! worker-thread pool — which is bit-identical to the sequential run.
//! Output: per-shard ASCII table + service report on stdout, plus
//! `results/service.csv` (one row per shard and a `service` total row).

use qcs_bench::cli::{arg, flag};
use qcs_bench::runner::results_dir;
use qcs_bench::table::AsciiTable;
use qcs_calibration::regional_fleet;
use qcs_qcloud::jobgen::diurnal_arrivals;
use qcs_qcloud::policies::scheduler_by_name;
use qcs_qcloud::{
    AdmissionPolicy, ParallelServiceHarness, RoutingPolicy, ServiceConfig, ServiceHarness,
    SimParams,
};

fn main() {
    let n_jobs: usize = arg("--jobs", 1000);
    let regions: usize = arg("--regions", 1);
    let seed: u64 = arg("--seed", 42);
    let spec: String = arg("--spec", "backfill+speed".to_string());
    let rate: f64 = arg("--rate", 0.05);
    let amplitude: f64 = arg("--amplitude", 0.8);
    let period: f64 = arg("--period", 3600.0);
    let big_every: usize = arg("--big-every", 5);
    let routing: RoutingPolicy = arg("--routing", RoutingPolicy::LeastLoaded);
    let threads: usize = arg("--threads", 1);
    let admission = if flag("--open") {
        AdmissionPolicy::open()
    } else {
        AdmissionPolicy {
            throttle_watermark: arg("--watermark", 24),
            queue_capacity: arg("--capacity", 96),
            throttle_delay_s: arg("--throttle-delay", 60.0),
            max_throttle_attempts: arg("--attempts", 3),
        }
    };
    let config = ServiceConfig { admission, routing };

    let jobs = diurnal_arrivals(n_jobs, rate, amplitude, period, big_every, seed);
    let horizon = jobs.last().map_or(0.0, |j| j.arrival_time);
    println!(
        "serve: {n_jobs} jobs over {horizon:.0} s (diurnal rate {rate}±{:.0}%), \
         {regions} region(s), spec {spec}, routing {routing}, {threads} thread(s), \
         admission {admission:?}",
        amplitude * 100.0
    );

    let spec_for_factory = spec.clone();
    let outcome = if threads > 1 {
        ParallelServiceHarness::new(
            regional_fleet(regions, seed),
            move |_region| {
                scheduler_by_name(&spec_for_factory, seed, 1).expect("known scheduler spec")
            },
            jobs,
            SimParams::default(),
            config,
            seed,
            threads,
        )
        .run()
    } else {
        ServiceHarness::new(
            regional_fleet(regions, seed),
            move |_region| {
                scheduler_by_name(&spec_for_factory, seed, 1).expect("known scheduler spec")
            },
            jobs,
            SimParams::default(),
            config,
            seed,
        )
        .run()
    };

    let report = &outcome.report;
    let mut table = AsciiTable::new(&[
        "shard",
        "routed",
        "done",
        "rejected",
        "wait (s)",
        "fidelity",
        "util",
        "dec p50 (µs)",
        "dec p99 (µs)",
        "busy (s)",
    ]);
    let mut csv = String::from(
        "shard,routed,finished,rejected,mean_wait,mean_fidelity,mean_utilization,\
         decide_p50_us,decide_p99_us,decide_count,busy_wall_s\n",
    );
    for (i, shard) in outcome.shards.iter().enumerate() {
        let lat = &report.per_shard_latency[i];
        // Wall-clock time the shard's worker spent inside its kernel —
        // only the parallel backend measures it per shard.
        let busy = report.shard_busy_s.get(i).copied();
        let busy_cell = busy.map_or_else(|| "-".to_string(), |b| format!("{b:.3}"));
        let rejected = shard
            .records
            .iter()
            .filter(|r| r.final_status == qcs_qcloud::FinalStatus::Rejected)
            .count();
        table.row(vec![
            format!("r{i}"),
            format!("{}", report.routed_per_shard[i]),
            format!("{}", shard.summary.jobs_finished),
            format!("{rejected}"),
            format!("{:.1}", shard.summary.mean_wait),
            format!("{:.4}", shard.summary.mean_fidelity),
            format!("{:.3}", shard.mean_device_utilization()),
            format!("{:.1}", lat.p50_us),
            format!("{:.1}", lat.p99_us),
            busy_cell.clone(),
        ]);
        csv.push_str(&format!(
            "r{i},{},{},{rejected},{:.3},{:.5},{:.4},{:.2},{:.2},{},{}\n",
            report.routed_per_shard[i],
            shard.summary.jobs_finished,
            shard.summary.mean_wait,
            shard.summary.mean_fidelity,
            shard.mean_device_utilization(),
            lat.p50_us,
            lat.p99_us,
            lat.count,
            busy_cell,
        ));
    }
    println!("{}", table.render());

    let a = &report.admission;
    println!(
        "intake: {} submitted = {} accepted + {} rejected ({} queue-full, {} throttled-out); \
         {} throttle rounds, {} admitted after backoff",
        a.submitted,
        a.accepted,
        a.rejected(),
        a.rejected_queue_full,
        a.rejected_throttled_out,
        a.throttle_events,
        a.throttled_then_admitted,
    );
    println!(
        "decide: {} calls, p50 {:.1} µs, p99 {:.1} µs, mean {:.1} µs, max {:.1} µs",
        report.decision_latency.count,
        report.decision_latency.p50_us,
        report.decision_latency.p99_us,
        report.decision_latency.mean_us,
        report.decision_latency.max_us,
    );
    println!(
        "service: {:.0} sim-s in {:.3} wall-s, {:.0} sustained jobs/s, {} kernel events, \
         {} worker thread(s), merge {:.3} ms",
        report.sim_seconds,
        report.wall_seconds,
        report.sustained_jobs_per_sec,
        report.events_processed,
        report.worker_threads,
        report.merge_wall_s * 1e3,
    );
    csv.push_str(&format!(
        "service,{},{},{},{:.3},,,{:.2},{:.2},{}\n",
        a.submitted,
        a.accepted,
        a.rejected(),
        report.sustained_jobs_per_sec,
        report.decision_latency.p50_us,
        report.decision_latency.p99_us,
        report.decision_latency.count,
    ));

    let out = results_dir().join("service.csv");
    std::fs::write(&out, csv).expect("cannot write service.csv");
    println!("wrote {}", out.display());
}
