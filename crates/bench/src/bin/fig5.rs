//! Reproduces **Fig. 5**: PPO training progress — average episode reward
//! (left axis) and entropy loss (right axis) over training timesteps.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin fig5 [-- --timesteps 100000 --seed 42 --envs 4 --update-workers 1 --comm-aware --queue-aware]
//! ```
//!
//! `--queue-aware` trains on the 19-dim observation with the three queue
//! features appended (see `GymConfig::queue_aware`); the default is the
//! paper's 16-dim state. `--update-workers N` parallelises the PPO
//! optimisation phase over `N` threads (bit-identical results at any `N`;
//! `0` = one per core).

use qcs_bench::cli::{arg, flag, update_workers_arg};
use qcs_bench::runner::results_dir;
use qcs_bench::train::{train_allocation_policy_opts, TrainOpts};
use qcs_qcloud::GymConfig;

fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let step = (values.len() as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < values.len() && out.chars().count() < width {
        let v = values[i as usize];
        let idx = (((v - lo) / span) * 7.0).round() as usize;
        out.push(BARS[idx.min(7)]);
        i += step;
    }
    out
}

fn main() {
    let timesteps: u64 = arg("--timesteps", 100_000);
    let seed: u64 = arg("--seed", 42);
    let n_envs: usize = arg("--envs", 4);
    let update_workers = update_workers_arg();
    let comm_aware = flag("--comm-aware");
    let queue_aware = flag("--queue-aware");

    eprintln!(
        "[fig5] training PPO for {timesteps} timesteps on {n_envs} envs \
         ({update_workers} update workers, comm_aware = {comm_aware}, \
         queue_aware = {queue_aware})..."
    );
    let gym = GymConfig {
        comm_aware_reward: comm_aware,
        queue_aware,
        ..GymConfig::default()
    };
    let t0 = std::time::Instant::now();
    let out = train_allocation_policy_opts(
        gym,
        TrainOpts {
            total_timesteps: timesteps,
            n_envs,
            seed,
            n_update_workers: update_workers,
        },
    );
    eprintln!("[fig5] done in {:.1}s", t0.elapsed().as_secs_f64());

    let log = out.ppo.log();
    let rewards: Vec<f64> = log.entries.iter().map(|e| e.ep_rew_mean).collect();
    let entropy: Vec<f64> = log.entries.iter().map(|e| e.entropy_loss).collect();

    println!("Fig. 5 — PPO training progress ({timesteps} timesteps)");
    println!();
    println!(
        "avg episode reward  [{:.4} → {:.4}]",
        rewards.first().unwrap_or(&f64::NAN),
        rewards.last().unwrap_or(&f64::NAN)
    );
    println!("  {}", sparkline(&rewards, 80));
    println!(
        "entropy loss        [{:.3} → {:.3}]  (paper: ≈ −7 → −2)",
        entropy.first().unwrap_or(&f64::NAN),
        entropy.last().unwrap_or(&f64::NAN)
    );
    println!("  {}", sparkline(&entropy, 80));
    println!();
    println!(
        "final: reward {:.4} (paper plateaus ≈ 0.70), entropy loss {:.3}",
        log.final_reward(),
        entropy.last().unwrap_or(&f64::NAN)
    );

    let dir = results_dir();
    // Variant-specific filenames: a queue-aware policy has a different
    // observation layout and must not clobber the cached 16-dim policy
    // `table2`/`fig6` deploy.
    let variant = match (comm_aware, queue_aware) {
        (false, false) => "",
        (true, false) => "_comm_aware",
        (false, true) => "_queue_aware",
        (true, true) => "_comm_queue_aware",
    };
    let csv_path = dir.join(format!("fig5_training{variant}.csv"));
    std::fs::write(&csv_path, log.to_csv()).expect("cannot write training CSV");
    let policy_path = dir.join(format!("rl_policy{variant}.json"));
    std::fs::write(&policy_path, out.policy_json()).expect("cannot write policy");
    eprintln!(
        "[fig5] wrote {} and {}",
        csv_path.display(),
        policy_path.display()
    );
}
