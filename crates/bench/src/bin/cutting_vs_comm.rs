//! **Cutting vs real-time communication** (extension): quantifies the §2
//! claim that circuit cutting "introduces additional computational overhead
//! and may be impractical", and charts where the crossover sits.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin cutting_vs_comm [-- --seed 42]
//! ```
//!
//! Part 1 sweeps two-qubit-gate density for the paper's job template under
//! both locality assumptions, pricing wall-clock time and fidelity of the
//! two execution modes analytically (Eqs. 3-9 vs the γ²-per-cut model).
//! Part 2 prices *measured* cut counts on concrete generated circuits from
//! each workload family. Output: `results/cutting_vs_comm.csv` +
//! `results/cutting_families.csv`.

use qcs_bench::cli::arg;
use qcs_bench::runner::results_dir;
use qcs_bench::table::AsciiTable;
use qcs_circuit::{cut_circuit, CutCostModel};
use qcs_qcloud::model::comm::CommModel;
use qcs_qcloud::model::exec_time::ExecTimeModel;
use qcs_qcloud::model::fidelity::{DeviceErrorRates, FidelityModel};
use qcs_qcloud::{
    realtime_comm_outcome, CircuitLocality, CuttingExecModel, FragmentSite, JobId, QJob,
};
use qcs_workload::circuits::{circuit_workload, CircuitWorkloadConfig};

/// Two premium-device fragment sites (the ibm_strasbourg/brussels pair).
fn sites(q: u64) -> Vec<FragmentSite> {
    let rates = DeviceErrorRates {
        single_qubit: 3e-4,
        two_qubit: 8e-3,
        readout: 1.5e-2,
    };
    vec![
        FragmentSite {
            qubits: q / 2,
            clops: 220_000.0,
            qv_layers: 7.0,
            rates,
        },
        FragmentSite {
            qubits: q - q / 2,
            clops: 220_000.0,
            qv_layers: 7.0,
            rates,
        },
    ]
}

fn template_job(q: u64, t2: u64) -> QJob {
    QJob {
        id: JobId(0),
        num_qubits: q,
        depth: 12,
        num_shots: 50_000,
        two_qubit_gates: t2,
        arrival_time: 0.0,
    }
}

fn main() {
    let seed: u64 = arg("--seed", 42);
    let exec = ExecTimeModel::default();
    let fid = FidelityModel::default();
    let comm = CommModel::default();

    // ---------- Part 1: density sweep under both localities ----------
    println!("\nPart 1 — density sweep (q=190, d=12, s=50k, 2 premium devices)\n");
    let mut table = AsciiTable::new(&[
        "locality",
        "t2",
        "cuts",
        "overhead",
        "cut wall (s)",
        "comm wall (s)",
        "winner",
        "F_cut",
        "F_comm",
    ]);
    let mut csv = String::from("locality,t2,cuts,overhead,cut_wall,comm_wall,fid_cut,fid_comm\n");
    let q = 190u64;
    for locality in [CircuitLocality::Chain, CircuitLocality::Random] {
        let model = CuttingExecModel {
            cost: CutCostModel::default(),
            locality,
            exec,
            fidelity: fid,
        };
        for density in [0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25] {
            let t2 = (density * q as f64 * 12.0).round().max(1.0) as u64;
            let job = template_job(q, t2);
            let s = sites(q);
            let cut = model.evaluate(&job, &s);
            let rt = realtime_comm_outcome(&job, &s, &exec, &fid, &comm);
            let winner = if cut.wall_seconds < rt.wall_seconds {
                "cutting"
            } else {
                "comm"
            };
            let loc = match locality {
                CircuitLocality::Chain => "chain",
                CircuitLocality::Random => "random",
                CircuitLocality::Fixed(_) => "fixed",
            };
            table.row(vec![
                loc.into(),
                t2.to_string(),
                cut.cuts.to_string(),
                format!("{:.3e}", cut.sampling_overhead),
                format!("{:.3e}", cut.wall_seconds),
                format!("{:.1}", rt.wall_seconds),
                winner.into(),
                format!("{:.4}", cut.fidelity),
                format!("{:.4}", rt.fidelity),
            ]);
            csv.push_str(&format!(
                "{loc},{t2},{},{:.6e},{:.6e},{:.3},{:.5},{:.5}\n",
                cut.cuts,
                cut.sampling_overhead,
                cut.wall_seconds,
                rt.wall_seconds,
                cut.fidelity,
                rt.fidelity
            ));
        }
    }
    println!("{}", table.render());
    std::fs::write(results_dir().join("cutting_vs_comm.csv"), csv).expect("write csv");

    // ---------- Part 2: measured cuts on concrete circuits ----------
    println!("\nPart 2 — measured cut counts per circuit family (fragments ≤ 127 qubits)\n");
    let mut fam_table = AsciiTable::new(&[
        "family",
        "q",
        "t2",
        "cuts",
        "overhead",
        "cut wall (s)",
        "comm wall (s)",
        "winner",
    ]);
    let mut fam_csv = String::from("family,q,t2,cuts,overhead,cut_wall,comm_wall,winner\n");
    let cfg = CircuitWorkloadConfig::default();
    let jobs = circuit_workload(40, &cfg, seed);
    // One representative per family: the first generated instance.
    let mut seen = std::collections::BTreeSet::new();
    for cj in &jobs {
        if !seen.insert(cj.family.label()) {
            continue;
        }
        let plan = cut_circuit(&cj.circuit, 127, CutCostModel::default());
        let model = CuttingExecModel {
            cost: CutCostModel::default(),
            locality: CircuitLocality::Fixed(plan.cut_gates),
            exec,
            fidelity: fid,
        };
        let s = sites(cj.job.num_qubits);
        let cut = model.evaluate(&cj.job, &s);
        let rt = realtime_comm_outcome(&cj.job, &s, &exec, &fid, &comm);
        let winner = if cut.wall_seconds < rt.wall_seconds {
            "cutting"
        } else {
            "comm"
        };
        fam_table.row(vec![
            cj.family.label().into(),
            cj.job.num_qubits.to_string(),
            cj.job.two_qubit_gates.to_string(),
            plan.cut_gates.to_string(),
            format!("{:.3e}", cut.sampling_overhead),
            format!("{:.3e}", cut.wall_seconds),
            format!("{:.1}", rt.wall_seconds),
            winner.into(),
        ]);
        fam_csv.push_str(&format!(
            "{},{},{},{},{:.6e},{:.6e},{:.3},{winner}\n",
            cj.family.label(),
            cj.job.num_qubits,
            cj.job.two_qubit_gates,
            plan.cut_gates,
            cut.sampling_overhead,
            cut.wall_seconds,
            rt.wall_seconds,
        ));
    }
    println!("{}", fam_table.render());
    std::fs::write(results_dir().join("cutting_families.csv"), fam_csv).expect("write csv");
    println!(
        "\nwrote {} and {}",
        results_dir().join("cutting_vs_comm.csv").display(),
        results_dir().join("cutting_families.csv").display()
    );
}
