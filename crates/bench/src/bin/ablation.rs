//! Ablation studies beyond the paper's headline table, covering the design
//! choices called out in DESIGN.md and the paper's §6.6/§7.2 future-work
//! items.
//!
//! ```text
//! cargo run -p qcs-bench --release --bin ablation -- <name> [--jobs N] [--seed S]
//!
//! names:
//!   phi      — communication fidelity-penalty sweep (φ ∈ [0.85, 1.0])
//!   lambda   — per-qubit comm-latency sweep (λ ∈ [0, 0.1] s)
//!   weights  — error-score weight (α, θ, γ) sensitivity
//!   release  — per-device vs at-job-end qubit release (Table 2 mechanics)
//!   reward   — plain vs communication-aware RL reward shaping
//!   scale    — fleet-size scaling (5..40 devices) + kernel throughput
//!   exec     — execution-time constants (M·K) sweep
//! ```

use qcs_bench::cli::arg;
use qcs_bench::runner::{results_dir, run_strategy, StrategySpec};
use qcs_bench::table::AsciiTable;
use qcs_bench::train::train_allocation_policy;
use qcs_calibration::{ibm_fleet, DeviceProfile, ErrorScoreWeights};
use qcs_qcloud::config::ReleasePolicy;
use qcs_qcloud::jobgen::batch_at_zero;
use qcs_qcloud::{GymConfig, JobDistribution, QCloudSimEnv, SimParams};
use qcs_workload::suite::paper_case_study;

fn save(name: &str, table: &AsciiTable) {
    let path = results_dir().join(format!("ablation_{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("cannot write ablation CSV");
    eprintln!("[ablation] wrote {}", path.display());
}

fn phi_sweep(n_jobs: usize, seed: u64) {
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["phi", "strategy", "mu_F", "T_comm"]);
    for phi in [0.85, 0.90, 0.95, 0.99, 1.0] {
        for strat in ["speed", "fidelity"] {
            let mut params = SimParams::default();
            params.comm.phi = phi;
            let r = run_strategy(
                &StrategySpec::Named(strat.into()),
                jobs.clone(),
                &params,
                seed,
            );
            table.row(vec![
                format!("{phi:.2}"),
                strat.into(),
                format!("{:.5}", r.summary.mean_fidelity),
                format!("{:.1}", r.summary.total_comm),
            ]);
        }
    }
    println!("Ablation: φ (per-link fidelity penalty). As φ → 1 the speed");
    println!("policy's fragmentation stops costing fidelity and the gap to");
    println!("the error-aware policy narrows to pure device quality.");
    println!("{}", table.render());
    save("phi", &table);
}

fn lambda_sweep(n_jobs: usize, seed: u64) {
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["lambda", "strategy", "T_comm", "T_sim"]);
    for lambda in [0.0, 0.01, 0.02, 0.05, 0.1] {
        for strat in ["speed", "fidelity"] {
            let mut params = SimParams::default();
            params.comm.lambda = lambda;
            let r = run_strategy(
                &StrategySpec::Named(strat.into()),
                jobs.clone(),
                &params,
                seed,
            );
            table.row(vec![
                format!("{lambda:.2}"),
                strat.into(),
                format!("{:.1}", r.summary.total_comm),
                format!("{:.1}", r.summary.t_sim),
            ]);
        }
    }
    println!("Ablation: λ (per-qubit classical latency). T_comm scales");
    println!("linearly; makespan is barely affected (communication is short");
    println!("relative to execution).");
    println!("{}", table.render());
    save("lambda", &table);
}

fn weight_sweep(n_jobs: usize, seed: u64) {
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["alpha", "theta", "gamma", "mu_F(fidelity)", "k_mean"]);
    for (a, t, g) in [
        (0.5, 0.3, 0.2), // paper
        (1.0, 0.0, 0.0), // readout only
        (0.0, 1.0, 0.0), // 1Q only
        (0.0, 0.0, 1.0), // 2Q only
        (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
    ] {
        let params = SimParams {
            error_weights: ErrorScoreWeights {
                alpha: a,
                theta: t,
                gamma: g,
            },
            ..SimParams::default()
        };
        let r = run_strategy(
            &StrategySpec::Named("fidelity".into()),
            jobs.clone(),
            &params,
            seed,
        );
        table.row(vec![
            format!("{a:.2}"),
            format!("{t:.2}"),
            format!("{g:.2}"),
            format!("{:.5}", r.summary.mean_fidelity),
            format!("{:.2}", r.summary.mean_devices_per_job),
        ]);
    }
    println!("Ablation: error-score weights (Eq. 2). The ranking of the five");
    println!("synthetic devices is consistent across channels, so the");
    println!("error-aware policy is robust to the exact weighting — matching");
    println!("the paper's claim that the scheme 'can be adjusted as necessary'.");
    println!("{}", table.render());
    save("weights", &table);
}

fn release_sweep(n_jobs: usize, seed: u64) {
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["release", "strategy", "T_sim", "mu_F"]);
    for (name, release) in [
        ("per-device", ReleasePolicy::PerDevice),
        ("at-job-end", ReleasePolicy::AtJobEnd),
    ] {
        for strat in ["speed", "fidelity", "fair"] {
            let params = SimParams {
                release,
                ..SimParams::default()
            };
            let r = run_strategy(
                &StrategySpec::Named(strat.into()),
                jobs.clone(),
                &params,
                seed,
            );
            table.row(vec![
                name.into(),
                strat.into(),
                format!("{:.1}", r.summary.t_sim),
                format!("{:.5}", r.summary.mean_fidelity),
            ]);
        }
    }
    println!("Ablation: qubit release discipline. Holding all qubits until");
    println!("job completion (the literal Algorithm 1) lets slow co-devices");
    println!("pin fast-device qubits, inverting the speed-vs-fidelity");
    println!("makespan ordering — evidence for per-device release as the");
    println!("paper's effective semantics (see DESIGN.md).");
    println!("{}", table.render());
    save("release", &table);
}

fn reward_sweep(seed: u64) {
    let timesteps: u64 = arg("--timesteps", 40_000);
    let n_jobs: usize = arg("--jobs", 300);
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["reward", "train_reward", "deploy_mu_F", "T_comm", "k_mean"]);
    for comm_aware in [false, true] {
        eprintln!(
            "[ablation] training {} policy ({timesteps} steps)...",
            if comm_aware { "comm-aware" } else { "plain" }
        );
        let out = train_allocation_policy(timesteps, 4, seed, comm_aware);
        let spec = StrategySpec::Rl {
            policy_json: out.policy_json(),
            gym: GymConfig {
                comm_aware_reward: comm_aware,
                ..GymConfig::default()
            },
        };
        let r = run_strategy(&spec, jobs.clone(), &SimParams::default(), seed);
        table.row(vec![
            if comm_aware {
                "comm-aware"
            } else {
                "plain (paper)"
            }
            .into(),
            format!("{:.4}", out.ppo.log().final_reward()),
            format!("{:.5}", r.summary.mean_fidelity),
            format!("{:.1}", r.summary.total_comm),
            format!("{:.2}", r.summary.mean_devices_per_job),
        ]);
    }
    println!("Ablation: RL reward shaping (§6.6 future work). The plain");
    println!("reward ignores the φ penalty, so the agent fragments jobs;");
    println!("comm-aware shaping teaches it to use fewer devices, raising");
    println!("deployed fidelity and cutting communication.");
    println!("{}", table.render());
    save("reward", &table);
}

fn scale_sweep(seed: u64) {
    let mut table = AsciiTable::new(&[
        "devices",
        "jobs",
        "T_sim",
        "events",
        "wall_ms",
        "events_per_sec",
    ]);
    for n_devices in [5usize, 10, 20, 40] {
        // Replicate the 5-device fleet with fresh calibration seeds.
        let mut profiles: Vec<DeviceProfile> = Vec::with_capacity(n_devices);
        for i in 0..n_devices {
            let fleet = ibm_fleet(seed + i as u64);
            profiles.push(fleet[i % 5].clone());
        }
        let n_jobs = 200 * n_devices;
        let jobs = batch_at_zero(n_jobs, &JobDistribution::default(), seed);
        let t0 = std::time::Instant::now();
        let env = QCloudSimEnv::new(
            profiles,
            Box::new(qcs_qcloud::policies::SpeedBroker::new()),
            jobs,
            SimParams::default(),
            seed,
        );
        let r = env.run();
        let wall = t0.elapsed();
        assert_eq!(r.summary.jobs_unfinished, 0);
        table.row(vec![
            n_devices.to_string(),
            n_jobs.to_string(),
            format!("{:.0}", r.summary.t_sim),
            r.events_processed.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.0}", r.events_processed as f64 / wall.as_secs_f64()),
        ]);
    }
    println!("Ablation: fleet scaling. Kernel throughput (events/s) stays");
    println!("flat as the fleet and workload grow — the simulator is fit for");
    println!("cloud-scale what-if studies.");
    println!("{}", table.render());
    save("scale", &table);
}

fn algo_sweep(seed: u64) {
    use qcs_qcloud::{JobDistribution, QCloudGymEnv};
    use qcs_rl::{Reinforce, ReinforceConfig};

    let timesteps: u64 = arg("--timesteps", 30_000);
    let gym = GymConfig::default();
    let mk_env = || {
        QCloudGymEnv::new(
            &ibm_fleet(seed),
            JobDistribution::default(),
            SimParams::default(),
            gym.clone(),
        )
    };

    // PPO (the paper's algorithm).
    eprintln!("[ablation] PPO {timesteps} steps...");
    let ppo_out = train_allocation_policy(timesteps, 4, seed, false);
    // REINFORCE baseline.
    eprintln!("[ablation] REINFORCE {timesteps} steps...");
    let mut reinforce = Reinforce::new(
        gym.obs_dim(),
        gym.max_devices,
        ReinforceConfig {
            learning_rate: 1e-3,
            seed,
            ..ReinforceConfig::default()
        },
    );
    let mut env = mk_env();
    reinforce.learn(&mut env, timesteps);

    // Evaluate both deterministically on a common env.
    let mut table = AsciiTable::new(&["algorithm", "final_train_reward", "eval_reward"]);
    for (name, ac, train_r) in [
        ("ppo", &ppo_out.ppo.ac, ppo_out.ppo.log().final_reward()),
        (
            "reinforce",
            &reinforce.ac,
            reinforce
                .log()
                .entries
                .last()
                .map(|e| e.ep_rew_mean)
                .unwrap_or(f64::NAN),
        ),
    ] {
        let mut eval_env = mk_env();
        let stats = qcs_rl::evaluate(ac, &mut eval_env, 500, seed ^ 0xEA1, true, 4);
        table.row(vec![
            name.into(),
            format!("{train_r:.4}"),
            format!("{:.4}", stats.mean_return()),
        ]);
    }
    println!("Ablation: RL algorithm (PPO vs REINFORCE) on the allocation");
    println!("task. Both learners converge to comparable rewards — the task");
    println!("is a smooth single-step optimisation — validating that the");
    println!("paper's results do not hinge on PPO specifically.");
    println!("{}", table.render());
    save("algo", &table);
}

fn backfill_sweep(n_jobs: usize, seed: u64) {
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["backfill_depth", "strategy", "T_sim", "mean_wait", "mu_F"]);
    for depth in [0usize, 2, 8, 32] {
        for strat in ["speed", "fair"] {
            let params = SimParams {
                backfill_depth: depth,
                ..SimParams::default()
            };
            let r = run_strategy(
                &StrategySpec::Named(strat.into()),
                jobs.clone(),
                &params,
                seed,
            );
            assert_eq!(r.summary.jobs_unfinished, 0);
            table.row(vec![
                depth.to_string(),
                strat.into(),
                format!("{:.1}", r.summary.t_sim),
                format!("{:.1}", r.summary.mean_wait),
                format!("{:.5}", r.summary.mean_fidelity),
            ]);
        }
    }
    println!("Ablation: scheduler backfilling (extension). Letting small jobs");
    println!("slip past a blocked head fills fragmented capacity, trimming");
    println!("makespan and mean wait without touching fidelity.");
    println!("{}", table.render());
    save("backfill", &table);
}

fn exec_sweep(n_jobs: usize, seed: u64) {
    let jobs = {
        let mut s = paper_case_study(seed);
        s.jobs.truncate(n_jobs);
        s.jobs
    };
    let mut table = AsciiTable::new(&["M*K", "strategy", "T_sim", "T_comm_share_%"]);
    for mk in [10.0, 100.0, 1000.0] {
        for strat in ["speed", "fidelity"] {
            let mut params = SimParams::default();
            params.exec.m_templates = mk / 10.0;
            params.exec.k_updates = 10.0;
            let r = run_strategy(
                &StrategySpec::Named(strat.into()),
                jobs.clone(),
                &params,
                seed,
            );
            table.row(vec![
                format!("{mk:.0}"),
                strat.into(),
                format!("{:.1}", r.summary.t_sim),
                format!(
                    "{:.2}",
                    100.0 * r.summary.total_comm / (r.summary.t_sim * 5.0)
                ),
            ]);
        }
    }
    println!("Ablation: execution-time constants (Eq. 3). Makespans scale");
    println!("linearly in M·K; the §6.1 worked example corresponds to");
    println!("M·K = 1000, the case-study calibration to M·K = 100.");
    println!("{}", table.render());
    save("exec", &table);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let n_jobs: usize = arg("--jobs", 300);
    let seed: u64 = arg("--seed", 42);
    match which.as_str() {
        "phi" => phi_sweep(n_jobs, seed),
        "lambda" => lambda_sweep(n_jobs, seed),
        "weights" => weight_sweep(n_jobs, seed),
        "release" => release_sweep(n_jobs, seed),
        "reward" => reward_sweep(seed),
        "scale" => scale_sweep(seed),
        "exec" => exec_sweep(n_jobs, seed),
        "backfill" => backfill_sweep(n_jobs, seed),
        "algo" => algo_sweep(seed),
        "all" => {
            phi_sweep(n_jobs, seed);
            lambda_sweep(n_jobs, seed);
            weight_sweep(n_jobs, seed);
            release_sweep(n_jobs, seed);
            reward_sweep(seed);
            scale_sweep(seed);
            exec_sweep(n_jobs, seed);
            backfill_sweep(n_jobs, seed);
            algo_sweep(seed);
        }
        other => {
            eprintln!("unknown ablation '{other}'");
            eprintln!("usage: ablation <phi|lambda|weights|release|reward|scale|exec|backfill|algo|all> [--jobs N] [--seed S]");
            std::process::exit(2);
        }
    }
}
