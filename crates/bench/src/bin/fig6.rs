//! Reproduces **Fig. 6**: fidelity distributions of quantum jobs under the
//! four allocation strategies (four histograms).
//!
//! ```text
//! cargo run -p qcs-bench --release --bin fig6 [-- --jobs 1000 --seed 42 --bins 40]
//! ```
//!
//! Requires a trained RL policy (run `table2` or `fig5` first, or this
//! binary trains a quick one).

//! `--strategies a,b,c` sweeps arbitrary scheduler specs (incl. composed
//! disciplines like `backfill+speed` or `conservative+fair`) instead of
//! the paper's four.

use qcs_bench::cli::arg;
use qcs_bench::runner::{results_dir, run_strategies, table2_strategies, StrategySpec};
use qcs_bench::train::train_allocation_policy;
use qcs_qcloud::{GymConfig, SimParams, SummaryStats};
use qcs_workload::suite::paper_case_study;

fn main() {
    let n_jobs: usize = arg("--jobs", 1_000);
    let seed: u64 = arg("--seed", 42);
    let bins: usize = arg("--bins", 40);
    let timesteps: u64 = arg("--timesteps", 60_000);
    let strategies: String = arg("--strategies", "speed,fidelity,fair,rl".to_string());
    let wants_rl = StrategySpec::list_wants_rl(&strategies);

    let dir = results_dir();
    let policy_path = dir.join("rl_policy.json");
    let policy_json = if !wants_rl {
        String::new()
    } else if policy_path.exists() {
        std::fs::read_to_string(&policy_path).expect("cannot read cached policy")
    } else {
        eprintln!("[fig6] no cached policy; training {timesteps} timesteps...");
        let out = train_allocation_policy(timesteps, 4, seed, false);
        let json = out.policy_json();
        std::fs::write(&policy_path, &json).expect("cannot cache policy");
        json
    };

    let mut suite = paper_case_study(seed);
    suite.jobs.truncate(n_jobs);
    let params = SimParams::default();
    let specs: Vec<StrategySpec> = if strategies == "speed,fidelity,fair,rl" {
        table2_strategies(policy_json, GymConfig::default())
    } else {
        StrategySpec::parse_list(&strategies, &policy_json, &GymConfig::default())
    };

    eprintln!(
        "[fig6] running {} strategies × {} jobs...",
        specs.len(),
        suite.jobs.len()
    );
    let results = run_strategies(&specs, &suite.jobs, &params, seed);

    // Common range across strategies so the four panels are comparable,
    // like the paper's shared x-axis.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for r in &results {
        for rec in &r.records {
            lo = lo.min(rec.fidelity);
            hi = hi.max(rec.fidelity);
        }
    }
    let pad = 0.01;
    let (lo, hi) = (lo - pad, hi + pad);

    println!("Fig. 6 — Fidelity distributions under four allocation strategies");
    println!("(shared range [{lo:.3}, {hi:.3}), {bins} bins)");
    for r in &results {
        let h = SummaryStats::fidelity_histogram(&r.records, lo, hi, bins);
        println!();
        println!(
            "--- {} (μ = {:.5}, σ = {:.5}, mode bin centre = {:.4}) ---",
            r.summary.strategy,
            r.summary.mean_fidelity,
            r.summary.std_fidelity,
            h.bin_center(h.mode_bin())
        );
        print!("{}", h.ascii(60));

        // CSV: bin_lo, bin_hi, count
        let mut csv = String::from("bin_lo,bin_hi,count\n");
        for i in 0..h.nbins() {
            let (a, b) = h.bin_edges(i);
            csv.push_str(&format!("{a:.6},{b:.6},{}\n", h.bins()[i]));
        }
        let path = dir.join(format!("fig6_{}.csv", r.summary.strategy));
        std::fs::write(&path, csv).expect("cannot write histogram CSV");
        eprintln!("[fig6] wrote {}", path.display());
    }

    println!();
    println!("Paper's qualitative shapes: speed & fair narrow around 0.65;");
    println!("fidelity-optimised right-shifted (above 0.66); RL flat/broad 0.60–0.64.");
}
