//! Minimal CLI parsing shared by the bench bins and the repository
//! examples (one copy instead of one per binary).

/// Parses `--name value` from `std::env::args`, silently falling back to
/// `default` when the flag is absent or its value does not parse — the
/// repo-wide convention for the experiment harness CLIs.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--name` flag is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses `--update-workers N` (default `1` = single-threaded) and
/// resolves `0` to one worker per available core. Training results are
/// bit-identical at any worker count (see `qcs_rl::update`); the knob
/// only changes wall-clock time.
pub fn update_workers_arg() -> usize {
    match arg("--update-workers", 1usize) {
        0 => qcs_desim::parallel::default_threads(),
        n => n,
    }
}

/// Cores available to this process, via
/// [`std::thread::available_parallelism`]; `1` when detection fails.
/// The bench recorders stamp this next to multi-worker speedups so
/// `bench_guard` can honestly skip floors a small recording host cannot
/// meet (and nag when the checking host could re-record them).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_flag_falls_back_to_default() {
        assert_eq!(arg("--definitely-not-passed", 7u64), 7);
        assert!(!flag("--definitely-not-passed"));
    }

    #[test]
    fn host_cores_detects_at_least_one() {
        assert!(host_cores() >= 1);
    }

    #[test]
    fn update_workers_defaults_single_threaded() {
        assert_eq!(update_workers_arg(), 1);
    }
}
