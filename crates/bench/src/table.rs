//! Minimal ASCII table rendering for harness output.

/// A simple left-padded ASCII table.
#[derive(Debug, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        AsciiTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:>w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push_str(&fmt_row(&self.header));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&sep);
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = AsciiTable::new(&["mode", "T_sim"]);
        t.row(vec!["speed".into(), "108775.38".into()]);
        t.row(vec!["fidelity".into(), "209873.02".into()]);
        let s = t.render();
        assert!(s.contains("speed |"), "cells are right-aligned: {s}");
        assert!(s.lines().count() == 6);
        // All lines equal width.
        let widths: std::collections::HashSet<usize> = s.lines().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1);
    }

    #[test]
    fn csv_export() {
        let mut t = AsciiTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        AsciiTable::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
