//! # qcs-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Artifact | Binary | Output |
//! |---|---|---|
//! | Table 2 (strategy comparison) | `table2` | stdout + `results/table2.csv` |
//! | Fig. 5 (PPO training curves) | `fig5` | stdout + `results/fig5_training.csv` |
//! | Fig. 6 (fidelity histograms) | `fig6` | stdout + `results/fig6_<strategy>.csv` |
//! | Ablations (φ, λ, weights, release policy, reward shaping, scale) | `ablation <name>` | stdout + `results/ablation_<name>.csv` |
//!
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

pub mod cli;
pub mod runner;
pub mod table;
pub mod train;

pub use runner::{run_strategy, StrategySpec};
pub use table::AsciiTable;
pub use train::{
    train_allocation_policy, train_allocation_policy_opts, train_allocation_policy_with, TrainOpts,
    TrainOutcome,
};
