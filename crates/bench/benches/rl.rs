//! RL stack benchmarks: policy inference latency (the per-decision cost of
//! the RL broker), rollout-collection throughput (per-env vs batched — the
//! dominant cost of every training experiment), and PPO optimisation
//! throughput.
//!
//! The rollout benchmarks also emit `BENCH_rollout.json` at the repository
//! root with before/after steps-per-second, so the perf trajectory of the
//! batched hot path is tracked across PRs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qcs_desim::Xoshiro256StarStar;
use qcs_rl::env::{Env, StepInfo};
use qcs_rl::envs::bandit::ContinuousBandit;
use qcs_rl::envs::pointmass::PointMass;
use qcs_rl::nn::Matrix;
use qcs_rl::policy::{ActScratch, ActorCritic};
use qcs_rl::{Ppo, PpoConfig, VecEnv};

const N_ENVS: usize = 16;
const HORIZON: usize = 64;

fn pointmass_envs(n: usize) -> Vec<Box<dyn Env>> {
    (0..n)
        .map(|s| Box::new(PointMass::new(HORIZON).with_tag(s as u64)) as Box<dyn Env>)
        .collect()
}

fn pointmass_vecenv(n: usize) -> VecEnv {
    VecEnv::sequential(pointmass_envs(n))
}

/// The seed's matmul: row-at-a-time axpy accumulation into a zeroed output
/// (reloading/storing the output row every `k` iteration), kept verbatim as
/// the "before" kernel for the rollout-throughput comparison.
fn seed_matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.reshape_zeroed(a.rows(), b.cols());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        let a_row = &a.data()[i * k..(i + 1) * k];
        let out_row = &mut out.data_mut()[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b.data()[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * bv;
            }
        }
    }
}

/// The seed's per-sample MLP forward: allocate a fresh `[1, obs]` input,
/// seed-kernel matmul + separate bias pass per layer, scalar libm `tanh`.
fn seed_forward(net: &qcs_rl::nn::Mlp, obs: &[f32], bufs: &mut Vec<Matrix>) -> f64 {
    bufs.resize_with(net.layers().len() + 1, || Matrix::zeros(0, 0));
    bufs[0] = Matrix::from_vec(1, obs.len(), obs.to_vec());
    for (i, layer) in net.layers().iter().enumerate() {
        let (head, tail) = bufs.split_at_mut(i + 1);
        let input = &head[i];
        let out = &mut tail[0];
        seed_matmul(input, &layer.w, out);
        for (o, &bias) in out.row_mut(0).iter_mut().zip(&layer.b) {
            *o += bias;
        }
        if i + 1 < net.layers().len() {
            for v in out.data_mut() {
                *v = v.tanh();
            }
        }
    }
    bufs.last().unwrap().get(0, 0) as f64
}

/// The seed's rollout loop: one policy + one value forward per env per step
/// (1-row GEMVs through [`seed_forward`]), per-step action/observation
/// allocations, and direct per-env stepping with seed-style auto-reset —
/// deliberately NOT routed through the new `VecEnv` wrappers, so the
/// recorded baseline pays exactly (and only) what the seed paid.
fn rollout_per_env(ac: &ActorCritic, envs: &mut [Box<dyn Env>], steps: usize) -> f64 {
    let mut rng = Xoshiro256StarStar::new(7);
    let mut pi_bufs: Vec<Matrix> = Vec::new();
    let mut vf_bufs: Vec<Matrix> = Vec::new();
    // Seed-style reset: per-env base seeds from one SplitMix64 stream, and
    // per-episode reseeding on done (matching the seed AutoReset wrapper).
    let mut sm = qcs_desim::SplitMix64::new(11);
    let base_seeds: Vec<u64> = envs.iter().map(|_| sm.next_u64()).collect();
    let episode_seed = |base: u64, episode: u64| -> u64 {
        qcs_desim::SplitMix64::new(base ^ episode.wrapping_mul(0x2545F4914F6CDD1D)).next_u64()
    };
    let mut episodes = vec![0u64; envs.len()];
    let mut obs: Vec<Vec<f32>> = envs
        .iter_mut()
        .zip(&base_seeds)
        .map(|(env, &s)| env.reset(episode_seed(s, 0)))
        .collect();
    let mut reward_acc = 0.0;
    for _ in 0..steps {
        for (e, env) in envs.iter_mut().enumerate() {
            let _ = seed_forward(&ac.pi, &obs[e], &mut pi_bufs);
            let mean = pi_bufs.last().unwrap().row(0);
            let action: Vec<f32> = mean
                .iter()
                .zip(&ac.log_std)
                .map(|(&mu, &ls)| mu + ls.exp() * qcs_desim::dist::standard_normal(&mut rng) as f32)
                .collect();
            let _value = seed_forward(&ac.vf, &obs[e], &mut vf_bufs);
            let mut r = env.step(&action);
            if r.done() {
                episodes[e] += 1;
                r.obs = env.reset(episode_seed(base_seeds[e], episodes[e]));
            }
            reward_acc += r.reward;
            obs[e] = r.obs.clone();
        }
    }
    reward_acc
}

/// The batched rollout hot path: one policy GEMM + one value GEMM per step
/// over all envs, observations written into reusable matrices.
fn rollout_batched(ac: &ActorCritic, envs: &mut VecEnv, steps: usize) -> f64 {
    let n = envs.num_envs();
    let mut rng = Xoshiro256StarStar::new(7);
    let mut scratch = ActScratch::new();
    let mut obs = Matrix::zeros(0, 0);
    envs.reset_into(11, &mut obs);
    let mut next_obs = Matrix::zeros(0, 0);
    let mut actions = Matrix::zeros(0, 0);
    let mut logps = vec![0.0; n];
    let mut values = vec![0.0; n];
    let mut infos = vec![StepInfo::default(); n];
    let mut reward_acc = 0.0;
    for _ in 0..steps {
        ac.act_batch(
            &obs,
            &mut rng,
            &mut scratch,
            &mut actions,
            &mut logps,
            &mut values,
        );
        envs.step_into(&actions, &mut next_obs, &mut infos);
        for info in &infos {
            reward_acc += info.reward;
        }
        std::mem::swap(&mut obs, &mut next_obs);
    }
    reward_acc
}

fn bench_policy_forward(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::new(1);
    let ac = ActorCritic::new(16, 5, &mut rng);
    let mut scratch = ActScratch::new();
    let obs = vec![0.3f32; 16];
    c.bench_function("rl/policy_forward_16obs_5act", |b| {
        b.iter(|| ac.act_deterministic(&obs, &mut scratch))
    });
    c.bench_function("rl/policy_sample_16obs_5act", |b| {
        b.iter(|| ac.act(&obs, &mut rng, &mut scratch))
    });

    // Batched inference: 16 policies queries per call vs 16 act() calls.
    let obs_mat = Matrix::from_vec(16, 16, (0..256).map(|i| (i % 7) as f32 * 0.1).collect());
    let mut actions = Matrix::zeros(0, 0);
    let mut logps = vec![0.0; 16];
    let mut values = vec![0.0; 16];
    c.bench_function("rl/act_batch_16x_16obs_5act", |b| {
        b.iter(|| {
            ac.act_batch(
                &obs_mat,
                &mut rng,
                &mut scratch,
                &mut actions,
                &mut logps,
                &mut values,
            )
        })
    });
    c.bench_function("rl/act_per_env_16x_16obs_5act", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for r in 0..16 {
                let (_a, lp, _v) = ac.act(obs_mat.row(r), &mut rng, &mut scratch);
                acc += lp;
            }
            acc
        })
    });
}

fn bench_rollout(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::new(2);
    let ac = ActorCritic::new(2, 2, &mut rng);
    let steps = 256usize;

    let mut group = c.benchmark_group("rl/rollout_pointmass_16env");
    group.throughput(Throughput::Elements((steps * N_ENVS) as u64));
    let mut raw_envs = pointmass_envs(N_ENVS);
    group.bench_function("per_env", |b| {
        b.iter(|| rollout_per_env(&ac, &mut raw_envs, steps))
    });
    let mut envs = pointmass_vecenv(N_ENVS);
    group.bench_function("batched", |b| {
        b.iter(|| rollout_batched(&ac, &mut envs, steps))
    });
    group.finish();

    write_rollout_json(&ac);
}

/// Measures both rollout paths directly and records steps-per-second (and
/// the speedup) in `BENCH_rollout.json` at the repository root.
fn write_rollout_json(ac: &ActorCritic) {
    if cfg!(debug_assertions) {
        // Unoptimised numbers would corrupt the tracked perf trajectory;
        // only measure from `cargo bench` (release) builds.
        return;
    }
    let budget = 0.7f64;
    let steps = 256usize;
    let mut raw_envs = pointmass_envs(N_ENVS);
    let mut envs = pointmass_vecenv(N_ENVS);

    // Warm up, then repeat whole rollouts until the time budget runs out;
    // report the best observed steps/second (least-noise estimate).
    let run = |f: &mut dyn FnMut() -> f64| {
        let _ = std::hint::black_box(f());
        let start = Instant::now();
        let mut best = 0.0f64;
        loop {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            best = best.max((steps * N_ENVS) as f64 / dt);
            if start.elapsed().as_secs_f64() > budget {
                break;
            }
        }
        best
    };

    let per_env_sps = run(&mut || rollout_per_env(ac, &mut raw_envs, steps));
    let batched_sps = run(&mut || rollout_batched(ac, &mut envs, steps));
    let speedup = batched_sps / per_env_sps;

    let json = format!(
        "{{\n  \"bench\": \"rollout_pointmass\",\n  \"n_envs\": {N_ENVS},\n  \"horizon\": {HORIZON},\n  \"steps_per_rollout\": {steps},\n  \"per_env_steps_per_sec\": {per_env_sps:.1},\n  \"batched_steps_per_sec\": {batched_sps:.1},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rollout.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!(
        "rollout throughput: per-env {per_env_sps:.0} steps/s, batched {batched_sps:.0} steps/s ({speedup:.2}x) -> BENCH_rollout.json"
    );
}

fn bench_ppo_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl/ppo");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2048));
    group.bench_function("one_iteration_2048_steps", |b| {
        b.iter(|| {
            let cfg = PpoConfig {
                n_steps: 512,
                batch_size: 64,
                n_epochs: 10,
                seed: 3,
                ..PpoConfig::default()
            };
            let mut ppo = Ppo::new(1, 2, cfg);
            let envs: Vec<Box<dyn qcs_rl::env::Env>> = (0..4)
                .map(|_| {
                    Box::new(ContinuousBandit::new(vec![0.5, -0.5])) as Box<dyn qcs_rl::env::Env>
                })
                .collect();
            let mut venv = VecEnv::sequential(envs);
            ppo.learn(&mut venv, 2048);
            ppo.log().final_reward()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_forward,
    bench_rollout,
    bench_ppo_iteration
);
criterion_main!(benches);
