//! RL stack benchmarks: policy inference latency (the per-decision cost of
//! the RL broker) and PPO optimisation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qcs_desim::Xoshiro256StarStar;
use qcs_rl::envs::bandit::ContinuousBandit;
use qcs_rl::policy::{ActScratch, ActorCritic};
use qcs_rl::{Ppo, PpoConfig, VecEnv};

fn bench_policy_forward(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::new(1);
    let ac = ActorCritic::new(16, 5, &mut rng);
    let mut scratch = ActScratch::new();
    let obs = vec![0.3f32; 16];
    c.bench_function("rl/policy_forward_16obs_5act", |b| {
        b.iter(|| ac.act_deterministic(&obs, &mut scratch))
    });
    c.bench_function("rl/policy_sample_16obs_5act", |b| {
        b.iter(|| ac.act(&obs, &mut rng, &mut scratch))
    });
}

fn bench_ppo_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl/ppo");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2048));
    group.bench_function("one_iteration_2048_steps", |b| {
        b.iter(|| {
            let cfg = PpoConfig {
                n_steps: 512,
                batch_size: 64,
                n_epochs: 10,
                seed: 3,
                ..PpoConfig::default()
            };
            let mut ppo = Ppo::new(1, 2, cfg);
            let envs: Vec<Box<dyn qcs_rl::env::Env>> = (0..4)
                .map(|_| {
                    Box::new(ContinuousBandit::new(vec![0.5, -0.5])) as Box<dyn qcs_rl::env::Env>
                })
                .collect();
            let mut venv = VecEnv::sequential(envs);
            ppo.learn(&mut venv, 2048);
            ppo.log().final_reward()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_policy_forward, bench_ppo_iteration);
criterion_main!(benches);
