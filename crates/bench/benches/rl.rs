//! RL stack benchmarks: policy inference latency (the per-decision cost of
//! the RL broker), rollout-collection throughput (per-env vs batched — the
//! dominant cost of every training experiment), GEMM micro-kernel
//! throughput (baseline 4×8 tile vs the runtime-selected wide tile), and
//! PPO update-phase throughput at 1/2/4/8 update workers.
//!
//! The rollout benchmarks also emit `BENCH_rollout.json` at the repository
//! root with before/after steps-per-second plus `update_phase` and `gemm`
//! sections, so the perf trajectory of both training phases is tracked
//! across PRs (and guarded by the CI `bench_guard` bin).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qcs_desim::Xoshiro256StarStar;
use qcs_rl::env::{Env, StepInfo};
use qcs_rl::envs::bandit::ContinuousBandit;
use qcs_rl::envs::pointmass::PointMass;
use qcs_rl::nn::{available_kernels, gemm_bias_with, select_kernel, GemmKernel, Matrix};
use qcs_rl::policy::{ActScratch, ActorCritic};
use qcs_rl::{Ppo, PpoConfig, RolloutBuffer, VecEnv};
use serde::Serialize;

const N_ENVS: usize = 16;
const HORIZON: usize = 64;

/// Update-phase bench shape: a fig5-sized rollout (2048 samples of the
/// 16-obs / 5-action allocation policy) optimised for one epoch.
const UPD_ROWS: usize = 2048;
const UPD_BATCH: usize = 256;
const UPD_OBS: usize = 16;
const UPD_ACT: usize = 5;

/// Builds a deterministic synthetic rollout for timing the optimisation
/// phase in isolation (contents don't matter for throughput, shapes do).
fn update_buffer() -> RolloutBuffer {
    let mut b = RolloutBuffer::new(UPD_ROWS, 1, UPD_OBS, UPD_ACT);
    let mut rng = Xoshiro256StarStar::new(41);
    let mut obs = vec![0.0f32; UPD_OBS];
    let mut act = vec![0.0f32; UPD_ACT];
    for _ in 0..UPD_ROWS {
        for v in obs.iter_mut() {
            *v = rng.range_f64(-1.0, 1.0) as f32;
        }
        for v in act.iter_mut() {
            *v = rng.range_f64(-1.0, 1.0) as f32;
        }
        b.push(
            &obs,
            &act,
            rng.range_f64(-1.0, 1.0),
            true,
            rng.range_f64(-0.5, 0.5),
            rng.range_f64(-4.0, -0.5),
        );
    }
    b.compute_advantages(&[0.0], 0.99, 0.95);
    b
}

/// A PPO trainer configured to run exactly one optimisation epoch over
/// [`update_buffer`] per `update` call, with the given worker count.
fn update_ppo(workers: usize) -> Ppo {
    let cfg = PpoConfig {
        n_steps: UPD_ROWS,
        batch_size: UPD_BATCH,
        n_epochs: 1,
        seed: 3,
        n_update_workers: workers,
        ..PpoConfig::default()
    };
    Ppo::new(UPD_OBS, UPD_ACT, cfg)
}

fn pointmass_envs(n: usize) -> Vec<Box<dyn Env>> {
    (0..n)
        .map(|s| Box::new(PointMass::new(HORIZON).with_tag(s as u64)) as Box<dyn Env>)
        .collect()
}

fn pointmass_vecenv(n: usize) -> VecEnv {
    VecEnv::sequential(pointmass_envs(n))
}

/// The seed's matmul: row-at-a-time axpy accumulation into a zeroed output
/// (reloading/storing the output row every `k` iteration), kept verbatim as
/// the "before" kernel for the rollout-throughput comparison.
fn seed_matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.reshape_zeroed(a.rows(), b.cols());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        let a_row = &a.data()[i * k..(i + 1) * k];
        let out_row = &mut out.data_mut()[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b.data()[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * bv;
            }
        }
    }
}

/// The seed's per-sample MLP forward: allocate a fresh `[1, obs]` input,
/// seed-kernel matmul + separate bias pass per layer, scalar libm `tanh`.
fn seed_forward(net: &qcs_rl::nn::Mlp, obs: &[f32], bufs: &mut Vec<Matrix>) -> f64 {
    bufs.resize_with(net.layers().len() + 1, || Matrix::zeros(0, 0));
    bufs[0] = Matrix::from_vec(1, obs.len(), obs.to_vec());
    for (i, layer) in net.layers().iter().enumerate() {
        let (head, tail) = bufs.split_at_mut(i + 1);
        let input = &head[i];
        let out = &mut tail[0];
        seed_matmul(input, &layer.w, out);
        for (o, &bias) in out.row_mut(0).iter_mut().zip(&layer.b) {
            *o += bias;
        }
        if i + 1 < net.layers().len() {
            for v in out.data_mut() {
                *v = v.tanh();
            }
        }
    }
    bufs.last().unwrap().get(0, 0) as f64
}

/// The seed's rollout loop: one policy + one value forward per env per step
/// (1-row GEMVs through [`seed_forward`]), per-step action/observation
/// allocations, and direct per-env stepping with seed-style auto-reset —
/// deliberately NOT routed through the new `VecEnv` wrappers, so the
/// recorded baseline pays exactly (and only) what the seed paid.
fn rollout_per_env(ac: &ActorCritic, envs: &mut [Box<dyn Env>], steps: usize) -> f64 {
    let mut rng = Xoshiro256StarStar::new(7);
    let mut pi_bufs: Vec<Matrix> = Vec::new();
    let mut vf_bufs: Vec<Matrix> = Vec::new();
    // Seed-style reset: per-env base seeds from one SplitMix64 stream, and
    // per-episode reseeding on done (matching the seed AutoReset wrapper).
    let mut sm = qcs_desim::SplitMix64::new(11);
    let base_seeds: Vec<u64> = envs.iter().map(|_| sm.next_u64()).collect();
    let episode_seed = |base: u64, episode: u64| -> u64 {
        qcs_desim::SplitMix64::new(base ^ episode.wrapping_mul(0x2545F4914F6CDD1D)).next_u64()
    };
    let mut episodes = vec![0u64; envs.len()];
    let mut obs: Vec<Vec<f32>> = envs
        .iter_mut()
        .zip(&base_seeds)
        .map(|(env, &s)| env.reset(episode_seed(s, 0)))
        .collect();
    let mut reward_acc = 0.0;
    for _ in 0..steps {
        for (e, env) in envs.iter_mut().enumerate() {
            let _ = seed_forward(&ac.pi, &obs[e], &mut pi_bufs);
            let mean = pi_bufs.last().unwrap().row(0);
            let action: Vec<f32> = mean
                .iter()
                .zip(&ac.log_std)
                .map(|(&mu, &ls)| mu + ls.exp() * qcs_desim::dist::standard_normal(&mut rng) as f32)
                .collect();
            let _value = seed_forward(&ac.vf, &obs[e], &mut vf_bufs);
            let mut r = env.step(&action);
            if r.done() {
                episodes[e] += 1;
                r.obs = env.reset(episode_seed(base_seeds[e], episodes[e]));
            }
            reward_acc += r.reward;
            obs[e] = r.obs.clone();
        }
    }
    reward_acc
}

/// The batched rollout hot path: one policy GEMM + one value GEMM per step
/// over all envs, observations written into reusable matrices.
fn rollout_batched(ac: &ActorCritic, envs: &mut VecEnv, steps: usize) -> f64 {
    let n = envs.num_envs();
    let mut rng = Xoshiro256StarStar::new(7);
    let mut scratch = ActScratch::new();
    let mut obs = Matrix::zeros(0, 0);
    envs.reset_into(11, &mut obs);
    let mut next_obs = Matrix::zeros(0, 0);
    let mut actions = Matrix::zeros(0, 0);
    let mut logps = vec![0.0; n];
    let mut values = vec![0.0; n];
    let mut infos = vec![StepInfo::default(); n];
    let mut reward_acc = 0.0;
    for _ in 0..steps {
        ac.act_batch(
            &obs,
            &mut rng,
            &mut scratch,
            &mut actions,
            &mut logps,
            &mut values,
        );
        envs.step_into(&actions, &mut next_obs, &mut infos);
        for info in &infos {
            reward_acc += info.reward;
        }
        std::mem::swap(&mut obs, &mut next_obs);
    }
    reward_acc
}

fn bench_policy_forward(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::new(1);
    let ac = ActorCritic::new(16, 5, &mut rng);
    let mut scratch = ActScratch::new();
    let obs = vec![0.3f32; 16];
    c.bench_function("rl/policy_forward_16obs_5act", |b| {
        b.iter(|| ac.act_deterministic(&obs, &mut scratch))
    });
    c.bench_function("rl/policy_sample_16obs_5act", |b| {
        b.iter(|| ac.act(&obs, &mut rng, &mut scratch))
    });

    // Batched inference: 16 policies queries per call vs 16 act() calls.
    let obs_mat = Matrix::from_vec(16, 16, (0..256).map(|i| (i % 7) as f32 * 0.1).collect());
    let mut actions = Matrix::zeros(0, 0);
    let mut logps = vec![0.0; 16];
    let mut values = vec![0.0; 16];
    c.bench_function("rl/act_batch_16x_16obs_5act", |b| {
        b.iter(|| {
            ac.act_batch(
                &obs_mat,
                &mut rng,
                &mut scratch,
                &mut actions,
                &mut logps,
                &mut values,
            )
        })
    });
    c.bench_function("rl/act_per_env_16x_16obs_5act", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for r in 0..16 {
                let (_a, lp, _v) = ac.act(obs_mat.row(r), &mut rng, &mut scratch);
                acc += lp;
            }
            acc
        })
    });
}

fn bench_rollout(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::new(2);
    let ac = ActorCritic::new(2, 2, &mut rng);
    let steps = 256usize;

    let mut group = c.benchmark_group("rl/rollout_pointmass_16env");
    group.throughput(Throughput::Elements((steps * N_ENVS) as u64));
    let mut raw_envs = pointmass_envs(N_ENVS);
    group.bench_function("per_env", |b| {
        b.iter(|| rollout_per_env(&ac, &mut raw_envs, steps))
    });
    let mut envs = pointmass_vecenv(N_ENVS);
    group.bench_function("batched", |b| {
        b.iter(|| rollout_batched(&ac, &mut envs, steps))
    });
    group.finish();

    write_rollout_json(&ac);
}

/// Repeats `f` until the time budget runs out and returns the best
/// observed units-per-second (least-noise estimate). `units` is the work
/// one call performs.
fn best_rate(budget: f64, units: f64, f: &mut dyn FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    let mut best = 0.0f64;
    loop {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(units / dt);
        if start.elapsed().as_secs_f64() > budget {
            break;
        }
    }
    best
}

/// Rounds to `digits` decimal places (keeps the committed JSON tidy).
fn round_to(x: f64, digits: u32) -> f64 {
    let p = 10f64.powi(digits as i32);
    (x * p).round() / p
}

/// The `BENCH_rollout.json` document — serialised with the workspace
/// serde_json (the same parser family `bench_guard` reads it with), so
/// shape changes can never produce invalid JSON.
#[derive(Serialize)]
struct RolloutReport {
    bench: String,
    n_envs: usize,
    horizon: usize,
    steps_per_rollout: usize,
    per_env_steps_per_sec: f64,
    batched_steps_per_sec: f64,
    speedup: f64,
    host_cores: usize,
    update_phase: UpdatePhaseReport,
    gemm: GemmReport,
}

#[derive(Serialize)]
struct UpdatePhaseReport {
    rows: usize,
    batch_size: usize,
    obs_dim: usize,
    action_dim: usize,
    n_epochs: usize,
    workers: Vec<WorkerRate>,
    speedup_4_workers: f64,
}

#[derive(Serialize)]
struct WorkerRate {
    workers: usize,
    samples_per_sec: f64,
}

#[derive(Serialize)]
struct GemmReport {
    m: usize,
    k: usize,
    n: usize,
    baseline_kernel: String,
    baseline_gflops: f64,
    selected_kernel: String,
    selected_gflops: f64,
    tile_speedup: f64,
}

/// Measures both rollout paths, the update phase at 1/2/4/8 workers and
/// the GEMM micro-kernels, and records the rates (and speedups) in
/// `BENCH_rollout.json` at the repository root.
fn write_rollout_json(ac: &ActorCritic) {
    if cfg!(debug_assertions) {
        // Unoptimised numbers would corrupt the tracked perf trajectory;
        // only measure from `cargo bench` (release) builds.
        return;
    }
    let steps = 256usize;
    let mut raw_envs = pointmass_envs(N_ENVS);
    let mut envs = pointmass_vecenv(N_ENVS);

    let rollout_units = (steps * N_ENVS) as f64;
    let per_env_sps = best_rate(0.7, rollout_units, &mut || {
        std::hint::black_box(rollout_per_env(ac, &mut raw_envs, steps));
    });
    let batched_sps = best_rate(0.7, rollout_units, &mut || {
        std::hint::black_box(rollout_batched(ac, &mut envs, steps));
    });
    let speedup = batched_sps / per_env_sps;

    // ---- update phase: samples/s through one optimisation epoch ----
    let buffer = update_buffer();
    let mut worker_rates: Vec<WorkerRate> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut ppo = update_ppo(workers);
        let sps = best_rate(0.6, UPD_ROWS as f64, &mut || {
            std::hint::black_box(ppo.update(&buffer));
        });
        worker_rates.push(WorkerRate {
            workers,
            samples_per_sec: round_to(sps, 1),
        });
    }
    let rate_at = |w: usize| {
        worker_rates
            .iter()
            .find(|r| r.workers == w)
            .expect("worker count measured")
            .samples_per_sec
    };
    let update_speedup_4w = rate_at(4) / rate_at(1);

    // ---- GEMM micro-kernels on a policy-shaped product ----
    let (gm, gk, gn) = (UPD_BATCH, 64usize, 64usize);
    let a: Vec<f32> = (0..gm * gk)
        .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.013)
        .collect();
    let b: Vec<f32> = (0..gk * gn)
        .map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.021)
        .collect();
    let bias: Vec<f32> = (0..gn).map(|j| j as f32 * 0.01).collect();
    let mut out = vec![0.0f32; gm * gn];
    let gflop = (2.0 * (gm * gk * gn) as f64) / 1e9;
    let mut kernel_rate = |kern: GemmKernel| {
        best_rate(0.4, gflop, &mut || {
            gemm_bias_with(kern, gm, gk, gn, &a, &b, Some(&bias), &mut out);
            std::hint::black_box(&out);
        })
    };
    let baseline_kernel = GemmKernel::Tile4x8;
    let selected_kernel = select_kernel(gm);
    let baseline_gflops = kernel_rate(baseline_kernel);
    let selected_gflops = kernel_rate(selected_kernel);
    let tile_speedup = selected_gflops / baseline_gflops;

    let host_cores = qcs_bench::cli::host_cores();
    let report = RolloutReport {
        bench: "rollout_pointmass".to_string(),
        n_envs: N_ENVS,
        horizon: HORIZON,
        steps_per_rollout: steps,
        per_env_steps_per_sec: round_to(per_env_sps, 1),
        batched_steps_per_sec: round_to(batched_sps, 1),
        speedup: round_to(speedup, 2),
        host_cores,
        update_phase: UpdatePhaseReport {
            rows: UPD_ROWS,
            batch_size: UPD_BATCH,
            obs_dim: UPD_OBS,
            action_dim: UPD_ACT,
            n_epochs: 1,
            workers: worker_rates,
            speedup_4_workers: round_to(update_speedup_4w, 2),
        },
        gemm: GemmReport {
            m: gm,
            k: gk,
            n: gn,
            baseline_kernel: baseline_kernel.name().to_string(),
            baseline_gflops: round_to(baseline_gflops, 2),
            selected_kernel: selected_kernel.name().to_string(),
            selected_gflops: round_to(selected_gflops, 2),
            tile_speedup: round_to(tile_speedup, 2),
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialisation cannot fail");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rollout.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!(
        "rollout throughput: per-env {per_env_sps:.0} steps/s, batched {batched_sps:.0} steps/s ({speedup:.2}x)"
    );
    println!(
        "update throughput: {} samples/s at 1/2/4/8 workers ({update_speedup_4w:.2}x at 4; {host_cores} cores)",
        report
            .update_phase
            .workers
            .iter()
            .map(|r| format!("{:.0}", r.samples_per_sec))
            .collect::<Vec<_>>()
            .join("/")
    );
    println!(
        "gemm {gm}x{gk}x{gn}: {} {baseline_gflops:.2} GF/s -> {} {selected_gflops:.2} GF/s ({tile_speedup:.2}x) -> BENCH_rollout.json",
        baseline_kernel.name(),
        selected_kernel.name(),
    );
}

/// The PPO optimisation phase in isolation (one epoch over a prepared
/// fig5-sized rollout) at 1/2/4/8 update workers.
fn bench_update_phase(c: &mut Criterion) {
    let buffer = update_buffer();
    let mut group = c.benchmark_group("rl/update_2048rows_256batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(UPD_ROWS as u64));
    for workers in [1usize, 2, 4, 8] {
        let mut ppo = update_ppo(workers);
        group.bench_function(format!("{workers}w"), |b| {
            b.iter(|| std::hint::black_box(ppo.update(&buffer)))
        });
    }
    group.finish();
}

/// The GEMM micro-kernels on a policy-shaped product (baseline 4×8 tile vs
/// every wide tile available on this machine).
fn bench_gemm_kernels(c: &mut Criterion) {
    let (m, k, n) = (UPD_BATCH, 64usize, 64usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.07).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 * 0.05).collect();
    let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.01).collect();
    let mut out = vec![0.0f32; m * n];
    let mut group = c.benchmark_group(format!("rl/gemm_{m}x{k}x{n}"));
    group.throughput(Throughput::Elements((m * k * n) as u64));
    for kern in available_kernels() {
        group.bench_function(kern.name(), |bch| {
            bch.iter(|| {
                gemm_bias_with(kern, m, k, n, &a, &b, Some(&bias), &mut out);
                std::hint::black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_ppo_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl/ppo");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2048));
    group.bench_function("one_iteration_2048_steps", |b| {
        b.iter(|| {
            let cfg = PpoConfig {
                n_steps: 512,
                batch_size: 64,
                n_epochs: 10,
                seed: 3,
                ..PpoConfig::default()
            };
            let mut ppo = Ppo::new(1, 2, cfg);
            let envs: Vec<Box<dyn qcs_rl::env::Env>> = (0..4)
                .map(|_| {
                    Box::new(ContinuousBandit::new(vec![0.5, -0.5])) as Box<dyn qcs_rl::env::Env>
                })
                .collect();
            let mut venv = VecEnv::sequential(envs);
            ppo.learn(&mut venv, 2048);
            ppo.log().final_reward()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_forward,
    bench_rollout,
    bench_gemm_kernels,
    bench_update_phase,
    bench_ppo_iteration
);
criterion_main!(benches);
