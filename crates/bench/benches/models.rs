//! Closed-form model benchmarks: the per-job cost of the fidelity,
//! execution-time and error-score computations (these run once per job per
//! decision, so they must stay trivial).

use criterion::{criterion_group, criterion_main, Criterion};
use qcs_calibration::{error_score, ibm_fleet, ErrorScoreWeights};
use qcs_qcloud::model::exec_time::ExecTimeModel;
use qcs_qcloud::model::fidelity::{DeviceErrorRates, FidelityModel};

fn bench_fidelity(c: &mut Criterion) {
    let model = FidelityModel::default();
    let rates = DeviceErrorRates {
        single_qubit: 4.2e-4,
        two_qubit: 9.2e-3,
        readout: 1.68e-2,
    };
    c.bench_function("models/device_fidelity", |b| {
        b.iter(|| model.device_fidelity(&rates, 12, 600, 95, 190, 2))
    });
    c.bench_function("models/final_fidelity_k5", |b| {
        let fids = [0.7, 0.71, 0.69, 0.72, 0.7];
        b.iter(|| model.final_fidelity(&fids, 0.95))
    });
}

fn bench_exec_time(c: &mut Criterion) {
    let m = ExecTimeModel::case_study();
    c.bench_function("models/execution_seconds", |b| {
        b.iter(|| m.execution_seconds(55_000, 7.0, 220_000.0))
    });
}

fn bench_error_score(c: &mut Criterion) {
    let fleet = ibm_fleet(1);
    let w = ErrorScoreWeights::default();
    c.bench_function("models/error_score_127q", |b| {
        b.iter(|| error_score(&fleet[0].calibration, &w))
    });
}

criterion_group!(benches, bench_fidelity, bench_exec_time, bench_error_score);
criterion_main!(benches);
