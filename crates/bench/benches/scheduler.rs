//! End-to-end scheduler benchmarks: how fast the full quantum-cloud
//! simulation runs per policy (the simulator-performance claim behind the
//! Table 2 harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qcs_calibration::ibm_fleet;
use qcs_qcloud::jobgen::batch_at_zero;
use qcs_qcloud::policies::by_name;
use qcs_qcloud::{JobDistribution, QCloudSimEnv, SimParams};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/case_study_100_jobs");
    let jobs = batch_at_zero(100, &JobDistribution::default(), 7);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for policy in ["speed", "fidelity", "fair", "roundrobin", "random"] {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &p| {
            b.iter(|| {
                let env = QCloudSimEnv::new(
                    ibm_fleet(7),
                    by_name(p, 7).unwrap(),
                    jobs.clone(),
                    SimParams::default(),
                    7,
                );
                env.run().summary.t_sim
            });
        });
    }
    group.finish();
}

fn bench_workload_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/jobs_scaling");
    for n in [100usize, 400, 1600] {
        let jobs = batch_at_zero(n, &JobDistribution::default(), 9);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| {
                let env = QCloudSimEnv::new(
                    ibm_fleet(9),
                    by_name("speed", 9).unwrap(),
                    jobs.clone(),
                    SimParams::default(),
                    9,
                );
                env.run().summary.jobs_finished
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_workload_scaling);
criterion_main!(benches);
