//! Coupling-map benchmarks: lattice construction and the allocation-time
//! graph algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcs_topology::{
    bfs_order, connected_subgraph_from, diameter, disjoint_connected_partition, heavy_hex,
    heavy_hex_eagle,
};

fn bench_builders(c: &mut Criterion) {
    c.bench_function("topology/heavy_hex_eagle_build", |b| {
        b.iter(heavy_hex_eagle)
    });
    c.bench_function("topology/heavy_hex_29x15_build", |b| {
        b.iter(|| heavy_hex(29, 15))
    });
}

fn bench_algorithms(c: &mut Criterion) {
    let g = heavy_hex_eagle();
    c.bench_function("topology/bfs_eagle", |b| b.iter(|| bfs_order(&g, 0)));
    c.bench_function("topology/diameter_eagle", |b| b.iter(|| diameter(&g)));

    let mut group = c.benchmark_group("topology/connected_subgraph");
    for size in [10usize, 63, 127] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            b.iter(|| connected_subgraph_from(&g, 0, s).unwrap().len());
        });
    }
    group.finish();

    c.bench_function("topology/disjoint_partition_3x40", |b| {
        b.iter(|| {
            disjoint_connected_partition(&g, &[40, 40, 40])
                .unwrap()
                .len()
        })
    });
}

criterion_group!(benches, bench_builders, bench_algorithms);
criterion_main!(benches);
