//! Criterion micro-benchmarks for the discrete-event kernel: event
//! scheduling throughput and container grant propagation under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qcs_desim::{Coroutine, Ctx, Effect, Simulation, Step};

struct Ticker {
    remaining: u32,
}
impl Coroutine for Ticker {
    fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
        if self.remaining == 0 {
            return Step::Done;
        }
        self.remaining -= 1;
        Step::Wait(Effect::Timeout(1.0))
    }
}

struct Contender {
    container: qcs_desim::ContainerId,
    amount: u64,
    cycles: u32,
    phase: u8,
}
impl Coroutine for Contender {
    fn resume(&mut self, _cx: &mut Ctx<'_>) -> Step {
        match self.phase {
            0 => {
                if self.cycles == 0 {
                    return Step::Done;
                }
                self.cycles -= 1;
                self.phase = 1;
                Step::Wait(Effect::Get {
                    container: self.container,
                    amount: self.amount,
                })
            }
            1 => {
                self.phase = 2;
                Step::Wait(Effect::Timeout(1.0))
            }
            _ => {
                self.phase = 0;
                Step::Wait(Effect::Put {
                    container: self.container,
                    amount: self.amount,
                })
            }
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/events");
    for n_procs in [10usize, 100, 1000] {
        let events_per_run = (n_procs * 100) as u64;
        group.throughput(Throughput::Elements(events_per_run));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_procs),
            &n_procs,
            |b, &n_procs| {
                b.iter(|| {
                    let mut sim = Simulation::new(1);
                    for _ in 0..n_procs {
                        sim.spawn(Box::new(Ticker { remaining: 100 }));
                    }
                    sim.run();
                    sim.events_processed()
                });
            },
        );
    }
    group.finish();
}

fn bench_container_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/container_contention");
    for n_procs in [8usize, 64, 256] {
        group.throughput(Throughput::Elements((n_procs * 50) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_procs),
            &n_procs,
            |b, &n_procs| {
                b.iter(|| {
                    let mut sim = Simulation::new(2);
                    let container = sim.add_container("pool", 100, 100);
                    for i in 0..n_procs {
                        sim.spawn(Box::new(Contender {
                            container,
                            amount: 10 + (i as u64 % 30),
                            cycles: 50,
                            phase: 0,
                        }));
                    }
                    sim.run();
                    sim.now()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_throughput, bench_container_contention);
criterion_main!(benches);
