//! Scheduler-loop benchmarks for the queue-aware redesign: jobs/second
//! through the full simulation at 1k/10k pending jobs, seed-style
//! snapshot-rebuild-per-consult (`SnapshotAdapter`) vs the incremental
//! `CloudState` path (`FifoAdapter`), plus the discipline scenario the old
//! API could not express — EASY backfilling vs FIFO on a fragmented
//! mixed-size workload.
//!
//! Release runs (`cargo bench -p qcs-bench --bench sched`) also emit
//! `BENCH_sched.json` at the repository root: scheduler-loop throughput
//! for both paths and the `fifo+speed` vs `backfill+speed` comparison
//! (makespan, mean wait, mean device utilisation), so the perf trajectory
//! and the discipline win are tracked across PRs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qcs_calibration::ibm_fleet;
use qcs_qcloud::jobgen::{batch_at_zero, bimodal_arrivals};
use qcs_qcloud::policies::scheduler_by_name;
use qcs_qcloud::simenv::RunResult;
use qcs_qcloud::{JobDistribution, QCloudSimEnv, QJob, SimParams};

const SEED: u64 = 7;

fn run_spec(spec: &str, jobs: Vec<QJob>) -> RunResult {
    let env = QCloudSimEnv::with_scheduler(
        ibm_fleet(SEED),
        scheduler_by_name(spec, SEED, 1).expect("known spec"),
        jobs,
        SimParams::default(),
        SEED,
    );
    env.run()
}

/// The bimodal head-of-line-blocking workload: every 4th job spans the
/// whole fleet (and runs long), the rest are small and short. Strict FIFO
/// idles most of the fleet whenever a big head is blocked.
fn fragmented_jobs(n: usize) -> Vec<QJob> {
    bimodal_arrivals(n, 0.1, 4, SEED)
}

fn bench_pending_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/pending_scaling");
    group.sample_size(10);
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[1_000]
    } else {
        &[1_000, 10_000]
    };
    for &n in sizes {
        let jobs = batch_at_zero(n, &JobDistribution::default(), SEED);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("snapshot_rebuild", n), &jobs, |b, jobs| {
            b.iter(|| run_spec("snapshot+speed", jobs.clone()).summary.t_sim)
        });
        group.bench_with_input(
            BenchmarkId::new("incremental_state", n),
            &jobs,
            |b, jobs| b.iter(|| run_spec("speed", jobs.clone()).summary.t_sim),
        );
    }
    group.finish();
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/disciplines_1k_fragmented");
    group.sample_size(10);
    let jobs = fragmented_jobs(if cfg!(debug_assertions) { 200 } else { 1_000 });
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for spec in ["speed", "backfill+speed", "priority:sjf+speed"] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &s| {
            b.iter(|| run_spec(s, jobs.clone()).summary.t_sim)
        });
    }
    group.finish();

    write_sched_json();
}

/// Measures both scheduler-loop paths and the backfill-vs-FIFO scenario
/// directly, recording to `BENCH_sched.json` at the repository root.
fn write_sched_json() {
    if cfg!(debug_assertions) {
        // Unoptimised numbers would corrupt the tracked perf trajectory;
        // only measure from `cargo bench` (release) builds.
        return;
    }
    let budget = 0.7f64;
    let jobs_per_sec = |spec: &str, jobs: &[QJob]| -> f64 {
        let _ = std::hint::black_box(run_spec(spec, jobs.to_vec()));
        let start = Instant::now();
        let mut best = 0.0f64;
        loop {
            let t0 = Instant::now();
            let _ = std::hint::black_box(run_spec(spec, jobs.to_vec()));
            let dt = t0.elapsed().as_secs_f64();
            best = best.max(jobs.len() as f64 / dt);
            if start.elapsed().as_secs_f64() > budget {
                break;
            }
        }
        best
    };

    let jobs_1k = batch_at_zero(1_000, &JobDistribution::default(), SEED);
    let jobs_10k = batch_at_zero(10_000, &JobDistribution::default(), SEED);
    let snap_1k = jobs_per_sec("snapshot+speed", &jobs_1k);
    let incr_1k = jobs_per_sec("speed", &jobs_1k);
    let snap_10k = jobs_per_sec("snapshot+speed", &jobs_10k);
    let incr_10k = jobs_per_sec("speed", &jobs_10k);

    // Discipline comparison on the fragmented workload (deterministic —
    // single runs, not timing-sensitive).
    let frag = fragmented_jobs(1_000);
    let fifo = run_spec("speed", frag.clone());
    let easy = run_spec("backfill+speed", frag);
    let fifo_util = fifo.mean_device_utilization();
    let easy_util = easy.mean_device_utilization();

    let json = format!(
        "{{\n  \"bench\": \"sched_loop\",\n  \"pending_1k\": {{ \"snapshot_jobs_per_sec\": {snap_1k:.1}, \"incremental_jobs_per_sec\": {incr_1k:.1}, \"speedup\": {:.2} }},\n  \"pending_10k\": {{ \"snapshot_jobs_per_sec\": {snap_10k:.1}, \"incremental_jobs_per_sec\": {incr_10k:.1}, \"speedup\": {:.2} }},\n  \"fragmented_1k\": {{\n    \"fifo_speed\": {{ \"t_sim\": {:.2}, \"mean_wait\": {:.2}, \"mean_utilization\": {:.4} }},\n    \"backfill_speed\": {{ \"t_sim\": {:.2}, \"mean_wait\": {:.2}, \"mean_utilization\": {:.4}, \"queue_jumps\": {} }},\n    \"makespan_improvement\": {:.4},\n    \"utilization_improvement\": {:.4}\n  }}\n}}\n",
        incr_1k / snap_1k,
        incr_10k / snap_10k,
        fifo.summary.t_sim,
        fifo.summary.mean_wait,
        fifo_util,
        easy.summary.t_sim,
        easy.summary.mean_wait,
        easy_util,
        easy.telemetry.out_of_order,
        fifo.summary.t_sim / easy.summary.t_sim,
        easy_util / fifo_util,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!(
        "sched loop: 1k snapshot {snap_1k:.0} vs incremental {incr_1k:.0} jobs/s; \
         10k snapshot {snap_10k:.0} vs incremental {incr_10k:.0} jobs/s; \
         backfill makespan x{:.3}, utilization x{:.3} -> BENCH_sched.json",
        fifo.summary.t_sim / easy.summary.t_sim,
        easy_util / fifo_util,
    );
}

criterion_group!(benches, bench_pending_scaling, bench_disciplines);
criterion_main!(benches);
