//! Scheduler-loop benchmarks for the queue-aware redesign: jobs/second
//! through the full simulation at 1k/10k pending jobs, seed-style
//! snapshot-rebuild-per-consult (`SnapshotAdapter`) vs the incremental
//! `CloudState` path (`FifoAdapter`), plus the discipline scenarios the
//! old API could not express — EASY and conservative backfilling vs FIFO
//! on a fragmented mixed-size workload, and EASY vs conservative on a
//! maintenance-heavy variant (scheduled windows carving capacity out of
//! the busy period).
//!
//! Release runs (`cargo bench -p qcs-bench --bench sched`) also emit
//! `BENCH_sched.json` at the repository root: scheduler-loop throughput
//! for both paths, the `fifo+speed` vs `backfill+speed` comparison
//! (makespan, mean wait, mean device utilisation), the EASY-vs-
//! conservative makespan/fairness comparison (wait tails, mean slowdown,
//! Jain index over slowdowns) on both the bimodal and maintenance-heavy
//! scenarios, and a failure-heavy variant (two unplanned crashes + 5%
//! execution failures) recording goodput, retry rate and recovery
//! overhead per discipline — `bench_guard` holds the recorded
//! conservative fairness wins and fault-era goodput to hard floors.
//!
//! Service-mode sections (`service_1k`, `sharded_4x`) run the open-system
//! front end: decision-latency p50/p99 and sustained jobs/s through an
//! armed intake on an overloaded diurnal trace, and the four-region
//! sharded fleet vs a monolithic scheduler (decide-cost scaling plus the
//! completeness/conservation flags) — guarded by a p99 ceiling and
//! sustained-rate / scaling floors.
//!
//! The `rl_sched` section trains a PPO policy on the queue-deep scheduler
//! environment (`qcs_qcloud::rlsched::SchedulerEnv`), deploys the
//! checkpoint through the `rl:<path>` spec surface, and races it against
//! `speed` / `backfill+speed` / `conservative+speed` on the bimodal and
//! maintenance traces — honest head-to-head numbers either way.
//!
//! The `fleet_scale` section is the incremental-core stress test: 100k
//! bimodal jobs streamed over a 120-device fleet (throughput plus an
//! allocation count from the bench binary's counting global allocator,
//! ceiling-guarded so the slab/incremental paths stay allocation-lean),
//! and a 10k-deep backlogged queue where conservative's per-decide cost —
//! once a full availability rebuild per consult — must stay within 5× of
//! EASY (ratio floor in `bench_guard`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qcs_calibration::{ibm_fleet, regional_fleet, DeviceProfile};
use qcs_qcloud::jobgen::{batch_at_zero, bimodal_arrivals, diurnal_arrivals};
use qcs_qcloud::policies::scheduler_by_name;
use qcs_qcloud::rlsched::{SchedCheckpoint, SchedEnvConfig, SchedulerEnv};
use qcs_qcloud::simenv::RunResult;
use qcs_qcloud::{
    AdmissionPolicy, DeadlinePolicy, FaultScript, JobDistribution, MaintenanceWindow,
    ParallelServiceHarness, QCloudSimEnv, QJob, QosReport, RetryPolicy, RoutingPolicy,
    ServiceConfig, ServiceHarness, ServiceOutcome, SimParams,
};
use qcs_rl::env::Env;
use qcs_rl::{Ppo, PpoConfig, VecEnv};

const SEED: u64 = 7;

/// Counts every heap allocation made by the bench binary, so the
/// `fleet_scale` section can record (and `bench_guard` can ceiling) the
/// allocations-per-job cost of the scheduler loop. Deallocations are not
/// tracked — the guard is about allocator pressure on the hot path, not
/// leaks.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn run_spec(spec: &str, jobs: Vec<QJob>) -> RunResult {
    run_spec_with_windows(spec, jobs, &[])
}

/// Runs a spec over an explicit fleet (the `fleet_scale` section uses a
/// 120-device one instead of the default 5-device `ibm_fleet`).
fn run_spec_on(fleet: Vec<DeviceProfile>, spec: &str, jobs: Vec<QJob>) -> RunResult {
    let env = QCloudSimEnv::with_scheduler(
        fleet,
        scheduler_by_name(spec, SEED, 1).expect("known spec"),
        jobs,
        SimParams::default(),
        SEED,
    );
    env.run()
}

/// The 120-device fleet for the `fleet_scale` section: 24 regional
/// five-device IBM-style fleets flattened into one scheduling domain.
fn fleet_120() -> Vec<DeviceProfile> {
    regional_fleet(24, SEED).into_iter().flatten().collect()
}

fn run_spec_with_windows(spec: &str, jobs: Vec<QJob>, windows: &[MaintenanceWindow]) -> RunResult {
    let mut env = QCloudSimEnv::with_scheduler(
        ibm_fleet(SEED),
        scheduler_by_name(spec, SEED, 1).expect("known spec"),
        jobs,
        SimParams::default(),
        SEED,
    );
    for &w in windows {
        env.schedule_maintenance(w);
    }
    env.run()
}

fn run_spec_with_faults(spec: &str, jobs: Vec<QJob>) -> RunResult {
    let mut env = QCloudSimEnv::with_scheduler(
        ibm_fleet(SEED),
        scheduler_by_name(spec, SEED, 1).expect("known spec"),
        jobs,
        SimParams::default(),
        SEED,
    );
    let (script, retry) = failure_scenario();
    env.install_faults(script, retry, None);
    env.run()
}

/// The failure-heavy scenario: two unplanned crashes land inside the
/// bimodal trace's busy period (a premium device early, a mid-tier device
/// late) on top of a 5% per-attempt execution-failure rate — every
/// discipline must revoke leases, repair reservations and retry through
/// the backoff policy.
fn failure_scenario() -> (FaultScript, RetryPolicy) {
    let script = FaultScript::new(SEED)
        .with_crash(0, 3_000.0, 5_000.0)
        .with_crash(2, 12_000.0, 4_000.0)
        .with_exec_failures(0.05);
    let retry = RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::default()
    };
    (script, retry)
}

/// The maintenance-heavy scenario: three staggered windows carve devices
/// out of the bimodal trace's busy period, so reservations must dodge
/// scheduled capacity cliffs, and qubits released while offline surface
/// only at window close.
fn maintenance_windows() -> Vec<MaintenanceWindow> {
    vec![
        MaintenanceWindow {
            device: 1,
            start: 2_000.0,
            duration: 4_000.0,
        },
        MaintenanceWindow {
            device: 3,
            start: 9_000.0,
            duration: 5_000.0,
        },
        MaintenanceWindow {
            device: 0,
            start: 18_000.0,
            duration: 4_000.0,
        },
    ]
}

/// The bimodal head-of-line-blocking workload: every 4th job spans the
/// whole fleet (and runs long), the rest are small and short. Strict FIFO
/// idles most of the fleet whenever a big head is blocked.
fn fragmented_jobs(n: usize) -> Vec<QJob> {
    bimodal_arrivals(n, 0.1, 4, SEED)
}

/// Runs the service-mode front end over the given region fleets.
fn run_service(
    regions: Vec<Vec<DeviceProfile>>,
    spec: &'static str,
    jobs: Vec<QJob>,
    config: ServiceConfig,
) -> ServiceOutcome {
    ServiceHarness::new(
        regions,
        move |_region| scheduler_by_name(spec, SEED, 1).expect("known spec"),
        jobs,
        SimParams::default(),
        config,
        SEED,
    )
    .run()
}

/// Same trace through the parallel sharded backend: one kernel per region
/// on `threads` worker threads, bit-identical records to [`run_service`].
fn run_service_parallel(
    regions: Vec<Vec<DeviceProfile>>,
    spec: &'static str,
    jobs: Vec<QJob>,
    config: ServiceConfig,
    threads: usize,
) -> ServiceOutcome {
    ParallelServiceHarness::new(
        regions,
        move |_region| scheduler_by_name(spec, SEED, 1).expect("known spec"),
        jobs,
        SimParams::default(),
        config,
        SEED,
        threads,
    )
    .run()
}

/// The armed intake used by the service benchmarks: tight enough that the
/// overloaded diurnal trace actually exercises throttling and rejection.
fn bench_admission() -> AdmissionPolicy {
    AdmissionPolicy {
        throttle_watermark: 24,
        queue_capacity: 96,
        throttle_delay_s: 60.0,
        max_throttle_attempts: 3,
    }
}

fn bench_pending_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/pending_scaling");
    group.sample_size(10);
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[1_000]
    } else {
        &[1_000, 10_000]
    };
    for &n in sizes {
        let jobs = batch_at_zero(n, &JobDistribution::default(), SEED);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("snapshot_rebuild", n), &jobs, |b, jobs| {
            b.iter(|| run_spec("snapshot+speed", jobs.clone()).summary.t_sim)
        });
        group.bench_with_input(
            BenchmarkId::new("incremental_state", n),
            &jobs,
            |b, jobs| b.iter(|| run_spec("speed", jobs.clone()).summary.t_sim),
        );
    }
    group.finish();
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/disciplines_1k_fragmented");
    group.sample_size(10);
    let jobs = fragmented_jobs(if cfg!(debug_assertions) { 200 } else { 1_000 });
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for spec in [
        "speed",
        "backfill+speed",
        "conservative+speed",
        "priority:sjf+speed",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &s| {
            b.iter(|| run_spec(s, jobs.clone()).summary.t_sim)
        });
    }
    group.finish();

    // The same trace under the failure scenario: the loop now pays for
    // lease revocation, reservation repair and retry resubmission.
    let mut group = c.benchmark_group("sched/faulty_1k_fragmented");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for spec in ["speed", "backfill+speed", "conservative+speed"] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &s| {
            b.iter(|| run_spec_with_faults(s, jobs.clone()).summary.t_sim)
        });
    }
    group.finish();

    write_sched_json();
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/service_open_system");
    group.sample_size(10);
    let n = if cfg!(debug_assertions) { 150 } else { 500 };
    let jobs = diurnal_arrivals(n, 0.08, 0.8, 3_600.0, 5, SEED);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("service_diurnal", n), |b| {
        b.iter(|| {
            run_service(
                vec![ibm_fleet(SEED)],
                "backfill+speed",
                jobs.clone(),
                ServiceConfig {
                    admission: bench_admission(),
                    routing: RoutingPolicy::LeastLoaded,
                },
            )
            .report
            .sim_seconds
        })
    });
    group.finish();
}

fn bench_fleet_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/fleet_scale_120dev");
    group.sample_size(10);
    let n = if cfg!(debug_assertions) {
        1_000
    } else {
        20_000
    };
    let jobs = bimodal_arrivals(n, 0.25, 4, SEED);
    group.throughput(Throughput::Elements(n as u64));
    for spec in ["speed", "backfill+speed"] {
        group.bench_with_input(BenchmarkId::new(spec, n), &spec, |b, &s| {
            b.iter(|| run_spec_on(fleet_120(), s, jobs.clone()).summary.t_sim)
        });
    }
    group.finish();
}

/// Measures both scheduler-loop paths and the backfill-vs-FIFO scenario
/// directly, recording to `BENCH_sched.json` at the repository root.
fn write_sched_json() {
    if cfg!(debug_assertions) {
        // Unoptimised numbers would corrupt the tracked perf trajectory;
        // only measure from `cargo bench` (release) builds.
        return;
    }
    let budget = 0.7f64;
    let jobs_per_sec = |spec: &str, jobs: &[QJob]| -> f64 {
        let _ = std::hint::black_box(run_spec(spec, jobs.to_vec()));
        let start = Instant::now();
        let mut best = 0.0f64;
        loop {
            let t0 = Instant::now();
            let _ = std::hint::black_box(run_spec(spec, jobs.to_vec()));
            let dt = t0.elapsed().as_secs_f64();
            best = best.max(jobs.len() as f64 / dt);
            if start.elapsed().as_secs_f64() > budget {
                break;
            }
        }
        best
    };

    // On the default 5-device fleet the per-consult snapshot rebuild is a
    // five-element copy, so `snapshot+speed` and the incremental `speed`
    // path run at parity here — the recorded speedup hovers around 1.0 and
    // any deviation (the long-standing 0.97) is run-to-run noise, not a
    // regression. These sections exist to pin that parity (the incremental
    // path must never be meaningfully *slower* — bench_guard holds a 0.85
    // band); the incremental core's actual win is measured where state
    // maintenance dominates: `fleet_scale.deep_10k` on 120 devices.
    let jobs_1k = batch_at_zero(1_000, &JobDistribution::default(), SEED);
    let jobs_10k = batch_at_zero(10_000, &JobDistribution::default(), SEED);
    let snap_1k = jobs_per_sec("snapshot+speed", &jobs_1k);
    let incr_1k = jobs_per_sec("speed", &jobs_1k);
    let snap_10k = jobs_per_sec("snapshot+speed", &jobs_10k);
    let incr_10k = jobs_per_sec("speed", &jobs_10k);

    // Discipline comparisons (deterministic — single runs, not
    // timing-sensitive): FIFO vs EASY vs conservative on the bimodal
    // trace, then EASY vs conservative with maintenance windows carving
    // capacity out of the busy period.
    let frag = fragmented_jobs(1_000);
    let fifo = run_spec("speed", frag.clone());
    let easy = run_spec("backfill+speed", frag.clone());
    let cons = run_spec("conservative+speed", frag.clone());
    let fifo_util = fifo.mean_device_utilization();
    let easy_util = easy.mean_device_utilization();

    let windows = maintenance_windows();
    let m_easy = run_spec_with_windows("backfill+speed", frag.clone(), &windows);
    let m_cons = run_spec_with_windows("conservative+speed", frag.clone(), &windows);

    // Failure-heavy runs of the same trace: two unplanned crashes plus a
    // 5% execution-failure rate (see `failure_scenario`).
    let f_fifo = run_spec_with_faults("speed", frag.clone());
    let f_easy = run_spec_with_faults("backfill+speed", frag.clone());
    let f_cons = run_spec_with_faults("conservative+speed", frag);

    let quality = |res: &RunResult| -> (QosReport, String) {
        let q = QosReport::from_records(&res.records, DeadlinePolicy::default());
        let s = format!(
            "{{ \"t_sim\": {:.2}, \"mean_wait\": {:.2}, \"mean_utilization\": {:.4}, \
             \"queue_jumps\": {}, \"wait_p99\": {:.2}, \"wait_max\": {:.2}, \
             \"mean_slowdown\": {:.3}, \"jain_fairness\": {:.4}, \"bypass_max\": {} }}",
            res.summary.t_sim,
            res.summary.mean_wait,
            res.mean_device_utilization(),
            res.telemetry.out_of_order,
            q.wait_p99,
            q.wait_max,
            q.mean_slowdown,
            q.fairness_jain,
            q.bypass_max,
        );
        (q, s)
    };
    // Ratios normalised so > 1 means conservative wins.
    let versus =
        |easy: &RunResult, cons: &RunResult, q_easy: &QosReport, q_cons: &QosReport| -> String {
            format!(
                "{{ \"makespan_ratio\": {:.4}, \"wait_p99_ratio\": {:.4}, \
             \"slowdown_ratio\": {:.4}, \"jain_ratio\": {:.4} }}",
                easy.summary.t_sim / cons.summary.t_sim,
                q_easy.wait_p99 / q_cons.wait_p99,
                q_easy.mean_slowdown / q_cons.mean_slowdown,
                q_cons.fairness_jain / q_easy.fairness_jain,
            )
        };
    let (q_easy, s_easy) = quality(&easy);
    let (q_cons, s_cons) = quality(&cons);
    let (_, s_fifo) = quality(&fifo);
    let bimodal_vs = versus(&easy, &cons, &q_easy, &q_cons);
    let (qm_easy, sm_easy) = quality(&m_easy);
    let (qm_cons, sm_cons) = quality(&m_cons);
    let maint_vs = versus(&m_easy, &m_cons, &qm_easy, &qm_cons);

    // Fault-era rollup: goodput/retry/waste per discipline, plus the
    // recovery overhead (faulty vs fault-free makespan — the price of two
    // outages and the retry churn).
    let faulty = |res: &RunResult| -> String {
        assert!(
            res.records.iter().all(|r| r.terminal()),
            "faulty bench run left a non-terminal job"
        );
        let q = QosReport::from_records(&res.records, DeadlinePolicy::default());
        format!(
            "{{ \"t_sim\": {:.2}, \"goodput\": {:.4}, \"retry_rate\": {:.4}, \
             \"wasted_qubit_s\": {:.1}, \"jobs_exhausted\": {}, \"mean_wait\": {:.2} }}",
            res.summary.t_sim,
            q.goodput,
            q.retry_rate,
            q.wasted_qubit_s,
            q.jobs_exhausted,
            res.summary.mean_wait,
        )
    };
    let (sf_fifo, sf_easy, sf_cons) = (faulty(&f_fifo), faulty(&f_easy), faulty(&f_cons));

    // Service-mode sections. `service_1k`: an overloaded diurnal trace
    // (offered rate ~2.4x the sustainable one) through the armed intake on
    // one region — decision-latency tails, sustained jobs/s and the
    // admission verdict mix. Best-of-3 keeps the wall-clock tails honest
    // on a noisy host; the record stream is identical across repeats.
    let svc_jobs = diurnal_arrivals(1_000, 0.08, 0.8, 3_600.0, 5, SEED);
    let svc_run = || {
        run_service(
            vec![ibm_fleet(SEED)],
            "backfill+speed",
            svc_jobs.clone(),
            ServiceConfig {
                admission: bench_admission(),
                routing: RoutingPolicy::LeastLoaded,
            },
        )
    };
    let mut svc = svc_run();
    for _ in 0..2 {
        let again = svc_run();
        if again.report.decision_latency.p99_us < svc.report.decision_latency.p99_us {
            svc = again;
        }
    }
    svc.verify_complete(&svc_jobs)
        .expect("service_1k must account every submitted job");
    assert!(svc.report.admission.conserves());
    let svc_throttle_waits = svc.shards[0].telemetry.waits_admission_throttled;
    let s_service = format!(
        "{{ \"jobs\": 1000, \"regions\": 1, \"decide_calls\": {}, \"decide_p50_us\": {:.2}, \
         \"decide_p99_us\": {:.2}, \"sustained_jobs_per_sec\": {:.1}, \"accepted\": {}, \
         \"rejected\": {}, \"throttle_events\": {}, \"throttled_then_admitted\": {}, \
         \"waits_admission_throttled\": {svc_throttle_waits}, \"complete\": true }}",
        svc.report.decision_latency.count,
        svc.report.decision_latency.p50_us,
        svc.report.decision_latency.p99_us,
        svc.report.sustained_jobs_per_sec,
        svc.report.admission.accepted,
        svc.report.admission.rejected(),
        svc.report.admission.throttle_events,
        svc.report.admission.throttled_then_admitted,
    );

    // `sharded_4x`: the same open trace through four regional schedulers
    // vs one monolithic 20-device scheduler — per-decide cost scaling
    // (shorter queues, smaller fleets) plus the completeness proof.
    let shard_jobs = diurnal_arrivals(1_000, 0.1, 0.8, 3_600.0, 5, SEED ^ 0x5A);
    let open = || ServiceConfig {
        admission: AdmissionPolicy::open(),
        routing: RoutingPolicy::LeastLoaded,
    };
    let mono_fleet: Vec<DeviceProfile> = regional_fleet(4, SEED).into_iter().flatten().collect();
    let best_mean = |mk: &dyn Fn() -> ServiceOutcome| {
        let mut best = mk();
        for _ in 0..2 {
            let again = mk();
            if again.report.decision_latency.mean_us < best.report.decision_latency.mean_us {
                best = again;
            }
        }
        best
    };
    let mono = best_mean(&|| {
        run_service(
            vec![mono_fleet.clone()],
            "backfill+speed",
            shard_jobs.clone(),
            open(),
        )
    });
    let sharded = best_mean(&|| {
        run_service(
            regional_fleet(4, SEED),
            "backfill+speed",
            shard_jobs.clone(),
            open(),
        )
    });
    let sharded_complete = sharded.verify_complete(&shard_jobs).is_ok();
    let sharded_conserved = sharded.report.admission.conserves();
    let decide_scaling =
        mono.report.decision_latency.mean_us / sharded.report.decision_latency.mean_us;

    // Wall-clock scaling: the honest number for the parallel backend. A
    // heavier open trace (4k jobs, ~4× the load above) runs through the
    // sequential harness and through the parallel one on 4 worker threads
    // with hash routing — the stateless policy lets every shard kernel
    // free-run, so this measures real thread-level speedup, not barrier
    // overhead. Least-loaded would barrier at every arrival instant and
    // honestly cannot scale on a trace this decision-dense (that trade is
    // documented in the service module's threading-model section). The
    // record streams must stay bit-identical; only the wall clock moves.
    // Best-of-3 per backend; recorded alongside `host_cores` so the
    // bench_guard floor applies only where ≥ 4 cores can actually help.
    let wall_threads = 4usize;
    let wall_jobs = diurnal_arrivals(4_000, 0.4, 0.8, 3_600.0, 5, SEED ^ 0xA5);
    let hash_open = || ServiceConfig {
        admission: AdmissionPolicy::open(),
        routing: RoutingPolicy::Hash,
    };
    let best_wall = |mk: &dyn Fn() -> ServiceOutcome| -> (f64, ServiceOutcome) {
        let mut t0 = Instant::now();
        let mut out = mk();
        let mut best = t0.elapsed().as_secs_f64();
        for _ in 0..2 {
            t0 = Instant::now();
            out = mk();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, out)
    };
    let (seq_wall, seq_out) = best_wall(&|| {
        run_service(
            regional_fleet(4, SEED),
            "backfill+speed",
            wall_jobs.clone(),
            hash_open(),
        )
    });
    let (par_wall, par_out) = best_wall(&|| {
        run_service_parallel(
            regional_fleet(4, SEED),
            "backfill+speed",
            wall_jobs.clone(),
            hash_open(),
            wall_threads,
        )
    });
    for (i, (a, b)) in seq_out.shards.iter().zip(&par_out.shards).enumerate() {
        assert_eq!(
            a.records, b.records,
            "parallel backend diverged from sequential on shard {i} in the wall-clock bench"
        );
    }
    let wall_speedup = seq_wall / par_wall;

    let s_sharded = format!(
        "{{ \"jobs\": 1000, \"regions\": 4, \"complete\": {sharded_complete}, \
         \"conserved\": {sharded_conserved}, \"mono_decide_mean_us\": {:.2}, \
         \"sharded_decide_mean_us\": {:.2}, \"decide_cost_scaling\": {decide_scaling:.3}, \
         \"mono_decide_p99_us\": {:.2}, \"sharded_decide_p99_us\": {:.2}, \
         \"sustained_jobs_per_sec\": {:.1}, \"host_cores\": {}, \
         \"wall_clock_jobs\": {}, \"wall_clock_routing\": \"hash\", \
         \"wall_clock_threads\": {wall_threads}, \"seq_wall_ms\": {:.2}, \
         \"par_wall_ms\": {:.2}, \"wall_clock_speedup\": {wall_speedup:.3} }}",
        mono.report.decision_latency.mean_us,
        sharded.report.decision_latency.mean_us,
        mono.report.decision_latency.p99_us,
        sharded.report.decision_latency.p99_us,
        sharded.report.sustained_jobs_per_sec,
        qcs_bench::cli::host_cores(),
        wall_jobs.len(),
        seq_wall * 1e3,
        par_wall * 1e3,
    );

    // `fleet_scale`: the incremental-core stress section. A 100k-job
    // bimodal stream over a 120-device fleet measures sustained
    // scheduler-loop throughput and allocator pressure (allocations per
    // job, counted by this binary's global allocator); a 10k-deep
    // backlogged queue on the same fleet compares conservative's decide
    // throughput against EASY's — the ratio the incremental
    // profile/timeline split exists to defend (a full availability
    // rebuild per consult held it around 0.03×).
    let fleet = fleet_120();
    let stream_100k = bimodal_arrivals(100_000, 0.25, 4, SEED);
    let timed = |spec: &str, jobs: &[QJob]| -> (f64, f64, RunResult) {
        let a0 = allocations();
        let t0 = Instant::now();
        let res = run_spec_on(fleet.clone(), spec, jobs.to_vec());
        let dt = t0.elapsed().as_secs_f64();
        let per_job = (allocations() - a0) as f64 / jobs.len() as f64;
        (jobs.len() as f64 / dt, per_job, res)
    };
    let (fs_fifo_jps, fs_fifo_apj, fs_fifo) = timed("speed", &stream_100k);
    let (fs_easy_jps, fs_easy_apj, fs_easy) = timed("backfill+speed", &stream_100k);
    let deep = batch_at_zero(10_000, &JobDistribution::default(), SEED);
    let (deep_easy_jps, _, _) = timed("backfill+speed", &deep);
    let (deep_cons_jps, _, _) = timed("conservative+speed", &deep);
    let deep_ratio = deep_cons_jps / deep_easy_jps;
    let s_fleet = format!(
        "{{ \"jobs\": 100000, \"devices\": {}, \
         \"fifo_speed\": {{ \"jobs_per_sec\": {fs_fifo_jps:.0}, \"allocs_per_job\": {fs_fifo_apj:.1}, \"t_sim\": {:.0} }}, \
         \"backfill_speed\": {{ \"jobs_per_sec\": {fs_easy_jps:.0}, \"allocs_per_job\": {fs_easy_apj:.1}, \"t_sim\": {:.0} }}, \
         \"deep_10k\": {{ \"easy_jobs_per_sec\": {deep_easy_jps:.0}, \"conservative_jobs_per_sec\": {deep_cons_jps:.0}, \"conservative_vs_easy\": {deep_ratio:.4} }} }}",
        fleet.len(),
        fs_fifo.summary.t_sim,
        fs_easy.summary.t_sim,
    );

    // `rl_sched`: the queue-deep RL scheduler — PPO trained on the real
    // scheduler loop (`SchedulerEnv`), checkpointed, reloaded through the
    // `rl:<path>` spec surface (the same `scheduler_by_name` every harness
    // uses), and raced against the static disciplines on the same bimodal
    // and maintenance traces as above. The training budget is bench-sized
    // (seconds, not a training farm), and the numbers are recorded
    // honestly — including the metrics where conservative still wins.
    let t_train = Instant::now();
    let env_cfg = SchedEnvConfig::default();
    let rl_timesteps: u64 = 8_192;
    let train_envs: Vec<Box<dyn Env>> = (0..4)
        .map(|_| {
            Box::new(SchedulerEnv::new(
                &ibm_fleet(SEED),
                SimParams::default(),
                env_cfg.clone(),
            )) as Box<dyn Env>
        })
        .collect();
    let mut rl_envs = VecEnv::sequential(train_envs);
    let mut ppo = Ppo::new(
        env_cfg.obs.obs_dim(),
        env_cfg.obs.action_dim(),
        PpoConfig {
            n_steps: 256,
            seed: SEED,
            ..PpoConfig::default()
        },
    );
    ppo.learn(&mut rl_envs, rl_timesteps);
    let train_seconds = t_train.elapsed().as_secs_f64();
    let ck_path = std::env::temp_dir()
        .join("qcs_bench_sched")
        .join("rl_sched_policy.json");
    SchedCheckpoint::new(env_cfg.obs.clone(), &env_cfg.placement, ppo.ac.clone())
        .save(&ck_path)
        .expect("write rl_sched checkpoint");
    let rl_spec = format!("rl:{}", ck_path.display());
    let rl_bim = run_spec(&rl_spec, fragmented_jobs(1_000));
    let rl_maint = run_spec_with_windows(&rl_spec, fragmented_jobs(1_000), &windows);
    let rl_completed = rl_bim.records.iter().all(|r| r.finished())
        && rl_maint.records.iter().all(|r| r.finished());
    let (q_rl, s_rl) = quality(&rl_bim);
    let (qm_rl, sm_rl) = quality(&rl_maint);
    let (q_fifo, _) = quality(&fifo);
    // Ratios normalised so > 1 means the RL scheduler wins.
    let rl_vs = |other: &RunResult, q_other: &QosReport, rl: &RunResult, q_rl: &QosReport| {
        format!(
            "{{ \"makespan_ratio\": {:.4}, \"wait_p99_ratio\": {:.4}, \
             \"slowdown_ratio\": {:.4}, \"jain_ratio\": {:.4} }}",
            other.summary.t_sim / rl.summary.t_sim,
            q_other.wait_p99 / q_rl.wait_p99,
            q_other.mean_slowdown / q_rl.mean_slowdown,
            q_rl.fairness_jain / q_other.fairness_jain,
        )
    };
    let rl_vs_fifo = rl_vs(&fifo, &q_fifo, &rl_bim, &q_rl);
    let rl_vs_easy = rl_vs(&easy, &q_easy, &rl_bim, &q_rl);
    let rl_vs_cons = rl_vs(&cons, &q_cons, &rl_bim, &q_rl);
    let rl_m_vs_cons = rl_vs(&m_cons, &qm_cons, &rl_maint, &qm_rl);
    let s_rl_sched = format!(
        "{{\n    \"timesteps\": {rl_timesteps},\n    \"train_seconds\": {train_seconds:.1},\n    \
         \"completed\": {rl_completed},\n    \"bimodal\": {s_rl},\n    \
         \"maintenance\": {sm_rl},\n    \"bimodal_vs_fifo\": {rl_vs_fifo},\n    \
         \"bimodal_vs_easy\": {rl_vs_easy},\n    \"bimodal_vs_conservative\": {rl_vs_cons},\n    \
         \"maintenance_vs_conservative\": {rl_m_vs_cons}\n  }}"
    );

    let json = format!(
        "{{\n  \"bench\": \"sched_loop\",\n  \"pending_1k\": {{ \"snapshot_jobs_per_sec\": {snap_1k:.1}, \"incremental_jobs_per_sec\": {incr_1k:.1}, \"speedup\": {:.2} }},\n  \"pending_10k\": {{ \"snapshot_jobs_per_sec\": {snap_10k:.1}, \"incremental_jobs_per_sec\": {incr_10k:.1}, \"speedup\": {:.2} }},\n  \"fragmented_1k\": {{\n    \"fifo_speed\": {s_fifo},\n    \"backfill_speed\": {s_easy},\n    \"conservative_speed\": {s_cons},\n    \"makespan_improvement\": {:.4},\n    \"utilization_improvement\": {:.4},\n    \"conservative_vs_easy\": {bimodal_vs}\n  }},\n  \"maintenance_1k\": {{\n    \"windows\": {},\n    \"backfill_speed\": {sm_easy},\n    \"conservative_speed\": {sm_cons},\n    \"conservative_vs_easy\": {maint_vs}\n  }},\n  \"faulty_1k\": {{\n    \"crashes\": 2,\n    \"exec_fail_prob\": 0.05,\n    \"fifo_speed\": {sf_fifo},\n    \"backfill_speed\": {sf_easy},\n    \"conservative_speed\": {sf_cons},\n    \"recovery_makespan_overhead\": {:.4}\n  }},\n  \"rl_sched\": {s_rl_sched},\n  \"service_1k\": {s_service},\n  \"sharded_4x\": {s_sharded},\n  \"fleet_scale\": {s_fleet}\n}}\n",
        incr_1k / snap_1k,
        incr_10k / snap_10k,
        fifo.summary.t_sim / easy.summary.t_sim,
        easy_util / fifo_util,
        windows.len(),
        f_cons.summary.t_sim / cons.summary.t_sim,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!(
        "sched loop: 1k snapshot {snap_1k:.0} vs incremental {incr_1k:.0} jobs/s; \
         10k snapshot {snap_10k:.0} vs incremental {incr_10k:.0} jobs/s; \
         backfill makespan x{:.3}, utilization x{:.3}; \
         conservative vs EASY slowdown x{:.3}, jain x{:.3} \
         (maintenance: slowdown x{:.3}, jain x{:.3}); \
         faulty conservative goodput {:.3}, recovery overhead x{:.3}; \
         service decide p99 {:.1} µs at {:.0} sustained jobs/s; \
         sharded decide-cost scaling x{decide_scaling:.2}, wall-clock \
         x{wall_speedup:.2} at {wall_threads} threads \
         (seq {:.1} ms, par {:.1} ms, hash routing); \
         fleet_scale 100k/120dev: fifo {fs_fifo_jps:.0} jobs/s \
         ({fs_fifo_apj:.0} allocs/job), easy {fs_easy_jps:.0} jobs/s \
         ({fs_easy_apj:.0} allocs/job), deep-10k conservative/EASY \
         x{deep_ratio:.3} \
         -> BENCH_sched.json",
        fifo.summary.t_sim / easy.summary.t_sim,
        easy_util / fifo_util,
        q_easy.mean_slowdown / q_cons.mean_slowdown,
        q_cons.fairness_jain / q_easy.fairness_jain,
        qm_easy.mean_slowdown / qm_cons.mean_slowdown,
        qm_cons.fairness_jain / qm_easy.fairness_jain,
        QosReport::from_records(&f_cons.records, DeadlinePolicy::default()).goodput,
        f_cons.summary.t_sim / cons.summary.t_sim,
        svc.report.decision_latency.p99_us,
        svc.report.sustained_jobs_per_sec,
        seq_wall * 1e3,
        par_wall * 1e3,
    );
    println!(
        "rl_sched: trained {rl_timesteps} steps in {train_seconds:.1}s; bimodal slowdown \
         vs fifo x{:.3}, vs EASY x{:.3}, vs conservative x{:.3}; maintenance vs \
         conservative x{:.3}; completed: {rl_completed}",
        q_fifo.mean_slowdown / q_rl.mean_slowdown,
        q_easy.mean_slowdown / q_rl.mean_slowdown,
        q_cons.mean_slowdown / q_rl.mean_slowdown,
        qm_cons.mean_slowdown / qm_rl.mean_slowdown,
    );
}

criterion_group!(
    benches,
    bench_pending_scaling,
    bench_disciplines,
    bench_service,
    bench_fleet_scale
);
criterion_main!(benches);
