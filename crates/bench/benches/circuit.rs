//! Criterion micro-benchmarks for the circuit IR, partitioner and cutter:
//! the costs a circuit-aware scheduler would pay per decision.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qcs_circuit::{
    balanced_blocks, cut_circuit, quantum_volume, random_layered, trotter_1d, CutCostModel,
};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit/generate");
    for &n in &[50u32, 127, 250] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("random_layered_d12", n), &n, |b, &n| {
            b.iter(|| random_layered(black_box(n), 12, 0.4, 42))
        });
        g.bench_with_input(BenchmarkId::new("trotter_s5", n), &n, |b, &n| {
            b.iter(|| trotter_1d(black_box(n), 5, 0.1))
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let circ = random_layered(250, 20, 0.4, 7);
    let mut g = c.benchmark_group("circuit/analyze");
    g.throughput(Throughput::Elements(circ.len() as u64));
    g.bench_function("stats_250q_d20", |b| b.iter(|| black_box(&circ).stats()));
    g.bench_function("interaction_graph_250q", |b| {
        b.iter(|| black_box(&circ).interaction_graph())
    });
    g.finish();
}

fn bench_partition_and_cut(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit/cut");
    for (label, circ) in [
        ("chain_190q", trotter_1d(190, 4, 0.1)),
        ("random_190q", random_layered(190, 12, 0.4, 3)),
        ("qv_64q", quantum_volume(64, 5)),
    ] {
        g.bench_function(BenchmarkId::new("balanced_blocks_k2", label), |b| {
            b.iter(|| balanced_blocks(black_box(&circ), 2))
        });
        g.bench_function(BenchmarkId::new("cut_circuit_127", label), |b| {
            b.iter(|| cut_circuit(black_box(&circ), 127, CutCostModel::default()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_stats,
    bench_partition_and_cut
);
criterion_main!(benches);
