//! Workload characterisation: summary statistics of a job trace, used to
//! sanity-check generated workloads and to report load factors in the
//! harness.

use qcs_desim::Welford;
use qcs_qcloud::QJob;
use serde::{Deserialize, Serialize};

/// Summary statistics of a job trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub count: usize,
    /// Qubit-demand mean.
    pub qubits_mean: f64,
    /// Qubit-demand min/max.
    pub qubits_range: (u64, u64),
    /// Depth mean.
    pub depth_mean: f64,
    /// Shots mean.
    pub shots_mean: f64,
    /// Two-qubit-gate mean.
    pub t2_mean: f64,
    /// Total qubit·shot demand (a workload-size proxy).
    pub total_qubit_shots: f64,
    /// First arrival time.
    pub first_arrival: f64,
    /// Last arrival time.
    pub last_arrival: f64,
    /// Mean arrival rate over the arrival span (jobs/s); 0 for a batch.
    pub arrival_rate: f64,
}

impl WorkloadStats {
    /// Computes statistics over a job list (panics on an empty list — an
    /// empty workload is a caller bug).
    pub fn from_jobs(jobs: &[QJob]) -> Self {
        assert!(!jobs.is_empty(), "empty workload");
        let mut qubits = Welford::new();
        let mut depth = Welford::new();
        let mut shots = Welford::new();
        let mut t2 = Welford::new();
        let mut total_qs = 0.0;
        let mut first = f64::INFINITY;
        let mut last = f64::NEG_INFINITY;
        let mut qmin = u64::MAX;
        let mut qmax = 0u64;
        for j in jobs {
            qubits.push(j.num_qubits as f64);
            depth.push(j.depth as f64);
            shots.push(j.num_shots as f64);
            t2.push(j.two_qubit_gates as f64);
            total_qs += j.num_qubits as f64 * j.num_shots as f64;
            first = first.min(j.arrival_time);
            last = last.max(j.arrival_time);
            qmin = qmin.min(j.num_qubits);
            qmax = qmax.max(j.num_qubits);
        }
        let span = last - first;
        WorkloadStats {
            count: jobs.len(),
            qubits_mean: qubits.mean(),
            qubits_range: (qmin, qmax),
            depth_mean: depth.mean(),
            shots_mean: shots.mean(),
            t2_mean: t2.mean(),
            total_qubit_shots: total_qs,
            first_arrival: first,
            last_arrival: last,
            arrival_rate: if span > 0.0 {
                jobs.len() as f64 / span
            } else {
                0.0
            },
        }
    }

    /// Estimated offered load against a fleet: mean fraction of the cloud's
    /// qubit capacity demanded per mean job duration. Values ≫ 1 imply a
    /// growing backlog (a closed batch like the case study is effectively
    /// infinite load).
    pub fn offered_load(&self, total_capacity: u64, mean_job_seconds: f64) -> f64 {
        assert!(total_capacity > 0, "fleet has no qubits");
        assert!(mean_job_seconds > 0.0, "job duration must be positive");
        if self.arrival_rate == 0.0 {
            return f64::INFINITY; // batch arrival: backlog by construction
        }
        self.arrival_rate * self.qubits_mean * mean_job_seconds / total_capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{paper_case_study, smoke};
    use qcs_qcloud::jobgen::poisson_arrivals;
    use qcs_qcloud::JobDistribution;

    #[test]
    fn case_study_statistics_match_distribution() {
        let s = WorkloadStats::from_jobs(&paper_case_study(1).jobs);
        assert_eq!(s.count, 1000);
        // U[130, 250] mean = 190, U[5, 20] mean = 12.5, U[10k, 100k] = 55k.
        assert!((s.qubits_mean - 190.0).abs() < 4.0, "{}", s.qubits_mean);
        assert!((s.depth_mean - 12.5).abs() < 0.6, "{}", s.depth_mean);
        assert!(
            (s.shots_mean - 55_000.0).abs() < 3_000.0,
            "{}",
            s.shots_mean
        );
        assert!(s.qubits_range.0 >= 130 && s.qubits_range.1 <= 250);
        assert_eq!(s.arrival_rate, 0.0, "batch arrival");
    }

    #[test]
    fn poisson_trace_rate_recovered() {
        let jobs = poisson_arrivals(5_000, 0.2, &JobDistribution::default(), 2);
        let s = WorkloadStats::from_jobs(&jobs);
        assert!((s.arrival_rate - 0.2).abs() < 0.02, "{}", s.arrival_rate);
        assert!(s.last_arrival > s.first_arrival);
    }

    #[test]
    fn offered_load_semantics() {
        let jobs = poisson_arrivals(2_000, 0.01, &JobDistribution::default(), 3);
        let s = WorkloadStats::from_jobs(&jobs);
        // 0.01 jobs/s × 190 qubits × 200 s / 635 qubits ≈ 0.60.
        let rho = s.offered_load(635, 200.0);
        assert!((0.4..0.8).contains(&rho), "load {rho}");
        // Batch workload: infinite instantaneous load.
        let batch = WorkloadStats::from_jobs(&smoke(10, 1).jobs);
        assert!(batch.offered_load(635, 200.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_trace_panics() {
        let _ = WorkloadStats::from_jobs(&[]);
    }
}
