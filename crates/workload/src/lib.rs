//! # qcs-workload — workload generation and job-file IO
//!
//! The paper's framework accepts jobs from "CSV/JSON files, or built-in
//! models" (§3, Fig. 4). This crate provides:
//!
//! * [`suite`] — named workload presets, including the exact §7 case-study
//!   configuration (1'000 jobs, q ~ U\[130,250\], d ~ U\[5,20\],
//!   s ~ U\[10k,100k\]);
//! * [`csv`] — deterministic job traces as CSV (hand-rolled: the format is
//!   five columns);
//! * [`json`] — the same via `serde_json`.

#![warn(missing_docs)]

pub mod arrival;
pub mod circuits;
pub mod csv;
pub mod json;
pub mod stats;
pub mod suite;

pub use arrival::{jobs_with_arrivals, poisson_process, uniform_arrivals, DiurnalProcess, Mmpp2};
pub use circuits::{circuit_workload, CircuitFamily, CircuitJob, CircuitWorkloadConfig};
pub use stats::WorkloadStats;
pub use suite::{bursty_mmpp, paper_case_study, smoke, stress, Suite};
