//! Named workload presets.

use qcs_qcloud::jobgen::{batch_at_zero, bursty_arrivals, poisson_arrivals};
use qcs_qcloud::{JobDistribution, QJob};
use serde::{Deserialize, Serialize};

/// A named, reproducible workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    /// Suite name.
    pub name: String,
    /// The sampled jobs.
    pub jobs: Vec<QJob>,
}

/// The §7 case study: 1'000 synthetic large circuits, all arriving at t=0,
/// drawn from the paper's stated ranges.
pub fn paper_case_study(seed: u64) -> Suite {
    Suite {
        name: "paper_case_study".into(),
        jobs: batch_at_zero(1_000, &JobDistribution::default(), seed),
    }
}

/// A quick variant for tests and examples (`n` jobs, same distribution).
pub fn smoke(n: usize, seed: u64) -> Suite {
    Suite {
        name: format!("smoke_{n}"),
        jobs: batch_at_zero(n, &JobDistribution::default(), seed),
    }
}

/// A bursty open-system workload: 2-state MMPP arrivals (calm background
/// with 20x bursts), the conference-deadline traffic pattern. Long-run
/// rate ≈ `rate`.
pub fn bursty_mmpp(n: usize, rate: f64, seed: u64) -> Suite {
    // Split the target rate 1:20 between states with a 10:1 sojourn ratio:
    // mean = (10·calm + 20·calm·1)/11 = rate ⇒ calm = rate·11/30.
    let calm = rate * 11.0 / 30.0;
    let mmpp = crate::arrival::Mmpp2 {
        calm_rate: calm,
        burst_rate: calm * 20.0,
        calm_mean_sojourn: 100.0 / rate,
        burst_mean_sojourn: 10.0 / rate,
    };
    let arrivals = mmpp.arrivals(n, seed);
    Suite {
        name: "bursty_mmpp".into(),
        jobs: crate::arrival::jobs_with_arrivals(
            &arrivals,
            &JobDistribution::default(),
            0,
            seed ^ 0x5EED,
        ),
    }
}

/// A stress workload: Poisson arrivals at `rate` jobs/s followed by
/// periodic bursts — exercises both open-system queueing and backlog
/// drain.
pub fn stress(n: usize, rate: f64, seed: u64) -> Suite {
    let dist = JobDistribution::default();
    let mut jobs = poisson_arrivals(n / 2, rate, &dist, seed);
    let t0 = jobs.last().map(|j| j.arrival_time).unwrap_or(0.0);
    let mut burst = bursty_arrivals(4, (n / 2) / 4, 500.0, &dist, seed ^ 0xBEEF);
    for (i, j) in burst.iter_mut().enumerate() {
        j.arrival_time += t0;
        j.id = qcs_qcloud::JobId((n / 2 + i) as u64);
    }
    jobs.extend(burst);
    Suite {
        name: "stress".into(),
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_matches_paper_parameters() {
        let s = paper_case_study(42);
        assert_eq!(s.jobs.len(), 1_000);
        assert!(s.jobs.iter().all(|j| j.arrival_time == 0.0));
        assert!(s.jobs.iter().all(|j| (130..=250).contains(&j.num_qubits)));
        assert!(s.jobs.iter().all(|j| (5..=20).contains(&j.depth)));
        assert!(s
            .jobs
            .iter()
            .all(|j| (10_000..=100_000).contains(&j.num_shots)));
        // Every job must be forced to split on 127-qubit devices (Eq. 1).
        assert!(s.jobs.iter().all(|j| j.num_qubits > 127));
    }

    #[test]
    fn suites_are_deterministic() {
        assert_eq!(paper_case_study(7), paper_case_study(7));
        assert_ne!(paper_case_study(7), paper_case_study(8));
    }

    #[test]
    fn stress_suite_ids_unique_and_sorted_by_phase() {
        let s = stress(40, 0.01, 3);
        assert_eq!(s.jobs.len(), 40);
        let mut ids: Vec<u64> = s.jobs.iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "duplicate job ids");
    }

    #[test]
    fn smoke_size() {
        assert_eq!(smoke(17, 1).jobs.len(), 17);
    }

    #[test]
    fn bursty_mmpp_rate_and_shape() {
        let s = bursty_mmpp(5_000, 0.01, 9);
        assert_eq!(s.jobs.len(), 5_000);
        // Arrival times strictly ordered by construction of the MMPP.
        for w in s.jobs.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
        // Long-run rate within 15% of the target.
        let span = s.jobs.last().unwrap().arrival_time;
        let rate = s.jobs.len() as f64 / span;
        assert!(
            (rate - 0.01).abs() / 0.01 < 0.15,
            "empirical rate {rate} vs target 0.01"
        );
        // Job bodies still follow the case-study distribution.
        assert!(s.jobs.iter().all(|j| (130..=250).contains(&j.num_qubits)));
        assert_eq!(bursty_mmpp(100, 0.01, 9), bursty_mmpp(100, 0.01, 9));
    }
}
