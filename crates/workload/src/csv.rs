//! CSV job traces.
//!
//! Format (header required):
//! `job_id,num_qubits,depth,num_shots,two_qubit_gates,arrival_time`
//!
//! The `arrival_time` column is optional (paper §3: "if no arrival time is
//! specified, the current timestamp is assigned by default" — we default to
//! 0.0 for deterministic replay).

use qcs_qcloud::{JobId, QJob};

/// Serialises jobs to CSV.
pub fn to_csv(jobs: &[QJob]) -> String {
    let mut out = String::from("job_id,num_qubits,depth,num_shots,two_qubit_gates,arrival_time\n");
    for j in jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            j.id.0, j.num_qubits, j.depth, j.num_shots, j.two_qubit_gates, j.arrival_time
        ));
    }
    out
}

/// Parses jobs from CSV. Returns an error naming the offending line on any
/// malformed input.
pub fn from_csv(text: &str) -> Result<Vec<QJob>, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty CSV".into());
    };
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    let expect = [
        "job_id",
        "num_qubits",
        "depth",
        "num_shots",
        "two_qubit_gates",
        "arrival_time",
    ];
    let has_arrival = cols.len() == 6;
    if cols != expect && cols != expect[..5] {
        return Err(format!("unexpected header: {header:?}"));
    }

    let mut jobs = Vec::new();
    for (ln, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let need = if has_arrival { 6 } else { 5 };
        if fields.len() != need {
            return Err(format!("line {}: expected {need} fields", ln + 1));
        }
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", ln + 1))
        };
        let job = QJob {
            id: JobId(parse_u64(fields[0], "job_id")?),
            num_qubits: parse_u64(fields[1], "num_qubits")?,
            depth: parse_u64(fields[2], "depth")? as u32,
            num_shots: parse_u64(fields[3], "num_shots")?,
            two_qubit_gates: parse_u64(fields[4], "two_qubit_gates")?,
            arrival_time: if has_arrival {
                fields[5]
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad arrival_time: {e}", ln + 1))?
            } else {
                0.0
            },
        };
        job.validate()
            .map_err(|e| format!("line {}: {e}", ln + 1))?;
        jobs.push(job);
    }
    Ok(jobs)
}

/// Writes a CSV trace to disk.
pub fn write_file(path: &std::path::Path, jobs: &[QJob]) -> std::io::Result<()> {
    std::fs::write(path, to_csv(jobs))
}

/// Reads a CSV trace from disk.
pub fn read_file(path: &std::path::Path) -> Result<Vec<QJob>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_desim::Xoshiro256StarStar;
    use qcs_qcloud::JobDistribution;

    fn jobs(n: usize) -> Vec<QJob> {
        let dist = JobDistribution::default();
        let mut rng = Xoshiro256StarStar::new(5);
        (0..n)
            .map(|i| dist.sample(JobId(i as u64), i as f64 * 1.5, &mut rng))
            .collect()
    }

    #[test]
    fn roundtrip() {
        let js = jobs(25);
        let csv = to_csv(&js);
        let back = from_csv(&csv).unwrap();
        assert_eq!(js, back);
    }

    #[test]
    fn missing_arrival_column_defaults_to_zero() {
        let csv = "job_id,num_qubits,depth,num_shots,two_qubit_gates\n1,150,10,50000,500\n";
        let js = from_csv(csv).unwrap();
        assert_eq!(js.len(), 1);
        assert_eq!(js[0].arrival_time, 0.0);
        assert_eq!(js[0].num_qubits, 150);
    }

    #[test]
    fn blank_lines_skipped() {
        let csv =
            "job_id,num_qubits,depth,num_shots,two_qubit_gates,arrival_time\n\n1,150,10,50000,500,2.5\n\n";
        assert_eq!(from_csv(csv).unwrap().len(), 1);
    }

    #[test]
    fn malformed_rows_reported_with_line_numbers() {
        let csv = "job_id,num_qubits,depth,num_shots,two_qubit_gates,arrival_time\n1,xxx,10,50000,500,0\n";
        let err = from_csv(csv).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("num_qubits"), "{err}");
    }

    #[test]
    fn wrong_header_rejected() {
        assert!(from_csv("a,b,c\n").is_err());
        assert!(from_csv("").is_err());
    }

    #[test]
    fn invalid_job_rejected() {
        let csv =
            "job_id,num_qubits,depth,num_shots,two_qubit_gates,arrival_time\n1,0,10,50000,500,0\n";
        let err = from_csv(csv).unwrap_err();
        assert!(err.contains("zero qubits"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let js = jobs(5);
        let dir = std::env::temp_dir().join("qcs_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        write_file(&path, &js).unwrap();
        assert_eq!(read_file(&path).unwrap(), js);
        std::fs::remove_file(&path).ok();
    }
}
