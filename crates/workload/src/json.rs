//! JSON job traces (via `serde_json`).

use qcs_qcloud::QJob;

/// Serialises jobs to pretty JSON.
pub fn to_json(jobs: &[QJob]) -> String {
    serde_json::to_string_pretty(jobs).expect("QJob serialisation cannot fail")
}

/// Parses a JSON job array, validating every job.
pub fn from_json(text: &str) -> Result<Vec<QJob>, String> {
    let jobs: Vec<QJob> = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for j in &jobs {
        j.validate()?;
    }
    Ok(jobs)
}

/// Writes a JSON trace to disk.
pub fn write_file(path: &std::path::Path, jobs: &[QJob]) -> std::io::Result<()> {
    std::fs::write(path, to_json(jobs))
}

/// Reads a JSON trace from disk.
pub fn read_file(path: &std::path::Path) -> Result<Vec<QJob>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_desim::Xoshiro256StarStar;
    use qcs_qcloud::{JobDistribution, JobId};

    #[test]
    fn roundtrip() {
        let dist = JobDistribution::default();
        let mut rng = Xoshiro256StarStar::new(3);
        let jobs: Vec<QJob> = (0..10)
            .map(|i| dist.sample(JobId(i), 0.5 * i as f64, &mut rng))
            .collect();
        let text = to_json(&jobs);
        assert_eq!(from_json(&text).unwrap(), jobs);
    }

    #[test]
    fn bad_json_rejected() {
        assert!(from_json("not json").is_err());
        assert!(from_json("[{\"id\": 1}]").is_err());
    }

    #[test]
    fn invalid_jobs_rejected() {
        let text = r#"[{"id":1,"num_qubits":0,"depth":5,"num_shots":100,"two_qubit_gates":10,"arrival_time":0.0}]"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("zero qubits"), "{err}");
    }
}
