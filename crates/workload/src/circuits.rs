//! Circuit-backed workloads: jobs whose `(q, d, t₂)` footprints come from
//! concrete generated circuits instead of sampled densities.
//!
//! The paper abstracts gates to counts; this module grounds that
//! abstraction. Each job carries its [`Circuit`] and a
//! [`CircuitLocality`] tag (chain-structured
//! families cut cheaply; dense families do not), so circuit-cutting
//! experiments can price cuts from real structure instead of an assumed
//! locality.

use qcs_circuit::{ghz, qaoa_maxcut, quantum_volume, random_layered, trotter_1d, Circuit};
use qcs_desim::Xoshiro256StarStar;
use qcs_qcloud::{CircuitLocality, JobId, QJob};
use serde::{Deserialize, Serialize};

/// The circuit families the generator can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CircuitFamily {
    /// Random layered circuits (structureless — worst case for cutting).
    RandomLayered,
    /// Quantum-volume model circuits (dense, all-to-all).
    QuantumVolume,
    /// GHZ preparation (chain).
    Ghz,
    /// QAOA MaxCut on a sparse random graph.
    QaoaMaxCut,
    /// Trotterised 1-D Ising dynamics (chain brickwork).
    Trotter1d,
}

impl CircuitFamily {
    /// The cut-locality class of the family.
    pub fn locality(self) -> CircuitLocality {
        match self {
            CircuitFamily::Ghz | CircuitFamily::Trotter1d => CircuitLocality::Chain,
            CircuitFamily::RandomLayered
            | CircuitFamily::QuantumVolume
            | CircuitFamily::QaoaMaxCut => CircuitLocality::Random,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CircuitFamily::RandomLayered => "random",
            CircuitFamily::QuantumVolume => "qv",
            CircuitFamily::Ghz => "ghz",
            CircuitFamily::QaoaMaxCut => "qaoa",
            CircuitFamily::Trotter1d => "trotter",
        }
    }
}

/// A job together with the circuit that produced its footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitJob {
    /// The scheduling-level job (footprint + shots + arrival).
    pub job: QJob,
    /// The family the circuit was drawn from.
    pub family: CircuitFamily,
    /// The generating circuit.
    pub circuit: Circuit,
}

/// Generator configuration: qubit/shot ranges plus a family mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitWorkloadConfig {
    /// Inclusive qubit range (the paper's case study uses 130-250).
    pub qubits: (u32, u32),
    /// Inclusive shot range.
    pub shots: (u64, u64),
    /// Families to draw from, with relative weights.
    pub mix: Vec<(CircuitFamily, f64)>,
}

impl Default for CircuitWorkloadConfig {
    fn default() -> Self {
        CircuitWorkloadConfig {
            qubits: (130, 250),
            shots: (10_000, 100_000),
            mix: vec![
                (CircuitFamily::RandomLayered, 0.4),
                (CircuitFamily::QaoaMaxCut, 0.2),
                (CircuitFamily::Trotter1d, 0.2),
                (CircuitFamily::Ghz, 0.1),
                (CircuitFamily::QuantumVolume, 0.1),
            ],
        }
    }
}

/// Generates `n` circuit-backed jobs arriving at `t = 0` (the case-study
/// convention). Deterministic in `seed`.
pub fn circuit_workload(n: usize, config: &CircuitWorkloadConfig, seed: u64) -> Vec<CircuitJob> {
    assert!(!config.mix.is_empty(), "family mix must not be empty");
    assert!(
        config.mix.iter().all(|&(_, w)| w >= 0.0) && config.mix.iter().any(|&(_, w)| w > 0.0),
        "family weights must be non-negative with at least one positive"
    );
    assert!(config.qubits.0 >= 2 && config.qubits.0 <= config.qubits.1);
    let mut rng = Xoshiro256StarStar::new(seed);
    let weights: Vec<f64> = config.mix.iter().map(|&(_, w)| w).collect();
    (0..n)
        .map(|i| {
            let fam_idx = qcs_desim::dist::weighted_index(&mut rng, &weights);
            let family = config.mix[fam_idx].0;
            let q = rng.range_u64(config.qubits.0 as u64, config.qubits.1 as u64) as u32;
            let circuit_seed = rng.next_u64();
            let circuit = build_circuit(family, q, circuit_seed, &mut rng);
            let stats = circuit.stats();
            let shots = rng.range_u64(config.shots.0, config.shots.1);
            let job = QJob {
                id: JobId(i as u64),
                num_qubits: stats.num_qubits,
                depth: stats.depth,
                num_shots: shots,
                two_qubit_gates: stats.two_qubit_gates,
                arrival_time: 0.0,
            };
            CircuitJob {
                job,
                family,
                circuit,
            }
        })
        .collect()
}

/// Builds one circuit of the family at width `q`. Structural parameters
/// (depth, rounds, densities) are drawn in the ranges that keep footprints
/// comparable to the paper's synthetic jobs (d ∈ [5, 20]).
fn build_circuit(
    family: CircuitFamily,
    q: u32,
    circuit_seed: u64,
    rng: &mut Xoshiro256StarStar,
) -> Circuit {
    match family {
        CircuitFamily::RandomLayered => {
            let depth = rng.range_u64(5, 20) as u32;
            let frac = rng.range_f64(0.3, 0.7);
            random_layered(q, depth, frac, circuit_seed)
        }
        CircuitFamily::QuantumVolume => quantum_volume(q, circuit_seed),
        CircuitFamily::Ghz => ghz(q),
        CircuitFamily::QaoaMaxCut => {
            // Sparse random 3-ish-regular interaction graph.
            let rounds = rng.range_u64(1, 3) as u32;
            let g = qcs_topology::random_connected(q as usize, q as usize / 2, circuit_seed);
            let edges: Vec<(u32, u32)> = g.edges().collect();
            qaoa_maxcut(q, &edges, rounds, circuit_seed)
        }
        CircuitFamily::Trotter1d => {
            let steps = rng.range_u64(2, 7) as u32;
            trotter_1d(q, steps, 0.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_circuits_exactly() {
        let jobs = circuit_workload(60, &CircuitWorkloadConfig::default(), 42);
        assert_eq!(jobs.len(), 60);
        for cj in &jobs {
            let s = cj.circuit.stats();
            assert_eq!(cj.job.num_qubits, s.num_qubits);
            assert_eq!(cj.job.depth, s.depth);
            assert_eq!(cj.job.two_qubit_gates, s.two_qubit_gates);
            cj.job.validate().unwrap();
            assert!((130..=250).contains(&cj.job.num_qubits));
            assert!((10_000..=100_000).contains(&cj.job.num_shots));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CircuitWorkloadConfig::default();
        let a = circuit_workload(20, &cfg, 7);
        let b = circuit_workload(20, &cfg, 7);
        assert_eq!(a, b);
        assert_ne!(a, circuit_workload(20, &cfg, 8));
    }

    #[test]
    fn family_mix_respected() {
        let cfg = CircuitWorkloadConfig {
            mix: vec![(CircuitFamily::Ghz, 0.5), (CircuitFamily::Trotter1d, 0.5)],
            ..CircuitWorkloadConfig::default()
        };
        let jobs = circuit_workload(200, &cfg, 3);
        let ghz_count = jobs
            .iter()
            .filter(|j| j.family == CircuitFamily::Ghz)
            .count();
        assert!(jobs
            .iter()
            .all(|j| matches!(j.family, CircuitFamily::Ghz | CircuitFamily::Trotter1d)));
        assert!(
            (60..=140).contains(&ghz_count),
            "50/50 mix grossly violated: {ghz_count}/200"
        );
    }

    #[test]
    fn single_family_workload() {
        let cfg = CircuitWorkloadConfig {
            mix: vec![(CircuitFamily::QuantumVolume, 1.0)],
            qubits: (20, 30), // keep QV circuits small: t₂ grows as n²
            ..CircuitWorkloadConfig::default()
        };
        let jobs = circuit_workload(10, &cfg, 1);
        for cj in &jobs {
            assert_eq!(cj.family, CircuitFamily::QuantumVolume);
            // QV width n → depth n layers with 3-CX blocks.
            assert!(cj.job.two_qubit_gates >= (cj.job.num_qubits / 2) * 3);
        }
    }

    #[test]
    fn locality_tags() {
        assert_eq!(CircuitFamily::Ghz.locality(), CircuitLocality::Chain);
        assert_eq!(CircuitFamily::Trotter1d.locality(), CircuitLocality::Chain);
        assert_eq!(
            CircuitFamily::QuantumVolume.locality(),
            CircuitLocality::Random
        );
        for f in [
            CircuitFamily::RandomLayered,
            CircuitFamily::QuantumVolume,
            CircuitFamily::Ghz,
            CircuitFamily::QaoaMaxCut,
            CircuitFamily::Trotter1d,
        ] {
            assert!(!f.label().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "mix must not be empty")]
    fn empty_mix_rejected() {
        circuit_workload(
            1,
            &CircuitWorkloadConfig {
                mix: vec![],
                ..CircuitWorkloadConfig::default()
            },
            1,
        );
    }
}
