//! Arrival processes beyond Poisson: Markov-modulated bursts and diurnal
//! cycles.
//!
//! The paper's case study submits all 1,000 jobs at `t = 0` (closed
//! backlog). Real quantum clouds see *open* arrivals whose rate varies —
//! interactive daytime load, batch queues overnight, and correlated bursts
//! when a conference deadline nears. These processes generate arrival-time
//! sequences for such scenarios; combine them with a
//! [`JobDistribution`] via [`jobs_with_arrivals`].

use qcs_desim::dist::exponential;
use qcs_desim::Xoshiro256StarStar;
use qcs_qcloud::{JobDistribution, JobId, QJob};
use serde::{Deserialize, Serialize};

/// Deterministic uniform spacing: `n` arrivals `gap` seconds apart,
/// starting at `t = gap`.
pub fn uniform_arrivals(n: usize, gap: f64) -> Vec<f64> {
    assert!(gap >= 0.0 && gap.is_finite(), "gap must be finite and ≥ 0");
    (1..=n).map(|i| i as f64 * gap).collect()
}

/// Homogeneous Poisson process: exponential inter-arrivals at `rate`
/// jobs/second.
pub fn poisson_process(n: usize, rate: f64, seed: u64) -> Vec<f64> {
    assert!(rate > 0.0, "rate must be positive");
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += exponential(&mut rng, rate);
            t
        })
        .collect()
}

/// Two-state Markov-modulated Poisson process (MMPP-2): the canonical
/// bursty-traffic model. The modulating chain alternates between a *calm*
/// and a *burst* state with exponential sojourn times; arrivals are Poisson
/// at the state's rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mmpp2 {
    /// Arrival rate in the calm state (jobs/s).
    pub calm_rate: f64,
    /// Arrival rate in the burst state (jobs/s).
    pub burst_rate: f64,
    /// Mean sojourn in the calm state (s).
    pub calm_mean_sojourn: f64,
    /// Mean sojourn in the burst state (s).
    pub burst_mean_sojourn: f64,
}

impl Mmpp2 {
    /// Generates `n` arrival times starting in the calm state.
    pub fn arrivals(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!(
            self.calm_rate > 0.0 && self.burst_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            self.calm_mean_sojourn > 0.0 && self.burst_mean_sojourn > 0.0,
            "sojourns must be positive"
        );
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        let mut in_burst = false;
        // Time at which the modulating chain next switches state.
        let mut switch_at = exponential(&mut rng, 1.0 / self.calm_mean_sojourn);
        while out.len() < n {
            let rate = if in_burst {
                self.burst_rate
            } else {
                self.calm_rate
            };
            let dt = exponential(&mut rng, rate);
            if t + dt < switch_at {
                t += dt;
                out.push(t);
            } else {
                // Jump to the switch point and flip state; the memoryless
                // property lets us redraw the arrival clock.
                t = switch_at;
                in_burst = !in_burst;
                let mean = if in_burst {
                    self.burst_mean_sojourn
                } else {
                    self.calm_mean_sojourn
                };
                switch_at = t + exponential(&mut rng, 1.0 / mean);
            }
        }
        out
    }

    /// Long-run average arrival rate (jobs/s).
    pub fn mean_rate(&self) -> f64 {
        let pi_calm = self.calm_mean_sojourn / (self.calm_mean_sojourn + self.burst_mean_sojourn);
        pi_calm * self.calm_rate + (1.0 - pi_calm) * self.burst_rate
    }
}

/// Diurnal (sinusoidal-rate) Poisson process via Lewis–Shedler thinning:
/// `λ(t) = base · (1 + amplitude · sin(2πt / period))`, `amplitude ∈ [0,1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProcess {
    /// Mean arrival rate (jobs/s).
    pub base_rate: f64,
    /// Relative swing of the rate (0 = homogeneous, →1 = rate touches 0).
    pub amplitude: f64,
    /// Cycle length in seconds (86,400 for a day).
    pub period: f64,
}

impl DiurnalProcess {
    /// Generates `n` arrival times.
    pub fn arrivals(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!(self.base_rate > 0.0, "base rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.amplitude),
            "amplitude must lie in [0, 1)"
        );
        assert!(self.period > 0.0, "period must be positive");
        let mut rng = Xoshiro256StarStar::new(seed);
        let lambda_max = self.base_rate * (1.0 + self.amplitude);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        while out.len() < n {
            t += exponential(&mut rng, lambda_max);
            let lambda_t = self.base_rate
                * (1.0 + self.amplitude * (std::f64::consts::TAU * t / self.period).sin());
            if rng.next_f64() * lambda_max <= lambda_t {
                out.push(t);
            }
        }
        out
    }
}

/// Binds an arrival-time sequence to sampled job bodies: job `i` gets
/// `JobId(i)` (offset by `id_base`) and `arrivals[i]`.
pub fn jobs_with_arrivals(
    arrivals: &[f64],
    dist: &JobDistribution,
    id_base: u64,
    seed: u64,
) -> Vec<QJob> {
    let mut rng = Xoshiro256StarStar::new(seed);
    arrivals
        .iter()
        .enumerate()
        .map(|(i, &t)| dist.sample(JobId(id_base + i as u64), t, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_monotone(ts: &[f64]) {
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "arrivals must be non-decreasing");
        }
    }

    #[test]
    fn uniform_spacing() {
        let ts = uniform_arrivals(5, 2.0);
        assert_eq!(ts, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
        assert!(uniform_arrivals(0, 1.0).is_empty());
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let n = 20_000;
        let ts = poisson_process(n, 0.5, 42);
        assert_eq!(ts.len(), n);
        assert_monotone(&ts);
        let empirical_rate = n as f64 / ts.last().unwrap();
        assert!(
            (empirical_rate - 0.5).abs() < 0.02,
            "rate {empirical_rate} vs 0.5"
        );
    }

    #[test]
    fn poisson_is_seeded() {
        assert_eq!(poisson_process(100, 1.0, 7), poisson_process(100, 1.0, 7));
        assert_ne!(poisson_process(100, 1.0, 7), poisson_process(100, 1.0, 8));
    }

    #[test]
    fn mmpp_long_run_rate_matches_theory() {
        // Short sojourns → many modulation cycles → tight convergence.
        let m = Mmpp2 {
            calm_rate: 0.1,
            burst_rate: 2.0,
            calm_mean_sojourn: 50.0,
            burst_mean_sojourn: 10.0,
        };
        // π_calm = 5/6 → mean rate = 0.1·5/6 + 2.0·1/6 = 0.4166…
        assert!((m.mean_rate() - 0.41666).abs() < 1e-3);
        let n = 30_000;
        let ts = m.arrivals(n, 3);
        assert_monotone(&ts);
        let empirical = n as f64 / ts.last().unwrap();
        assert!(
            (empirical - m.mean_rate()).abs() / m.mean_rate() < 0.1,
            "empirical {empirical} vs {}",
            m.mean_rate()
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Squared coefficient of variation of inter-arrivals: 1 for
        // Poisson, > 1 for MMPP.
        let cv2 = |ts: &[f64]| {
            let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let v = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
            v / (m * m)
        };
        let m = Mmpp2 {
            calm_rate: 0.05,
            burst_rate: 5.0,
            calm_mean_sojourn: 1000.0,
            burst_mean_sojourn: 50.0,
        };
        let bursty = cv2(&m.arrivals(20_000, 9));
        let poisson = cv2(&poisson_process(20_000, m.mean_rate(), 9));
        assert!(poisson < 1.2, "Poisson CV² ≈ 1, got {poisson}");
        assert!(bursty > 2.0, "MMPP must be bursty, CV² = {bursty}");
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let d = DiurnalProcess {
            base_rate: 1.0,
            amplitude: 0.8,
            period: 1000.0,
        };
        let ts = d.arrivals(50_000, 5);
        assert_monotone(&ts);
        // Count arrivals in peak vs trough quarter-cycles of the first
        // cycles: peak quarter is t ∈ [0, 250) + k·1000 (sin > 0 rising),
        // trough is [500, 750).
        let mut peak = 0usize;
        let mut trough = 0usize;
        for &t in &ts {
            let phase = t % 1000.0;
            if phase < 250.0 {
                peak += 1;
            } else if (500.0..750.0).contains(&phase) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
        let empirical = ts.len() as f64 / ts.last().unwrap();
        assert!(
            (empirical - 1.0).abs() < 0.1,
            "mean rate ≈ base, got {empirical}"
        );
    }

    #[test]
    fn jobs_bind_ids_and_arrival_times() {
        let arrivals = uniform_arrivals(10, 5.0);
        let jobs = jobs_with_arrivals(&arrivals, &JobDistribution::default(), 100, 1);
        assert_eq!(jobs.len(), 10);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(100 + i as u64));
            assert_eq!(j.arrival_time, arrivals[i]);
            j.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        poisson_process(1, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_amplitude_one() {
        DiurnalProcess {
            base_rate: 1.0,
            amplitude: 1.0,
            period: 100.0,
        }
        .arrivals(1, 1);
    }
}
