//! Offline stand-in for `serde_json`: renders and parses JSON through the
//! `serde` stand-in's [`Value`] tree.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so every
//! finite `f64` (and any `f32` widened to `f64`) survives a
//! serialise/parse cycle bit-exactly. Non-finite floats render as `null`
//! (JSON has no NaN/Inf) and parse back as NaN.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value re-parses as a float, exactly
        // like serde_json prints whole floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; reject them plainly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Deserialises a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn f32_bit_exact_roundtrip() {
        let xs = [0.1f32, -3.4028235e38, 1.1754944e-38, 0.0, -0.0, 123.456];
        for &x in &xs {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn f64_shortest_roundtrip() {
        let xs = [std::f64::consts::PI, 1e-300, -2.5e17, 0.1 + 0.2];
        for &x in &xs {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(x.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn nan_is_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn nested_collections() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![], vec![-0.5]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "line1\nline2\t\"quoted\" \\ ünïcode";
        let json = to_string(&String::from(s)).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 3;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("3 4").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
