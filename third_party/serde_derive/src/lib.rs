//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! non-generic structs and enums without syn/quote (neither is available
//! offline): the item's token stream is parsed by hand into a small shape
//! description, and the impl is emitted as a string.
//!
//! Supported surface (what this workspace uses):
//! * named-field structs, tuple structs (newtype transparent), unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation);
//! * field attributes `#[serde(skip)]` and `#[serde(default)]` — `skip`
//!   fields are omitted on serialise and rebuilt with `Default::default()`,
//!   `default` fields tolerate absence in the input.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes one `#[...]` attribute if present; returns its tokens.
fn take_attr(tokens: &[TokenTree], pos: &mut usize) -> Option<TokenStream> {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *pos += 2;
                    return Some(g.stream());
                }
            }
        }
    }
    None
}

/// Folds any number of leading attributes into a [`FieldAttrs`].
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> FieldAttrs {
    let mut out = FieldAttrs::default();
    while let Some(stream) = take_attr(tokens, pos) {
        let inner: Vec<TokenTree> = stream.into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue; // doc comments, cfg, etc.
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        for tt in args.stream() {
            if let TokenTree::Ident(id) = tt {
                match id.to_string().as_str() {
                    "skip" => out.skip = true,
                    "default" => out.default = true,
                    other => panic!("serde stand-in: unsupported attribute `{other}`"),
                }
            }
        }
    }
    out
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advances past a type (or any token run) up to a top-level `,`, tracking
/// `<...>` angle-bracket depth. Returns true if it stopped at a comma
/// (which is consumed).
fn skip_until_comma(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut angle: i32 = 0;
    while let Some(tt) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *pos += 1;
                    return true;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
    false
}

/// Parses `{ field: Type, ... }` bodies into named fields.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!(
                "serde stand-in: expected field name, got {:?}",
                tokens.get(pos)
            );
        };
        let name = name.to_string();
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde stand-in: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&tokens, &mut pos);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the comma-separated fields of a `( ... )` tuple body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        let _ = take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break; // trailing comma
        }
        count += 1;
        if !skip_until_comma(&tokens, &mut pos) {
            break;
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _ = take_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!(
                "serde stand-in: expected variant name, got {:?}",
                tokens.get(pos)
            );
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the separating comma (also skips
        // explicit discriminants, which this workspace doesn't use).
        skip_until_comma(&tokens, &mut pos);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    while take_attr(&tokens, &mut pos).is_some() {}
    skip_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in: expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
        panic!("serde stand-in: expected type name");
    };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde stand-in: generic type `{name}` is not supported");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde stand-in: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in: unsupported enum body {other:?}"),
        },
        other => panic!("serde stand-in: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_named_fields_to_value(fields: &[Field], accessor: &dyn Fn(&str) -> String) -> String {
    let mut s = String::from("{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        s.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = accessor(&f.name)
        ));
    }
    s.push_str("::serde::Value::Obj(__fields) }");
    s
}

fn gen_named_fields_from_value(fields: &[Field], source: &str, type_path: &str) -> String {
    // Emits a `Type { f: ..., ... }` literal reading from `source: &Value`.
    let mut s = format!("{type_path} {{\n");
    for f in fields {
        if f.attrs.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
            continue;
        }
        let missing = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"missing field `{}` in {}\")))",
                f.name, type_path
            )
        };
        s.push_str(&format!(
            "{n}: match ::serde::Value::get_field({source}, \"{n}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            n = f.name,
        ));
    }
    s.push('}');
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => gen_named_fields_to_value(fields, &|f| format!("&self.{f}")),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = gen_named_fields_to_value(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let literal = gen_named_fields_from_value(fields, "__v", name);
            format!(
                "if __v.as_obj().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\"object for {name}\", __v));\n}}\n\
                 ::std::result::Result::Ok({literal})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\", __v))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple length for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the tagged-null form {"Variant": null}.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\", __inner))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let literal =
                            gen_named_fields_from_value(fields, "__inner", &format!("{name}::{vn}"));
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({literal}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\"variant of {name}\", __other)),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the stand-in `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stand-in: generated invalid Serialize impl")
}

/// Derives the stand-in `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stand-in: generated invalid Deserialize impl")
}
