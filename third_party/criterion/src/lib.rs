//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `throughput`/`sample_size`/`bench_with_input`,
//! `BenchmarkId`, and `black_box` — over a simple wall-clock harness:
//! each benchmark is warmed up briefly, then timed for a fixed number of
//! samples, and the median per-iteration time (plus derived throughput)
//! is printed.
//!
//! Running with `--test` (what `cargo test` passes to `harness = false`
//! targets) executes every benchmark body once without timing, so benches
//! stay compile- and run-checked in CI without costing bench time.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across samples).
const MEASURE_TIME: Duration = Duration::from_millis(600);
/// Warm-up time per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(150);

fn test_mode() -> bool {
    // `cargo test` compiles benches without optimisations; measuring those
    // is meaningless, so run each body once as a smoke test instead (the
    // `--test` flag forces the same, matching real criterion).
    cfg!(debug_assertions) || std::env::args().any(|a| a == "--test")
}

/// Measures one closure; returns (median seconds/iter, iters measured).
fn measure<O, F: FnMut() -> O>(mut f: F) -> (f64, u64) {
    // Warm-up: find an iteration count that takes a measurable time.
    let mut iters_per_sample = 1u64;
    let warmup_start = Instant::now();
    loop {
        let t0 = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        let dt = t0.elapsed();
        if warmup_start.elapsed() >= WARMUP_TIME {
            if dt < Duration::from_micros(100) && iters_per_sample < u64::MAX / 2 {
                iters_per_sample *= 2;
            }
            break;
        }
        if dt < Duration::from_millis(10) && iters_per_sample < u64::MAX / 2 {
            iters_per_sample *= 2;
        }
    }

    // Sampling: fixed wall-clock budget, median of per-sample means.
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    let mut total_iters = 0u64;
    while start.elapsed() < MEASURE_TIME || samples.len() < 5 {
        let t0 = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64();
        samples.push(dt / iters_per_sample as f64);
        total_iters += iters_per_sample;
        if samples.len() >= 200 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[samples.len() / 2], total_iters)
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher<'a> {
    name: String,
    throughput: Option<Throughput>,
    results: &'a mut Vec<BenchResult>,
}

/// One benchmark's outcome (also exposed for custom reporters).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name.
    pub name: String,
    /// Median seconds per iteration.
    pub secs_per_iter: f64,
    /// Declared throughput, if any.
    pub throughput: Option<u64>,
}

impl Bencher<'_> {
    /// Benchmarks `f`, timing repeated calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            black_box(f());
            println!("test {} ... ok (bench smoke)", self.name);
            return;
        }
        let (secs, _) = measure(&mut f);
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n),
            None => None,
        };
        let mut line = format!("{:<56} {:>12}/iter", self.name, fmt_time(secs));
        if let Some(n) = tp {
            let rate = n as f64 / secs;
            line.push_str(&format!("  ({rate:.3e} elem/s)"));
        }
        println!("{line}");
        self.results.push(BenchResult {
            name: self.name.clone(),
            secs_per_iter: secs,
            throughput: tp,
        });
    }
}

/// A named group of benchmarks sharing throughput/config annotations.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// stand-in uses a wall-clock budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the work done per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            name,
            throughput: self.throughput,
            results: &mut self.criterion.results,
        };
        f(&mut b);
        self
    }

    /// Benchmarks `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            name,
            throughput: self.throughput,
            results: &mut self.criterion.results,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Creates a fresh harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            name: id.to_string(),
            throughput: None,
            results: &mut self.results,
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// All results recorded so far (for custom reporters).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        if !test_mode() && !self.results.is_empty() {
            println!("({} benchmarks measured)", self.results.len());
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }

    #[test]
    fn measure_returns_positive_time() {
        let (secs, iters) = measure(|| std::hint::black_box(1 + 1));
        assert!(secs > 0.0);
        assert!(iters > 0);
    }

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
