//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). Performance characteristics are
//! those of std, which is fine for the coarse-grained uses in this
//! workspace.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-on-poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock (a
    /// holder panicked) is recovered rather than propagated, matching
    /// parking_lot's lack of poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
