//! Offline stand-in for `serde` (+ `serde_derive`).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of serde this workspace uses: `#[derive(Serialize,
//! Deserialize)]` on structs and enums (externally tagged, with
//! `#[serde(skip)]` / `#[serde(default)]` field attributes), serialising
//! through an owned JSON-like [`Value`] tree that `serde_json` renders and
//! parses.
//!
//! Design notes:
//! * Integers keep full 64-bit precision ([`Value::Int`] / [`Value::UInt`])
//!   so `u64` seeds and ids round-trip exactly.
//! * Non-finite floats serialise as `null` and deserialise back as NaN
//!   (standard JSON has no NaN/Inf), matching serde_json's lossy behaviour.
//! * `f32` round-trips bit-exactly for finite values: the value is widened
//!   to `f64` (exact), printed shortest-round-trip, and narrowed back.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// An owned JSON-like value: the data model shared by the derive macros and
/// `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    Int(i64),
    /// Unsigned integer (used for non-negative integers).
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object as an ordered field list (preserves field order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|fields| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    /// A short tag naming the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Convenience: "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`], or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::new(format!("integer {u} out of i64 range")))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            Value::Null => Ok(f64::NAN), // serde_json-style lossy NaN round-trip
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

/// Map keys must render as JSON object keys (strings).
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_int_mapkey {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse()
                    .map_err(|_| DeError::new(format!("invalid integer map key {s:?}")))
            }
        }
    )*};
}
impl_int_mapkey!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::new(format!(
                        "expected {want}-tuple, found array of length {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn signed_uses_uint_when_nonnegative() {
        assert_eq!(5i32.to_value(), Value::UInt(5));
        assert_eq!((-5i32).to_value(), Value::Int(-5));
        assert_eq!(i32::from_value(&Value::UInt(7)).unwrap(), 7);
    }

    #[test]
    fn nan_roundtrips_via_null() {
        let v = f64::NAN.to_value();
        // Rendering is serde_json's job; the tree keeps the float.
        assert!(matches!(v, Value::Float(f) if f.is_nan()));
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u32, -2i64, 0.5f64);
        let v = t.to_value();
        assert_eq!(<(u32, i64, f64)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn array_roundtrip() {
        let a = [1.0f32, 2.0, 3.0];
        assert_eq!(<[f32; 3]>::from_value(&a.to_value()).unwrap(), a);
        assert!(<[f32; 2]>::from_value(&a.to_value()).is_err());
    }
}
