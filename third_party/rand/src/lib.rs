//! Offline stand-in for the `rand` crate.
//!
//! The workspace's PRNGs carry their own algorithms (splitmix64,
//! xoshiro256**) and only implement [`RngCore`] so external distribution
//! machinery *could* be layered on top. The build environment has no
//! registry access, so this crate provides exactly that trait surface with
//! the same signatures as `rand` 0.8 / `rand_core` 0.6.

#![warn(missing_docs)]

use std::fmt;

/// Error type mirroring `rand::Error` (never produced by this workspace's
/// infallible generators).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core RNG trait (same shape as `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
