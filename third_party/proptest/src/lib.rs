//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by this workspace's property tests:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] #[test] fn f(x in strategy, ...) { ... } }`
//! * range strategies (`0..10u64`, `-1e3f64..1e3`, `1..=cap`),
//! * tuples of strategies, `proptest::collection::vec(strategy, range)`,
//! * `Strategy::prop_map`, `Just`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: failures report the
//! generated inputs via the panic message of the underlying assertion and
//! the deterministic per-case seed printed in the failure note. Cases are
//! generated from a fixed seed derived from the test name, so failures are
//! reproducible.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic 64-bit PRNG (splitmix64) driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span == (u64::MAX as u128) + 1 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.unit_f64() as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element` and
    /// whose length comes from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable overrides the configured value when set (mirroring
    /// upstream proptest), so CI can run suites deeper than local
    /// `cargo test` without touching the source.
    pub fn effective_cases(&self) -> u32 {
        cases_override(std::env::var("PROPTEST_CASES").ok().as_deref(), self.cases)
    }
}

/// Resolves the `PROPTEST_CASES` override against a configured fallback
/// (pure helper so the parsing rules are testable without mutating
/// process-global environment state, which is not thread-safe under the
/// parallel test harness).
fn cases_override(raw: Option<&str>, fallback: u32) -> u32 {
    raw.and_then(|v| v.parse().ok()).unwrap_or(fallback)
}

/// Derives a deterministic per-test seed from the test's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Skips the current generated case when the assumption does not hold
/// (expands to an early return from the case body).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item expands to a `#[test]` that samples its strategies `cases` times
/// with a deterministic RNG seeded from the test name.
#[macro_export]
macro_rules! proptest {
    // Internal @cfg arms must precede the public entry arms: macro_rules
    // tries arms in order, and the catch-all entry arm would otherwise
    // re-wrap @cfg calls forever.
    (@cfg ($config:expr) ) => {};
    (
        @cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $config;
            let __seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.effective_cases() {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let mut __run = || -> () { $body };
                __run();
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::sample(&(-2.0f64..3.5), &mut rng);
            assert!((-2.0..3.5).contains(&f));
            let i = Strategy::sample(&(1u64..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::sample(&collection::vec(0u32..5, 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = collection::vec((0u32..9, 0.0f64..1.0), 0..10);
        let a = Strategy::sample(&strat, &mut crate::TestRng::new(7));
        let b = Strategy::sample(&strat, &mut crate::TestRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn cases_override_parsing_rules() {
        assert_eq!(crate::cases_override(None, 7), 7);
        assert_eq!(crate::cases_override(Some("123"), 7), 123);
        assert_eq!(crate::cases_override(Some("not-a-number"), 7), 7);
        assert_eq!(crate::cases_override(Some(""), 7), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, ys in collection::vec(0i32..10, 1..5)) {
            prop_assert!(x < 100);
            prop_assert!(!ys.is_empty() && ys.len() < 5);
        }

        #[test]
        fn prop_map_applies(x in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }
    }
}
