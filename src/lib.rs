//! # qcs — Quantum Cloud Scheduling simulator
//!
//! A production-quality Rust reproduction of *"Adaptive Job Scheduling in
//! Quantum Clouds Using Reinforcement Learning"* (Luo, Zhao, Zhan, Guan —
//! ICPP 2025, arXiv:2506.10889): a discrete-event simulator for quantum
//! clouds in which jobs exceed any single QPU's capacity and are
//! partitioned across devices linked by real-time classical communication,
//! compared under four allocation strategies (speed, error-aware, fair,
//! and PPO-trained reinforcement learning).
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`desim`] — deterministic discrete-event simulation kernel;
//! * [`topology`] — qubit coupling-map graphs (incl. the 127-qubit
//!   IBM Eagle heavy-hex lattice);
//! * [`calibration`] — synthetic calibration snapshots, error scores,
//!   drift;
//! * [`rl`] — from-scratch PPO (Gym-style envs, MLP, Adam, GAE);
//! * [`circuit`] — circuit IR, workload generators, and the CutQC-style
//!   cutting cost model;
//! * [`qcloud`] — the scheduling framework itself;
//! * [`workload`] — job generation, arrival processes, CSV/JSON traces.
//!
//! ## Quickstart
//!
//! ```
//! use qcs::prelude::*;
//!
//! // Five IBM Eagle-class devices, 20 large jobs, the speed policy.
//! let fleet = qcs::calibration::ibm_fleet(42);
//! let jobs = qcs::workload::smoke(20, 42).jobs;
//! let env = QCloudSimEnv::new(
//!     fleet,
//!     Box::new(SpeedBroker::new()),
//!     jobs,
//!     SimParams::default(),
//!     42,
//! );
//! let result = env.run();
//! assert_eq!(result.summary.jobs_finished, 20);
//! println!("makespan = {:.0}s, mean fidelity = {:.4}",
//!          result.summary.t_sim, result.summary.mean_fidelity);
//! ```

#![warn(missing_docs)]

pub use qcs_calibration as calibration;
pub use qcs_circuit as circuit;
pub use qcs_desim as desim;
pub use qcs_qcloud as qcloud;
pub use qcs_rl as rl;
pub use qcs_topology as topology;
pub use qcs_workload as workload;

/// The most common imports for building and running simulations.
pub mod prelude {
    pub use qcs_calibration::{ibm_fleet, DeviceProfile, ErrorScoreWeights};
    pub use qcs_qcloud::policies::{
        FairBroker, FidelityBroker, HybridBroker, MinFragBroker, RandomBroker, RlBroker,
        RoundRobinBroker, SpeedBroker,
    };
    pub use qcs_qcloud::{
        AllocationPlan, Broker, CircuitLocality, CloudView, CuttingExecModel, DeadlinePolicy,
        DeviceView, GymConfig, JobDistribution, JobId, QCloudGymEnv, QCloudSimEnv, QJob, QosReport,
        SimParams, SummaryStats,
    };
    pub use qcs_rl::{A2c, A2cConfig, Ppo, PpoConfig, VecEnv};
}
