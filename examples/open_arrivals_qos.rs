//! Open-system arrivals and service-quality tails: drive the cloud with a
//! bursty MMPP arrival stream (instead of the paper's all-at-t=0 backlog)
//! and compare wait-time percentiles, slowdown and deadline misses across
//! policies.
//!
//! ```text
//! cargo run --release --example open_arrivals_qos
//! ```

use qcs::prelude::*;
use qcs::qcloud::policies::by_name;
use qcs::workload::arrival::{jobs_with_arrivals, Mmpp2};

fn main() {
    // A bursty stream: calm background load with 20× bursts — the
    // conference-deadline pattern. Long-run rate ≈ 0.004 jobs/s.
    let mmpp = Mmpp2 {
        calm_rate: 0.002,
        burst_rate: 0.04,
        calm_mean_sojourn: 20_000.0,
        burst_mean_sojourn: 2_000.0,
    };
    println!(
        "MMPP(2) arrivals: calm {} /s, burst {} /s, mean {:.4} /s",
        mmpp.calm_rate,
        mmpp.burst_rate,
        mmpp.mean_rate()
    );
    let arrivals = mmpp.arrivals(150, 42);
    let jobs = jobs_with_arrivals(&arrivals, &JobDistribution::default(), 0, 42);
    println!(
        "150 jobs over {:.0} s (mean inter-arrival {:.0} s)\n",
        arrivals.last().unwrap(),
        arrivals.last().unwrap() / 150.0
    );

    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "policy", "wait p50", "wait p95", "wait p99", "slowdown", "miss rate"
    );
    for pol in ["speed", "fidelity", "fair", "minfrag", "hybrid"] {
        let broker = by_name(pol, 42).expect("known policy");
        let env = QCloudSimEnv::new(
            qcs::calibration::ibm_fleet(42),
            broker,
            jobs.clone(),
            SimParams::default(),
            42,
        );
        let result = env.run();
        let qos = QosReport::from_records(&result.records, DeadlinePolicy { slack_factor: 2.0 });
        println!(
            "{:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.2} {:>10.3}",
            pol,
            qos.wait_p50,
            qos.wait_p95,
            qos.wait_p99,
            qos.mean_slowdown,
            qos.deadline_miss_rate
        );
    }
    println!(
        "\nthe error-aware policy's queueing cost — invisible in the paper's closed\n\
         backlog — shows up here as a multiplied p95 wait and deadline miss rate"
    );
}
