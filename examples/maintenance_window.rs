//! Scheduling through a device maintenance window (failure injection).
//!
//! Real clouds take QPUs offline for recalibration. This example drains
//! `ibm_strasbourg` — half of the premium pair — for a window in the middle
//! of the run and compares how each policy copes: the quality-strict
//! error-aware policy stalls (it insists on the drained device), while the
//! availability-greedy speed policy routes around the outage.
//!
//! ```text
//! cargo run --release --example maintenance_window
//! ```

use qcs::prelude::*;
use qcs::qcloud::policies::by_name;
use qcs::qcloud::MaintenanceWindow;

fn run(policy: &str, with_window: bool) -> SummaryStats {
    let seed = 17;
    let jobs = qcs::workload::smoke(60, seed).jobs;
    let mut env = QCloudSimEnv::new(
        qcs::calibration::ibm_fleet(seed),
        by_name(policy, seed).unwrap(),
        jobs,
        SimParams::default(),
        seed,
    );
    if with_window {
        env.schedule_maintenance(MaintenanceWindow {
            device: 0,         // ibm_strasbourg
            start: 2_000.0,    // mid-run
            duration: 8_000.0, // ~2.2 h offline
        });
    }
    let r = env.run();
    assert_eq!(r.summary.jobs_unfinished, 0, "{policy}: jobs starved");
    r.summary
}

fn main() {
    println!("policy     window   T_sim(s)    μ_F      mean_wait(s)");
    for policy in ["speed", "fidelity", "fair"] {
        for with_window in [false, true] {
            let s = run(policy, with_window);
            println!(
                "{:<9}  {:<6}  {:>9.1}  {:.5}  {:>10.1}",
                policy,
                if with_window { "yes" } else { "no" },
                s.t_sim,
                s.mean_fidelity,
                s.mean_wait,
            );
        }
    }
    println!();
    println!("The outage costs the error-aware policy its whole window (it");
    println!("waits for the premium pair), while speed/fair absorb it by");
    println!("spilling to the remaining devices at a small fidelity cost.");
}
