//! Implementing a user-defined scheduling policy (paper §3: "Users may
//! create a CustomBroker by extending the abstract Broker class").
//!
//! This example builds a *deadline-aware hybrid* policy: jobs with many
//! shots (long-running) go to the fastest devices; short jobs go to the
//! cleanest devices — a compromise between the paper's speed and
//! error-aware modes.
//!
//! ```text
//! cargo run --release --example custom_broker
//! ```

use qcs::prelude::*;
use qcs::qcloud::partition::greedy_fill;

/// Routes long jobs by CLOPS and short jobs by error score.
struct HybridBroker {
    /// Shots above this use the speed ordering.
    shots_threshold: u64,
}

impl Broker for HybridBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let order = if job.num_shots >= self.shots_threshold {
            // Long job: fastest first (minimise the τ = M·K·S·D/CLOPS tail).
            let mut ids: Vec<_> = (0..view.devices.len()).collect();
            ids.sort_by(|&a, &b| {
                view.devices[b]
                    .clops
                    .total_cmp(&view.devices[a].clops)
                    .then(a.cmp(&b))
            });
            ids.into_iter()
                .map(|i| view.devices[i].id)
                .collect::<Vec<_>>()
        } else {
            // Short job: cleanest first.
            let mut ids: Vec<_> = (0..view.devices.len()).collect();
            ids.sort_by(|&a, &b| {
                view.devices[a]
                    .error_score
                    .total_cmp(&view.devices[b].error_score)
                    .then(a.cmp(&b))
            });
            ids.into_iter()
                .map(|i| view.devices[i].id)
                .collect::<Vec<_>>()
        };
        match greedy_fill(&order, view, job.num_qubits) {
            Some(parts) => AllocationPlan::Dispatch(parts),
            None => AllocationPlan::Wait,
        }
    }

    fn name(&self) -> &str {
        "hybrid"
    }
}

fn main() {
    let seed = 5;
    let jobs = qcs::workload::smoke(100, seed).jobs;

    println!("strategy    T_sim(s)     μ_F      T_comm(s)");
    for (name, broker) in [
        ("speed", Box::new(SpeedBroker::new()) as Box<dyn Broker>),
        ("fidelity", Box::new(FidelityBroker::new())),
        (
            "hybrid",
            Box::new(HybridBroker {
                shots_threshold: 55_000,
            }),
        ),
    ] {
        let env = QCloudSimEnv::new(
            qcs::calibration::ibm_fleet(seed),
            broker,
            jobs.clone(),
            SimParams::default(),
            seed,
        );
        let s = env.run().summary;
        println!(
            "{:<10} {:>9.1}  {:.5}  {:>9.1}",
            name, s.t_sim, s.mean_fidelity, s.total_comm
        );
    }
    println!("\nThe hybrid lands between the paper's two extremes: most of the");
    println!("speed policy's makespan with part of the fidelity policy's");
    println!("accuracy gain on short jobs.");
}
