//! Deterministic workload replay from a CSV job trace (paper §3: the
//! JobGenerator's deterministic mode for "benchmarking, debugging, and
//! comparative performance analysis under controlled conditions").
//!
//! ```text
//! cargo run --release --example csv_workload_replay [trace.csv]
//! ```
//!
//! Without an argument, the example writes a demo trace, replays it twice,
//! and verifies the runs are bit-identical.

use qcs::prelude::*;
use qcs::workload::csv;

fn run_once(jobs: Vec<QJob>) -> (f64, f64) {
    let env = QCloudSimEnv::new(
        qcs::calibration::ibm_fleet(1),
        Box::new(SpeedBroker::new()),
        jobs,
        SimParams::default(),
        1,
    );
    let r = env.run();
    (r.summary.t_sim, r.summary.mean_fidelity)
}

fn main() {
    let jobs = match std::env::args().nth(1) {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            println!("loading trace from {}", path.display());
            csv::read_file(&path).expect("cannot parse job CSV")
        }
        None => {
            // Stagger arrivals so the trace exercises the arrival process.
            let mut jobs = qcs::workload::smoke(30, 99).jobs;
            for (i, j) in jobs.iter_mut().enumerate() {
                j.arrival_time = i as f64 * 120.0;
            }
            let path = std::env::temp_dir().join("qcs_demo_trace.csv");
            csv::write_file(&path, &jobs).expect("cannot write demo trace");
            println!("wrote demo trace to {}", path.display());
            jobs
        }
    };

    println!(
        "trace: {} jobs, first arrival {:.1}s, last arrival {:.1}s",
        jobs.len(),
        jobs.first().map(|j| j.arrival_time).unwrap_or(0.0),
        jobs.last().map(|j| j.arrival_time).unwrap_or(0.0)
    );

    let (t1, f1) = run_once(jobs.clone());
    let (t2, f2) = run_once(jobs);
    println!("run 1: T_sim = {t1:.3} s, μ_F = {f1:.6}");
    println!("run 2: T_sim = {t2:.3} s, μ_F = {f2:.6}");
    assert_eq!(t1, t2, "replays must be bit-identical");
    assert_eq!(f1, f2, "replays must be bit-identical");
    println!("replay is deterministic ✓");
}
