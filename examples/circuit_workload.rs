//! Circuit-backed workload: ground the paper's abstract job tuples in
//! concrete generated circuits, schedule them, and ask — per circuit
//! family — whether circuit *cutting* could have replaced real-time
//! classical communication.
//!
//! ```text
//! cargo run --release --example circuit_workload
//! ```

use qcs::circuit::{cut_circuit, CutCostModel};
use qcs::prelude::*;
use qcs::qcloud::model::comm::CommModel;
use qcs::qcloud::model::exec_time::ExecTimeModel;
use qcs::qcloud::model::fidelity::FidelityModel;
use qcs::qcloud::{realtime_comm_outcome, FragmentSite};
use qcs::workload::circuits::{circuit_workload, CircuitWorkloadConfig};
use std::collections::BTreeMap;

fn main() {
    // 40 jobs whose (q, d, t2) footprints come from real circuits: a mix of
    // random layered, QAOA, Trotter chains, GHZ and QV families.
    let cfg = CircuitWorkloadConfig::default();
    let circuit_jobs = circuit_workload(40, &cfg, 42);

    println!("family mix:");
    let mut by_family: BTreeMap<&str, usize> = BTreeMap::new();
    for cj in &circuit_jobs {
        *by_family.entry(cj.family.label()).or_insert(0) += 1;
    }
    for (f, n) in &by_family {
        println!("  {f:>8}: {n} jobs");
    }

    // Schedule the footprints on the paper fleet under the speed policy.
    let jobs: Vec<QJob> = circuit_jobs.iter().map(|cj| cj.job.clone()).collect();
    let env = QCloudSimEnv::new(
        qcs::calibration::ibm_fleet(42),
        Box::new(SpeedBroker::new()),
        jobs,
        SimParams::default(),
        42,
    );
    let result = env.run();
    println!(
        "\nscheduled {} circuit-backed jobs: makespan {:.0}s, mean fidelity {:.4}",
        result.summary.jobs_finished, result.summary.t_sim, result.summary.mean_fidelity
    );

    // Per family: measure the real cut cost of splitting each circuit into
    // ≤127-qubit fragments and compare with what the distributed execution
    // actually paid.
    println!("\ncutting feasibility per job (fragments ≤ 127 qubits):");
    println!("  family      q    t2     cuts   shot-overhead   verdict");
    let exec = ExecTimeModel::default();
    let fid = FidelityModel::default();
    let comm = CommModel::default();
    for cj in circuit_jobs.iter().take(12) {
        let plan = cut_circuit(&cj.circuit, 127, CutCostModel::default());
        let model = CuttingExecModel {
            cost: CutCostModel::default(),
            locality: CircuitLocality::Fixed(plan.cut_gates),
            exec,
            fidelity: fid,
        };
        let q = cj.job.num_qubits;
        let sites: Vec<FragmentSite> = plan
            .subcircuits
            .iter()
            .map(|s| FragmentSite {
                qubits: s.num_qubits,
                clops: 220_000.0,
                qv_layers: 7.0,
                rates: qcs::qcloud::model::fidelity::DeviceErrorRates {
                    single_qubit: 3e-4,
                    two_qubit: 8e-3,
                    readout: 1.5e-2,
                },
            })
            .collect();
        let cut = model.evaluate(&cj.job, &sites);
        let rt = realtime_comm_outcome(&cj.job, &sites, &exec, &fid, &comm);
        let verdict = if cut.wall_seconds < rt.wall_seconds {
            "cutting wins"
        } else if cut.sampling_overhead > 1e6 {
            "cutting hopeless"
        } else {
            "comm wins"
        };
        println!(
            "  {:>7} {:>4} {:>6} {:>7}   {:>12.3e}   {verdict}",
            cj.family.label(),
            q,
            cj.job.two_qubit_gates,
            plan.cut_gates,
            cut.sampling_overhead,
        );
    }
    println!(
        "\n(the paper's §2 claim, quantified: only chain-structured circuits cut cheaply;\n \
         dense families pay γ² = 9× shots per severed gate and lose by orders of magnitude)"
    );
}
