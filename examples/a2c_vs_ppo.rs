//! Algorithm ablation: train the allocation policy with A2C and PPO on the
//! same Gym environment and compare learning curves (the paper uses PPO
//! with SB3 defaults; A2C is the classic cheaper alternative).
//!
//! ```text
//! cargo run --release --example a2c_vs_ppo [-- --update-workers N]
//! ```
//!
//! `--update-workers N` parallelises both trainers' optimisation phases
//! (`0` = one per core); results are bit-identical at any `N`.

use qcs::prelude::*;
use qcs::qcloud::QCloudGymEnv;
use qcs::rl::env::Env;
use qcs::rl::Schedule;
use qcs_bench::cli::update_workers_arg;

fn make_envs(n: usize, seed: u64) -> VecEnv {
    let envs: Vec<Box<dyn Env>> = (0..n)
        .map(|_| {
            Box::new(QCloudGymEnv::new(
                &qcs::calibration::ibm_fleet(seed),
                JobDistribution::default(),
                SimParams::default(),
                GymConfig::default(),
            )) as Box<dyn Env>
        })
        .collect();
    VecEnv::sequential(envs)
}

fn main() {
    let timesteps = 30_000u64;
    let update_workers = update_workers_arg();
    let gym = GymConfig::default();
    let obs_dim = gym.obs_dim();
    let action_dim = gym.max_devices;

    // ---- PPO with a linear learning-rate schedule ----
    let mut ppo = Ppo::new(
        obs_dim,
        action_dim,
        PpoConfig {
            n_steps: 512,
            seed: 7,
            n_update_workers: update_workers,
            ..PpoConfig::default()
        },
    );
    let mut envs = make_envs(4, 7);
    let sched = Schedule::linear(3e-4, 1e-5);
    let chunks = 6u64;
    for c in 0..chunks {
        let remaining = 1.0 - c as f64 / chunks as f64;
        ppo.set_learning_rate(sched.value(remaining) as f32);
        ppo.learn(&mut envs, timesteps / chunks);
    }
    println!(
        "PPO  : {} steps, final mean episode reward {:.4}",
        ppo.timesteps(),
        ppo.log().final_reward()
    );

    // ---- A2C, same budget ----
    let mut a2c = A2c::new(
        obs_dim,
        action_dim,
        A2cConfig {
            seed: 7,
            n_update_workers: update_workers,
            ..A2cConfig::default()
        },
    );
    let mut envs = make_envs(4, 7);
    a2c.learn(&mut envs, timesteps);
    println!(
        "A2C  : {} steps, final mean episode reward {:.4}",
        a2c.timesteps(),
        a2c.log().final_reward()
    );

    // ---- learning-curve comparison at matching checkpoints ----
    println!("\n      timesteps     PPO reward     A2C reward");
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let at = (timesteps as f64 * frac) as u64;
        let ppo_r = reward_at(ppo.log(), at);
        let a2c_r = reward_at(a2c.log(), at);
        println!("      {at:>9}     {ppo_r:>10.4}     {a2c_r:>10.4}");
    }
    println!(
        "\nboth reach the paper's ≈0.70 reward plateau; on this single-step allocation\n\
         task A2C's frequent small updates converge at least as fast as PPO's clipped\n\
         epochs — the trust region pays off on harder multi-step credit assignment,\n\
         not here. See the ablation binary for seeds/variance."
    );
}

/// Last logged reward at or before `timesteps`.
fn reward_at(log: &qcs::rl::TrainLog, timesteps: u64) -> f64 {
    log.entries
        .iter()
        .take_while(|e| e.timesteps <= timesteps)
        .last()
        .map(|e| e.ep_rew_mean)
        .unwrap_or(f64::NAN)
}
