//! The paper's §7 case study at one-tenth scale: compare the speed,
//! error-aware, fair, round-robin and random policies on the same 100-job
//! trace and print a Table 2-style comparison.
//!
//! ```text
//! cargo run --release --example compare_strategies
//! ```

use qcs::prelude::*;
use qcs::qcloud::policies::by_name;

fn main() {
    let seed = 42;
    let jobs = qcs::workload::smoke(100, seed).jobs;

    println!("strategy    T_sim(s)     μ_F      σ_F    T_comm(s)  k̄     wait(s)");
    for name in ["speed", "fidelity", "fair", "roundrobin", "random"] {
        let env = QCloudSimEnv::new(
            qcs::calibration::ibm_fleet(seed),
            by_name(name, seed).expect("known policy"),
            jobs.clone(),
            SimParams::default(),
            seed,
        );
        let r = env.run();
        let s = &r.summary;
        assert_eq!(s.jobs_unfinished, 0, "{name}: jobs starved");
        println!(
            "{:<10} {:>9.1}  {:.5}  {:.5}  {:>9.1}  {:.2}  {:>8.1}",
            s.strategy,
            s.t_sim,
            s.mean_fidelity,
            s.std_fidelity,
            s.total_comm,
            s.mean_devices_per_job,
            s.mean_wait,
        );
    }

    println!();
    println!("Expected shape (paper Table 2): the error-aware policy wins on");
    println!("fidelity with the lowest T_comm but roughly doubles T_sim;");
    println!("speed/fair finish fastest at intermediate fidelity.");
}
