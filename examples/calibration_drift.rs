//! Noise-aware scheduling under calibration drift (the paper's §7.2
//! limitation: fidelity estimates "do not account for … dynamic hardware
//! variability").
//!
//! The error-aware policy ranks devices by a calibration snapshot. Here we
//! let the *true* error rates drift (log-OU process) while the scheduler
//! keeps using a stale snapshot, and measure how much fidelity the
//! error-aware policy loses as its information ages.
//!
//! ```text
//! cargo run --release --example calibration_drift
//! ```

use qcs::calibration::DriftModel;
use qcs::desim::Xoshiro256StarStar;
use qcs::prelude::*;

fn run_with_staleness(drift_days: f64, seed: u64) -> (f64, f64) {
    // Fleet whose *true* calibration has drifted `drift_days` since the
    // snapshot the scheduler sees.
    let mut fleet = qcs::calibration::ibm_fleet(seed);
    let baseline: Vec<_> = fleet.iter().map(|d| d.calibration.clone()).collect();
    let model = DriftModel::default();
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xD51F7);
    for (dev, base) in fleet.iter_mut().zip(&baseline) {
        model.step(&mut dev.calibration, base, drift_days * 86_400.0, &mut rng);
    }

    // The scheduler's ranking uses the *stale* error scores (from the
    // baseline snapshot); execution fidelity uses the drifted truth. We
    // model this by scheduling with a broker that saw the baseline scores:
    // build the env from drifted profiles, but rank devices by the stale
    // ordering (the stale ranking equals the baseline fleet's ranking,
    // which is the construction-time ordering 0..5).
    let jobs = qcs::workload::smoke(100, seed).jobs;
    let env = QCloudSimEnv::new(
        fleet,
        Box::new(StaleRankBroker),
        jobs,
        SimParams::default(),
        seed,
    );
    let s = env.run().summary;
    (s.mean_fidelity, s.t_sim)
}

/// Ranks devices by the baseline ordering (device ids 0,1,… were created in
/// ascending baseline error-score order) — i.e. a scheduler trusting a
/// stale snapshot.
struct StaleRankBroker;

impl Broker for StaleRankBroker {
    fn select(&mut self, job: &QJob, view: &CloudView) -> AllocationPlan {
        let order: Vec<_> = view.devices.iter().map(|d| d.id).collect();
        // Quality-strict like the paper's error-aware mode.
        let target = qcs::qcloud::partition::capacity_fill(&order[..2], view, job.num_qubits);
        let ok = target
            .iter()
            .all(|&(dev, amt)| view.devices[dev.index()].free >= amt);
        if ok {
            AllocationPlan::Dispatch(target)
        } else {
            AllocationPlan::Wait
        }
    }

    fn name(&self) -> &str {
        "stale-error-aware"
    }
}

fn main() {
    println!("staleness   μ_F (stale-ranked error-aware policy)");
    let mut last = None;
    for days in [0.0, 1.0, 3.0, 7.0, 14.0, 30.0] {
        // Average over several seeds to smooth drift randomness.
        let mut acc = 0.0;
        let seeds = [11u64, 22, 33, 44];
        for &s in &seeds {
            acc += run_with_staleness(days, s).0;
        }
        let mu = acc / seeds.len() as f64;
        println!("  {days:>4.0} d     {mu:.5}");
        last = Some(mu);
    }
    let _ = last;
    println!();
    println!("As the snapshot ages the 'best two devices' ranking decays");
    println!("toward arbitrary, and the error-aware policy's fidelity edge");
    println!("erodes — quantifying the value of fresh calibration data that");
    println!("the paper's error-aware mode presupposes.");
}
