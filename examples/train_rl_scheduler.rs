//! Train the PPO allocation policy (paper §4.1/§6.6), save it to JSON,
//! reload it, and deploy it as a broker on a fresh workload.
//!
//! ```text
//! cargo run --release --example train_rl_scheduler [-- --update-workers N]
//! ```
//!
//! `--update-workers N` spreads the PPO optimisation phase over `N`
//! threads (`0` = one per core). Training results are bit-identical at any
//! worker count — the knob only changes wall-clock time.

use qcs::prelude::*;
use qcs::qcloud::policies::RlBroker;
use qcs::rl::env::Env;
use qcs_bench::cli::update_workers_arg;

fn main() {
    let seed = 7;
    let gym_cfg = GymConfig::default();
    let update_workers = update_workers_arg();

    // --- 1. Build the vectorised training environment (4 worker threads).
    let factories: Vec<Box<dyn FnOnce() -> Box<dyn Env> + Send>> = (0..4)
        .map(|_| {
            let cfg = gym_cfg.clone();
            Box::new(move || {
                Box::new(QCloudGymEnv::new(
                    &qcs::calibration::ibm_fleet(seed),
                    JobDistribution::default(),
                    SimParams::default(),
                    cfg,
                )) as Box<dyn Env>
            }) as Box<dyn FnOnce() -> Box<dyn Env> + Send>
        })
        .collect();
    let mut envs = VecEnv::parallel(factories);

    // --- 2. Train PPO (short budget for the example; the fig5 harness
    //        runs the paper's full 100k timesteps).
    let cfg = PpoConfig {
        n_steps: 512,
        seed,
        n_update_workers: update_workers,
        ..PpoConfig::default()
    };
    let mut ppo = Ppo::new(gym_cfg.obs_dim(), gym_cfg.max_devices, cfg);
    println!("training PPO for 20'000 timesteps ({update_workers} update workers)...");
    ppo.learn(&mut envs, 20_000);
    for e in ppo.log().entries.iter().step_by(2) {
        println!(
            "  t = {:>6}  reward = {:.4}  entropy_loss = {:+.3}",
            e.timesteps, e.ep_rew_mean, e.entropy_loss
        );
    }

    // --- 3. Save + reload the policy (deployment artifact).
    let json = ppo.ac.to_json();
    println!("\npolicy serialised: {} bytes of JSON", json.len());
    let broker = RlBroker::from_json(&json, gym_cfg).expect("reload policy");

    // --- 4. Deploy on a fresh 100-job workload.
    let jobs = qcs::workload::smoke(100, seed + 1).jobs;
    let env = QCloudSimEnv::new(
        qcs::calibration::ibm_fleet(seed),
        Box::new(broker),
        jobs,
        SimParams::default(),
        seed,
    );
    let r = env.run();
    let s = &r.summary;
    println!("\ndeployed rlbase on 100 jobs:");
    println!(
        "  T_sim = {:.1} s, μ_F = {:.5} ± {:.5}",
        s.t_sim, s.mean_fidelity, s.std_fidelity
    );
    println!(
        "  T_comm = {:.1} s, devices/job = {:.2}",
        s.total_comm, s.mean_devices_per_job
    );
    println!("\nNote the paper's finding: trained on a fidelity-only reward,");
    println!("the agent fragments jobs (k̄ high, T_comm high) because Eq. 6's");
    println!("readout exponent √(q/k) rewards spreading. Retrain with");
    println!("GymConfig::comm_aware_reward to see the incentive flip.");
}
