//! Train a PPO policy, save it to JSON, reload it through the `rl:<path>`
//! spec surface, and deploy it on a fresh workload.
//!
//! ```text
//! cargo run --release --example train_rl_scheduler [-- --env gym|sched] [--smoke] [--update-workers N]
//! ```
//!
//! * `--env gym` (default): the paper's single-step *placement* gym
//!   (§4.1/§6.6) — one job, one availability snapshot, one allocation.
//! * `--env sched`: the queue-deep *scheduling* environment
//!   ([`qcs::qcloud::rlsched::SchedulerEnv`]) — the agent is the
//!   scheduler, picking which queued job to dispatch next against the
//!   live fleet state; the checkpoint deploys as a full discipline via
//!   `rl:<path>` and is evaluated head-to-head against `conservative+*`.
//! * `--smoke`: a few updates on a fixed seed with finite-loss and
//!   round-trip assertions — the CI guard for the training path.
//! * `--update-workers N` spreads the PPO optimisation phase over `N`
//!   threads (`0` = one per core). Training results are bit-identical at
//!   any worker count — the knob only changes wall-clock time.

use qcs::prelude::*;
use qcs::qcloud::policies::{scheduler_by_name, RlBroker};
use qcs::qcloud::rlsched::{SchedCheckpoint, SchedEnvConfig, SchedulerEnv};
use qcs::rl::env::Env;
use qcs_bench::cli::{arg, flag, update_workers_arg};

fn main() {
    match arg("--env", "gym".to_string()).as_str() {
        "sched" => train_sched(),
        "gym" => train_gym(),
        other => panic!("unknown --env '{other}' (expected 'gym' or 'sched')"),
    }
}

/// The queue-deep scheduler loop: train, checkpoint, reload through
/// `rl:<path>`, and race the static disciplines on a bimodal trace.
fn train_sched() {
    let seed = 7;
    let smoke = flag("--smoke");
    let update_workers = update_workers_arg();
    let env_cfg = SchedEnvConfig::default();
    let obs_cfg = env_cfg.obs.clone();

    let factories: Vec<Box<dyn FnOnce() -> Box<dyn Env> + Send>> = (0..4)
        .map(|_| {
            let cfg = env_cfg.clone();
            Box::new(move || {
                Box::new(SchedulerEnv::new(
                    &qcs::calibration::ibm_fleet(seed),
                    SimParams::default(),
                    cfg,
                )) as Box<dyn Env>
            }) as Box<dyn FnOnce() -> Box<dyn Env> + Send>
        })
        .collect();
    let mut envs = VecEnv::parallel(factories);

    let timesteps: u64 = if smoke { 2_048 } else { 24_576 };
    let cfg = PpoConfig {
        n_steps: 256,
        seed,
        n_update_workers: update_workers,
        ..PpoConfig::default()
    };
    let mut ppo = Ppo::new(obs_cfg.obs_dim(), obs_cfg.action_dim(), cfg);
    println!(
        "training PPO on the scheduler loop for {timesteps} timesteps \
         ({update_workers} update workers)..."
    );
    ppo.learn(&mut envs, timesteps);
    for e in ppo.log().entries.iter().step_by(4) {
        println!(
            "  t = {:>6}  reward = {:+.4}  policy_loss = {:+.4}  value_loss = {:.4}",
            e.timesteps, e.ep_rew_mean, e.policy_loss, e.value_loss
        );
    }
    for e in &ppo.log().entries {
        assert!(
            e.policy_loss.is_finite() && e.value_loss.is_finite() && e.ep_rew_mean.is_finite(),
            "training diverged at t = {}",
            e.timesteps
        );
    }

    // Checkpoint with the observation/placement contract baked in, then
    // reload through the same `rl:<path>` surface every harness uses.
    let path = std::env::temp_dir()
        .join("qcs_train_rl_scheduler")
        .join("sched_policy.json");
    SchedCheckpoint::new(obs_cfg, &env_cfg.placement, ppo.ac.clone())
        .save(&path)
        .expect("write checkpoint");
    let rl_spec = format!("rl:{}", path.display());
    println!("\ncheckpoint saved: {rl_spec}");

    // Head-to-head on a fresh bimodal trace (the benches run the full
    // version of this; see the rl_sched section of BENCH_sched.json).
    let n_jobs = if smoke { 60 } else { 300 };
    let jobs = qcs::qcloud::jobgen::bimodal_arrivals(n_jobs, 0.1, 4, seed + 1);
    println!("\nhead-to-head on {n_jobs} bimodal jobs:");
    println!(
        "  {:<20} {:>8} {:>10} {:>8} {:>9}",
        "spec", "BSLD", "wait p99", "jain", "goodput"
    );
    for spec in [
        rl_spec.as_str(),
        "speed",
        "backfill+speed",
        "conservative+speed",
    ] {
        let sched = scheduler_by_name(spec, seed, 1).expect("known scheduler spec");
        let env = QCloudSimEnv::with_scheduler(
            qcs::calibration::ibm_fleet(seed),
            sched,
            jobs.clone(),
            SimParams::default(),
            seed,
        );
        let r = env.run();
        assert_eq!(
            r.records.iter().filter(|rec| rec.finished()).count(),
            n_jobs,
            "{spec}: every job must finish"
        );
        let qos = QosReport::from_records(&r.records, DeadlinePolicy::default());
        println!(
            "  {:<20} {:>8.3} {:>10.1} {:>8.3} {:>9.3}",
            spec, qos.mean_bounded_slowdown, qos.wait_p99, qos.fairness_jain, qos.goodput
        );
    }
    if smoke {
        println!("\nsmoke OK: losses finite, checkpoint round-tripped through rl:<path>");
    }
}

/// The paper's single-step placement gym (the original example).
fn train_gym() {
    let seed = 7;
    let gym_cfg = GymConfig::default();
    let update_workers = update_workers_arg();

    // --- 1. Build the vectorised training environment (4 worker threads).
    let factories: Vec<Box<dyn FnOnce() -> Box<dyn Env> + Send>> = (0..4)
        .map(|_| {
            let cfg = gym_cfg.clone();
            Box::new(move || {
                Box::new(QCloudGymEnv::new(
                    &qcs::calibration::ibm_fleet(seed),
                    JobDistribution::default(),
                    SimParams::default(),
                    cfg,
                )) as Box<dyn Env>
            }) as Box<dyn FnOnce() -> Box<dyn Env> + Send>
        })
        .collect();
    let mut envs = VecEnv::parallel(factories);

    // --- 2. Train PPO (short budget for the example; the fig5 harness
    //        runs the paper's full 100k timesteps).
    let cfg = PpoConfig {
        n_steps: 512,
        seed,
        n_update_workers: update_workers,
        ..PpoConfig::default()
    };
    let mut ppo = Ppo::new(gym_cfg.obs_dim(), gym_cfg.max_devices, cfg);
    println!("training PPO for 20'000 timesteps ({update_workers} update workers)...");
    ppo.learn(&mut envs, 20_000);
    for e in ppo.log().entries.iter().step_by(2) {
        println!(
            "  t = {:>6}  reward = {:.4}  entropy_loss = {:+.3}",
            e.timesteps, e.ep_rew_mean, e.entropy_loss
        );
    }

    // --- 3. Save + reload the policy (deployment artifact).
    let json = ppo.ac.to_json();
    println!("\npolicy serialised: {} bytes of JSON", json.len());
    let broker = RlBroker::from_json(&json, gym_cfg).expect("reload policy");

    // --- 4. Deploy on a fresh 100-job workload.
    let jobs = qcs::workload::smoke(100, seed + 1).jobs;
    let env = QCloudSimEnv::new(
        qcs::calibration::ibm_fleet(seed),
        Box::new(broker),
        jobs,
        SimParams::default(),
        seed,
    );
    let r = env.run();
    let s = &r.summary;
    println!("\ndeployed rlbase on 100 jobs:");
    println!(
        "  T_sim = {:.1} s, μ_F = {:.5} ± {:.5}",
        s.t_sim, s.mean_fidelity, s.std_fidelity
    );
    println!(
        "  T_comm = {:.1} s, devices/job = {:.2}",
        s.total_comm, s.mean_devices_per_job
    );
    println!("\nNote the paper's finding: trained on a fidelity-only reward,");
    println!("the agent fragments jobs (k̄ high, T_comm high) because Eq. 6's");
    println!("readout exponent √(q/k) rewards spreading. Retrain with");
    println!("GymConfig::comm_aware_reward to see the incentive flip.");
}
