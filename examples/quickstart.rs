//! Quickstart: build a five-device quantum cloud, run 20 large jobs under
//! the error-aware policy, and inspect the per-job records.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qcs::prelude::*;

fn main() {
    // The paper's fleet: ibm_strasbourg, ibm_brussels, ibm_kyiv,
    // ibm_quebec, ibm_kawasaki — all 127-qubit Eagles with synthetic
    // calibration snapshots (seeded, reproducible).
    let fleet = qcs::calibration::ibm_fleet(42);
    for d in &fleet {
        println!(
            "{:>15}: {} qubits, CLOPS {:>7.0}, error score {:.5}",
            d.spec.name,
            d.spec.num_qubits,
            d.spec.clops,
            d.error_score(&ErrorScoreWeights::default()),
        );
    }

    // 20 jobs from the case-study distribution (130–250 qubits each — all
    // bigger than any single device, so every job must split).
    let jobs = qcs::workload::smoke(20, 42).jobs;

    // Error-aware scheduling (the paper's best-fidelity policy).
    let env = QCloudSimEnv::new(
        fleet,
        Box::new(FidelityBroker::new()),
        jobs,
        SimParams::default(),
        42,
    );
    let result = env.run();

    println!("\nper-job records:");
    println!("  id   qubits  wait(s)   exec(s)  comm(s)  devices  fidelity");
    for r in &result.records {
        println!(
            "  {:>3}  {:>5}  {:>8.1}  {:>8.1}  {:>7.2}  {:>7}  {:>8.5}",
            r.job_id.0,
            r.num_qubits,
            r.wait_time(),
            r.exec_end - r.start,
            r.comm_seconds,
            r.device_count(),
            r.fidelity,
        );
    }

    let s = &result.summary;
    println!("\nsummary ({}):", s.strategy);
    println!("  jobs finished     : {}", s.jobs_finished);
    println!("  makespan T_sim    : {:.1} s", s.t_sim);
    println!(
        "  fidelity μ ± σ    : {:.5} ± {:.5}",
        s.mean_fidelity, s.std_fidelity
    );
    println!("  total comm T_comm : {:.1} s", s.total_comm);
    println!("  mean devices/job  : {:.2}", s.mean_devices_per_job);
    println!("\ndevice utilization:");
    for (name, u) in &result.device_utilization {
        println!("  {name:>15}: {:5.1}%", u * 100.0);
    }
}
